//! Facade crate re-exporting the MassBFT workspace public API.
pub use massbft_codec as codec;
pub use massbft_consensus as consensus;
pub use massbft_core as core;
pub use massbft_crypto as crypto;
pub use massbft_db as db;
pub use massbft_runtime as runtime;
pub use massbft_sim_net as sim_net;
pub use massbft_workloads as workloads;

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal API-compatible implementation of the parts of `rand`
//! 0.8 that MassBFT uses: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), the [`rngs::StdRng`]
//! and [`rngs::SmallRng`] generators, and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! Both generators are xoshiro256\*\* seeded through SplitMix64 — not
//! cryptographic, but high-quality and fully deterministic per seed, which
//! is all the simulator and the property tests require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in real `rand`; here `[u8; 32]`).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for b in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            let n = b.len();
            b.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }

    /// Constructs from OS entropy. Offline stand-in: derives the seed from
    /// the system clock, which is enough for the non-reproducible callers.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// SplitMix64: seeds the main generators and expands `u64` seeds.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Values producible uniformly at random (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
    i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
    usize => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range samplable uniformly, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                // Modulo sampling: bias is span/2^64 per draw — negligible
                // at the widths used here, and determinism is what matters.
                let r = rng.next_u64() % (span as u64);
                (self.start as $u).wrapping_add(r as $u) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                let r = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                (start as $u).wrapping_add(r as $u) as $t
            }
        }
    )*};
}

impl_sample_range!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
    i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* — the engine behind both named generators.
    #[derive(Debug, Clone)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_seed_bytes(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            // All-zero state is a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            Xoshiro256 { s }
        }
    }

    impl RngCore for Xoshiro256 {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The default deterministic generator (stand-in for rand's ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            StdRng(Xoshiro256::from_seed_bytes(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The small fast generator (identical engine here).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            SmallRng(Xoshiro256::from_seed_bytes(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices: uniform shuffling and choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A convenience thread-local generator seeded from the clock.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::{rngs::StdRng, seq::SliceRandom, Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-100i32..200);
            assert!((-100..200).contains(&w));
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [7u8];
        assert_eq!(one.choose(&mut rng), Some(&7));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal API-compatible implementation of the parts of `bytes`
//! that MassBFT uses: the [`Bytes`] type — an immutable, reference-counted
//! view into a shared byte buffer whose `clone()` is a refcount bump and
//! whose `slice()` is pointer arithmetic, never a copy.
//!
//! The representation is an `Arc<[u8]>` plus an `(offset, len)` window,
//! which loses the small-vector and static-slice optimizations of the real
//! crate but preserves the property the replication data plane depends on:
//! passing a chunk payload around is O(1), not O(len).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of shared memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` by copying a slice (one copy, then free clones).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Creates a `Bytes` from a static slice (copies once; the real crate
    /// keeps the reference, but the observable behaviour is identical).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a new `Bytes` windowing the given subrange of `self`
    /// without copying.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// The bytes of the view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            offset: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            offset: 0,
            len,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(Arc::strong_count(&b.data), 2);
        assert_eq!(c.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let s = b.slice(4..12);
        assert_eq!(s.len(), 8);
        assert_eq!(s.as_slice(), &(4u8..12).collect::<Vec<u8>>()[..]);
        assert_eq!(Arc::strong_count(&b.data), 2);
        let s2 = s.slice(2..);
        assert_eq!(s2.as_slice()[0], 6);
    }

    #[test]
    fn equality_and_deref() {
        let b = Bytes::from(vec![9u8, 8, 7]);
        assert_eq!(b, vec![9u8, 8, 7]);
        assert_eq!(b[1], 8);
        assert_eq!(&b[..2], &[9, 8]);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn bad_slice_panics() {
        let b = Bytes::from(vec![1u8]);
        let _ = b.slice(0..2);
    }
}

//! x86-64 kernels: SHA-NI block compression and `pshufb` GF(256)
//! multiply-accumulate.
//!
//! This module owns the crate's only `unsafe`. Every unsafe block is one
//! of exactly two shapes, each with a local safety argument:
//!
//! 1. Calling a `#[target_feature]` function after
//!    `is_x86_feature_detected!` confirmed the feature at runtime.
//! 2. `loadu`/`storeu` intrinsics on pointers derived from slices, with
//!    the access range bounds-checked by the surrounding loop arithmetic.

#![allow(unsafe_code)]

use std::arch::x86_64::*;

/// SHA-256 round constants (FIPS 180-4), grouped for 4-round SIMD steps.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

pub(crate) fn sha256_compress_blocks(state: &mut [u32; 8], blocks: &[u8]) -> bool {
    if !(is_x86_feature_detected!("sha")
        && is_x86_feature_detected!("ssse3")
        && is_x86_feature_detected!("sse4.1"))
    {
        return false;
    }
    // SAFETY: the required target features were just detected at runtime.
    unsafe { compress_blocks_shani(state, blocks) };
    true
}

pub(crate) fn sha256_compress_lanes(
    states: &mut [[u32; 8]],
    blocks: &[u8],
    blocks_per_lane: usize,
) -> bool {
    if !(is_x86_feature_detected!("sha")
        && is_x86_feature_detected!("ssse3")
        && is_x86_feature_detected!("sse4.1"))
    {
        return false;
    }
    // SAFETY: the required target features were just detected at runtime.
    unsafe { compress_lanes_shani(states, blocks, blocks_per_lane) };
    true
}

/// Multi-lane SHA-NI compression: each lane's state absorbs its own
/// contiguous run of blocks. The feature check and the `target_feature`
/// boundary are crossed once for the whole batch; inside, the round
/// constants and shuffle masks are set up per call, not per lane.
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn compress_lanes_shani(states: &mut [[u32; 8]], blocks: &[u8], blocks_per_lane: usize) {
    let run = blocks_per_lane * 64;
    for (state, lane_blocks) in states.iter_mut().zip(blocks.chunks_exact(run)) {
        // SAFETY: caller (sha256_compress_lanes) detected the features
        // this function also requires.
        unsafe { compress_blocks_shani(state, lane_blocks) };
    }
}

/// SHA-NI two-lane compression, following Intel's reference flow: state is
/// repacked into ABEF/CDGH lanes, each block runs 16 four-round
/// `sha256rnds2` steps with the message schedule extended in-register by
/// `sha256msg1`/`sha256msg2`.
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn compress_blocks_shani(state: &mut [u32; 8], blocks: &[u8]) {
    // Big-endian load of each 32-bit word, words kept in lane order.
    let mask = _mm_set_epi64x(
        0x0c0d_0e0f_0809_0a0bu64 as i64,
        0x0405_0607_0001_0203u64 as i64,
    );

    // SAFETY: `state` points at 8 contiguous u32s; both halves are in
    // bounds and u32 has no alignment requirement for loadu/storeu.
    let tmp = unsafe { _mm_loadu_si128(state.as_ptr().cast()) }; // DCBA
    let st1 = unsafe { _mm_loadu_si128(state.as_ptr().add(4).cast()) }; // HGFE
    let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
    let st1 = _mm_shuffle_epi32(st1, 0x1B); // EFGH
    let mut abef = _mm_alignr_epi8(tmp, st1, 8); // ABEF
    let mut cdgh = _mm_blend_epi16(st1, tmp, 0xF0); // CDGH

    let k: [__m128i; 16] = std::array::from_fn(|q| {
        _mm_set_epi32(
            K[4 * q + 3] as i32,
            K[4 * q + 2] as i32,
            K[4 * q + 1] as i32,
            K[4 * q] as i32,
        )
    });

    for block in blocks.chunks_exact(64) {
        let abef_save = abef;
        let cdgh_save = cdgh;

        // SAFETY: `block` is exactly 64 bytes; offsets 0/16/32/48 each
        // read 16 in-bounds bytes.
        let mut w = [
            _mm_shuffle_epi8(unsafe { _mm_loadu_si128(block.as_ptr().cast()) }, mask),
            _mm_shuffle_epi8(
                unsafe { _mm_loadu_si128(block.as_ptr().add(16).cast()) },
                mask,
            ),
            _mm_shuffle_epi8(
                unsafe { _mm_loadu_si128(block.as_ptr().add(32).cast()) },
                mask,
            ),
            _mm_shuffle_epi8(
                unsafe { _mm_loadu_si128(block.as_ptr().add(48).cast()) },
                mask,
            ),
        ];

        for (q, &kq) in k.iter().enumerate() {
            let i = q & 3;
            if q >= 4 {
                // W[4q..4q+4] = σ-extended schedule: msg1 folds σ0, the
                // alignr supplies W[t-7], msg2 folds σ1.
                let partial = _mm_sha256msg1_epu32(w[i], w[(i + 1) & 3]);
                let w7 = _mm_alignr_epi8(w[(i + 3) & 3], w[(i + 2) & 3], 4);
                w[i] = _mm_sha256msg2_epu32(_mm_add_epi32(partial, w7), w[(i + 3) & 3]);
            }
            let mut wk = _mm_add_epi32(w[i], kq);
            cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
            wk = _mm_shuffle_epi32(wk, 0x0E);
            abef = _mm_sha256rnds2_epu32(abef, cdgh, wk);
        }

        abef = _mm_add_epi32(abef, abef_save);
        cdgh = _mm_add_epi32(cdgh, cdgh_save);
    }

    let tmp = _mm_shuffle_epi32(abef, 0x1B); // FEBA
    let st1 = _mm_shuffle_epi32(cdgh, 0xB1); // DCHG
    let dcba = _mm_blend_epi16(tmp, st1, 0xF0);
    let hgfe = _mm_alignr_epi8(st1, tmp, 8);
    // SAFETY: same 8-u32 buffer as the loads above.
    unsafe { _mm_storeu_si128(state.as_mut_ptr().cast(), dcba) };
    unsafe { _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), hgfe) };
}

pub(crate) fn gf256_mul_acc(dst: &mut [u8], src: &[u8], table: &[u8; 256]) -> bool {
    if !is_x86_feature_detected!("ssse3") {
        return false;
    }
    let len = dst.len().min(src.len());
    // GF(256) multiplication is GF(2)-linear in each operand, so
    // mul(c, (h << 4) | l) == mul(c, h << 4) ^ mul(c, l): two 16-entry
    // nibble tables sliced out of the full product table cover every byte.
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    lo.copy_from_slice(&table[..16]);
    for (i, h) in hi.iter_mut().enumerate() {
        *h = table[i << 4];
    }

    let done = if is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 (and thus SSSE3) was just detected at runtime.
        unsafe { mul_acc_avx2(&mut dst[..len], &src[..len], &lo, &hi) }
    } else {
        // SAFETY: SSSE3 was just detected at runtime.
        unsafe { mul_acc_ssse3(&mut dst[..len], &src[..len], &lo, &hi) }
    };
    // Scalar tail for the last partial vector.
    for (d, s) in dst[done..len].iter_mut().zip(&src[done..len]) {
        *d ^= table[*s as usize];
    }
    true
}

/// Processes the 16-byte-aligned prefix of `dst ^= mul_table(src)`;
/// returns how many bytes were handled.
#[target_feature(enable = "ssse3")]
unsafe fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) -> usize {
    // SAFETY: 16-byte reads from 16-byte arrays.
    let tlo = unsafe { _mm_loadu_si128(lo.as_ptr().cast()) };
    let thi = unsafe { _mm_loadu_si128(hi.as_ptr().cast()) };
    let nib = _mm_set1_epi8(0x0f);
    let n = dst.len() & !15;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 16 <= n <= dst.len() == src.len() for every access.
        let x = unsafe { _mm_loadu_si128(src.as_ptr().add(i).cast()) };
        let l = _mm_and_si128(x, nib);
        let h = _mm_and_si128(_mm_srli_epi16::<4>(x), nib);
        let prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, l), _mm_shuffle_epi8(thi, h));
        let d = unsafe { _mm_loadu_si128(dst.as_ptr().add(i).cast()) };
        unsafe { _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, prod)) };
        i += 16;
    }
    n
}

/// AVX2 variant of [`mul_acc_ssse3`]: 32 bytes per step with the nibble
/// tables broadcast to both 128-bit lanes (`vpshufb` shuffles per lane, so
/// lane-local tables are exactly what it needs).
#[target_feature(enable = "avx2")]
unsafe fn mul_acc_avx2(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) -> usize {
    // SAFETY: 16-byte reads from 16-byte arrays.
    let tlo = _mm256_broadcastsi128_si256(unsafe { _mm_loadu_si128(lo.as_ptr().cast()) });
    let thi = _mm256_broadcastsi128_si256(unsafe { _mm_loadu_si128(hi.as_ptr().cast()) });
    let nib = _mm256_set1_epi8(0x0f);
    let n = dst.len() & !31;
    let mut i = 0;
    while i < n {
        // SAFETY: i + 32 <= n <= dst.len() == src.len() for every access.
        let x = unsafe { _mm256_loadu_si256(src.as_ptr().add(i).cast()) };
        let l = _mm256_and_si256(x, nib);
        let h = _mm256_and_si256(_mm256_srli_epi16::<4>(x), nib);
        let prod = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, l), _mm256_shuffle_epi8(thi, h));
        let d = unsafe { _mm256_loadu_si256(dst.as_ptr().add(i).cast()) };
        unsafe { _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, prod)) };
        i += 32;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Russian-peasant GF(256) multiply (AES polynomial 0x11b), the
    /// reference the `pshufb` kernels must match.
    fn gf_mul(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            let carry = a & 0x80 != 0;
            a <<= 1;
            if carry {
                a ^= 0x1b;
            }
            b >>= 1;
        }
        p
    }

    /// Scalar FIPS 180-4 compression, the reference for the SHA-NI path.
    fn compress_ref(state: &mut [u32; 8], blocks: &[u8]) {
        for block in blocks.chunks_exact(64) {
            let mut w = [0u32; 64];
            for (i, c) in block.chunks_exact(4).enumerate() {
                w[i] = u32::from_be_bytes(c.try_into().unwrap());
            }
            for i in 16..64 {
                let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
                let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
                w[i] = w[i - 16]
                    .wrapping_add(s0)
                    .wrapping_add(w[i - 7])
                    .wrapping_add(s1);
            }
            let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
            for i in 0..64 {
                let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
                let ch = (e & f) ^ (!e & g);
                let t1 = h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add(K[i])
                    .wrapping_add(w[i]);
                let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
                let maj = (a & b) ^ (a & c) ^ (b & c);
                let t2 = s0.wrapping_add(maj);
                h = g;
                g = f;
                f = e;
                e = d.wrapping_add(t1);
                d = c;
                c = b;
                b = a;
                a = t1.wrapping_add(t2);
            }
            for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
                *s = s.wrapping_add(v);
            }
        }
    }

    fn product_table(c: u8) -> [u8; 256] {
        std::array::from_fn(|x| gf_mul(c, x as u8))
    }

    #[test]
    fn gf_kernel_matches_reference() {
        if !is_x86_feature_detected!("ssse3") {
            eprintln!("skipping: no ssse3");
            return;
        }
        // Odd length forces both the vector body and the scalar tail.
        let src: Vec<u8> = (0..1000u32).map(|i| (i * 37 + 11) as u8).collect();
        for c in [0u8, 1, 2, 3, 0x1d, 0x8e, 0xff, 173] {
            let table = product_table(c);
            let mut dst: Vec<u8> = (0..1000u32).map(|i| (i * 13 + 5) as u8).collect();
            let expect: Vec<u8> = dst
                .iter()
                .zip(&src)
                .map(|(d, s)| d ^ gf_mul(c, *s))
                .collect();
            assert!(gf256_mul_acc(&mut dst, &src, &table));
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn gf_kernel_handles_short_and_unequal_slices() {
        if !is_x86_feature_detected!("ssse3") {
            eprintln!("skipping: no ssse3");
            return;
        }
        let table = product_table(0x53);
        for (dlen, slen) in [
            (0usize, 0usize),
            (1, 1),
            (15, 15),
            (16, 16),
            (33, 20),
            (20, 33),
        ] {
            let src: Vec<u8> = (0..slen as u32).map(|i| (i * 7 + 1) as u8).collect();
            let mut dst = vec![0xaau8; dlen];
            let n = dlen.min(slen);
            let mut expect = dst.clone();
            for i in 0..n {
                expect[i] ^= gf_mul(0x53, src[i]);
            }
            assert!(gf256_mul_acc(&mut dst, &src, &table));
            assert_eq!(dst, expect, "dlen={dlen} slen={slen}");
        }
    }

    #[test]
    fn sha_kernel_matches_reference() {
        if !(is_x86_feature_detected!("sha")
            && is_x86_feature_detected!("ssse3")
            && is_x86_feature_detected!("sse4.1"))
        {
            eprintln!("skipping: no sha-ni");
            return;
        }
        let init: [u32; 8] = [
            0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
            0x5be0cd19,
        ];
        for nblocks in [1usize, 2, 3, 7, 16] {
            let data: Vec<u8> = (0..nblocks * 64)
                .map(|i| (i as u32 * 97 + 41) as u8)
                .collect();
            let mut got = init;
            let mut want = init;
            assert!(sha256_compress_blocks(&mut got, &data));
            compress_ref(&mut want, &data);
            assert_eq!(got, want, "nblocks={nblocks}");
        }
    }

    #[test]
    fn sha_lanes_kernel_matches_reference_per_lane() {
        if !(is_x86_feature_detected!("sha")
            && is_x86_feature_detected!("ssse3")
            && is_x86_feature_detected!("sse4.1"))
        {
            eprintln!("skipping: no sha-ni");
            return;
        }
        for (lanes, bpl) in [(1usize, 1usize), (2, 2), (5, 2), (7, 3), (16, 1)] {
            let blocks: Vec<u8> = (0..lanes * bpl * 64)
                .map(|i| (i as u32 * 131 + 17) as u8)
                .collect();
            // Distinct per-lane init states so lane mixups can't cancel.
            let init: Vec<[u32; 8]> = (0..lanes)
                .map(|l| {
                    std::array::from_fn(|i| (l as u32 + 1).wrapping_mul(0x9e3779b9) ^ i as u32)
                })
                .collect();
            let mut got = init.clone();
            assert!(crate::sha256_compress_lanes(&mut got, &blocks, bpl));
            let mut want = init;
            for (l, st) in want.iter_mut().enumerate() {
                compress_ref(st, &blocks[l * bpl * 64..(l + 1) * bpl * 64]);
            }
            assert_eq!(got, want, "lanes={lanes} bpl={bpl}");
        }
    }

    #[test]
    fn sha_lanes_empty_batch_is_identity() {
        let mut states: Vec<[u32; 8]> = vec![[3; 8]; 4];
        let before = states.clone();
        // Zero blocks per lane: reported complete, nothing changes.
        assert!(crate::sha256_compress_lanes(&mut states, &[], 0));
        assert_eq!(states, before);
        let mut none: Vec<[u32; 8]> = Vec::new();
        assert!(crate::sha256_compress_lanes(&mut none, &[], 5));
    }

    #[test]
    fn sha_kernel_empty_input_is_identity() {
        let mut s = [7u32; 8];
        let before = s;
        // Whether accelerated or not, zero blocks must not change state.
        let _ = sha256_compress_blocks(&mut s, &[]);
        assert_eq!(s, before);
    }
}

//! Hardware-accelerated kernels for the MassBFT data plane.
//!
//! The rest of the workspace is `#![forbid(unsafe_code)]`; this crate is
//! the one deliberate exception. It quarantines the small amount of
//! `unsafe` needed to call x86-64 SIMD intrinsics behind runtime CPU
//! feature detection, so `massbft-crypto` and `massbft-codec` can stay
//! fully safe while the replication hot path uses the hardware the
//! evaluation machines actually have:
//!
//! - **SHA-256**: the SHA-NI extension (`sha256rnds2`/`sha256msg1`/
//!   `sha256msg2`) compresses blocks ~5–8x faster than any scalar
//!   implementation — the single biggest cost in Merkle tree
//!   construction over erasure-coded chunks.
//! - **GF(256) multiply-accumulate**: the SSSE3/AVX2 `pshufb` nibble-table
//!   technique (two 16-entry lookup tables applied to the low and high
//!   nibble of each byte) processes 16/32 bytes per shuffle instead of one
//!   byte per table load — the inner loop of Reed-Solomon encode/decode.
//!
//! Every public function returns `bool`: `true` means the kernel ran and
//! the output is complete, `false` means the CPU lacks the feature (or the
//! build targets a non-x86 architecture) and the caller must run its
//! scalar fallback. Detection goes through
//! `std::arch::is_x86_feature_detected!`, which caches per process, so the
//! check costs an atomic load per call.

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[cfg(target_arch = "x86_64")]
mod x86;

/// Compresses a run of whole 64-byte SHA-256 blocks into `state` using the
/// SHA-NI instructions.
///
/// Returns `false` (leaving `state` untouched) when SHA-NI is unavailable.
///
/// # Panics
/// Debug-asserts that `blocks` is a multiple of 64 bytes.
pub fn sha256_compress_blocks(state: &mut [u32; 8], blocks: &[u8]) -> bool {
    debug_assert_eq!(blocks.len() % 64, 0, "whole blocks only");
    #[cfg(target_arch = "x86_64")]
    {
        x86::sha256_compress_blocks(state, blocks)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (state, blocks);
        false
    }
}

/// Compresses many independent SHA-256 lanes in one kernel entry: lane
/// `i`'s `states[i]` absorbs `blocks_per_lane` whole 64-byte blocks taken
/// contiguously from `blocks` (lane `i` owns
/// `blocks[i * blocks_per_lane * 64 ..][.. blocks_per_lane * 64]`).
///
/// One runtime feature check and one `#[target_feature]` call cover the
/// entire batch — the quorum-certificate verifier lays every signature's
/// HMAC blocks back to back and validates a whole `2f+1` certificate per
/// pass, instead of paying the detection branch and kernel entry once per
/// signature.
///
/// Returns `false` (leaving every state untouched) when SHA-NI is
/// unavailable; `true` with no work for an empty batch.
///
/// # Panics
/// Debug-asserts that `blocks` is exactly `states.len() * blocks_per_lane`
/// blocks long.
pub fn sha256_compress_lanes(
    states: &mut [[u32; 8]],
    blocks: &[u8],
    blocks_per_lane: usize,
) -> bool {
    debug_assert_eq!(
        blocks.len(),
        states.len() * blocks_per_lane * 64,
        "whole lanes only"
    );
    if states.is_empty() || blocks_per_lane == 0 {
        return true;
    }
    #[cfg(target_arch = "x86_64")]
    {
        x86::sha256_compress_lanes(states, blocks, blocks_per_lane)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (states, blocks, blocks_per_lane);
        false
    }
}

/// Computes `dst[i] ^= table[src[i]]` over the common prefix of `dst` and
/// `src`, where `table` is the 256-entry GF(256) product table of one
/// coefficient (`table[x] == mul(c, x)`), using `pshufb` nibble lookups.
///
/// Returns `false` (leaving `dst` untouched) when SSSE3 is unavailable.
pub fn gf256_mul_acc(dst: &mut [u8], src: &[u8], table: &[u8; 256]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        x86::gf256_mul_acc(dst, src, table)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (dst, src, table);
        false
    }
}

//! HMAC-SHA-256 (RFC 2104).
//!
//! Used by the simulated PKI ([`crate::keys`]) as the signature primitive:
//! a tag under a per-node secret plays the role of an ED25519 signature in
//! the paper's prototype.

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kh = crate::sha256::sha256(key);
        k[..32].copy_from_slice(&kh);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Computes `HMAC-SHA256(keys[i], msg)` for every key, batching all lanes
/// through one multi-lane SHA pass per HMAC stage.
///
/// HMAC is two chained SHA-256 computations — `SHA(opad ‖ SHA(ipad ‖
/// msg))` — and the outer stage consumes the inner digest, so two passes
/// is the minimum. Within each stage every lane is independent: the inner
/// pass compresses `ipad_i ‖ msg ‖ padding` for all lanes in one
/// `compress_lanes` call (every lane has the same length, so the padding
/// tail is shared bytes), and the outer pass does the same for
/// `opad_i ‖ inner_i ‖ padding` (always exactly two blocks). One quorum
/// certificate therefore costs two accel kernel entries total, instead of
/// two per signature plus per-call feature detection.
pub fn hmac_sha256_batch(keys: &[&[u8]], msg: &[u8]) -> Vec<[u8; 32]> {
    let lanes = keys.len();
    if lanes == 0 {
        return Vec::new();
    }
    // RFC 2104 key normalization to one block per lane.
    let norm: Vec<[u8; BLOCK]> = keys
        .iter()
        .map(|key| {
            let mut k = [0u8; BLOCK];
            if key.len() > BLOCK {
                k[..32].copy_from_slice(&crate::sha256::sha256(key));
            } else {
                k[..key.len()].copy_from_slice(key);
            }
            k
        })
        .collect();

    // Inner stage: SHA256(ipad_i ‖ msg). Total message length is the same
    // in every lane, so the padded tail (msg ‖ 0x80 ‖ zeros ‖ bitlen) is
    // identical bytes — build it once, then prepend each lane's ipad.
    let inner_len = BLOCK + msg.len();
    let padded = (inner_len + 1 + 8).div_ceil(BLOCK) * BLOCK;
    let bpl = padded / BLOCK;
    let mut tail = vec![0u8; padded - BLOCK];
    tail[..msg.len()].copy_from_slice(msg);
    tail[msg.len()] = 0x80;
    let bits = (inner_len as u64) * 8;
    let tlen = tail.len();
    tail[tlen - 8..].copy_from_slice(&bits.to_be_bytes());
    let mut buf = vec![0u8; lanes * padded];
    for (lane, k) in buf.chunks_exact_mut(padded).zip(&norm) {
        for (b, &kb) in lane[..BLOCK].iter_mut().zip(k.iter()) {
            *b = kb ^ 0x36;
        }
        lane[BLOCK..].copy_from_slice(&tail);
    }
    let mut states = vec![crate::sha256::H0; lanes];
    crate::sha256::compress_lanes(&mut states, &buf, bpl);

    // Outer stage: SHA256(opad_i ‖ inner_i) — 96 message bytes, always
    // exactly two blocks after padding.
    let mut obuf = vec![0u8; lanes * 2 * BLOCK];
    for ((lane, k), inner) in obuf.chunks_exact_mut(2 * BLOCK).zip(&norm).zip(&states) {
        for (b, &kb) in lane[..BLOCK].iter_mut().zip(k.iter()) {
            *b = kb ^ 0x5c;
        }
        for (j, w) in inner.iter().enumerate() {
            lane[BLOCK + j * 4..BLOCK + j * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        lane[96] = 0x80;
        lane[120..].copy_from_slice(&(96u64 * 8).to_be_bytes());
    }
    let mut ostates = vec![crate::sha256::H0; lanes];
    crate::sha256::compress_lanes(&mut ostates, &obuf, 2);

    ostates
        .into_iter()
        .map(|st| {
            let mut out = [0u8; 32];
            for (i, w) in st.iter().enumerate() {
                out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
            }
            out
        })
        .collect()
}

/// Constant-time-ish tag comparison. (The simulator has no timing side
/// channel, but branch-free comparison is the idiom worth keeping.)
pub fn verify_tag(expected: &[u8; 32], actual: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_tag_detects_any_flip() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_tag(&tag, &tag));
        for i in 0..32 {
            let mut bad = tag;
            bad[i] ^= 1;
            assert!(!verify_tag(&tag, &bad));
        }
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn batch_matches_scalar_hmac() {
        // Mixed key lengths (short, exactly one block, longer than a block
        // so the hash-the-key path runs) over message lengths that land on
        // every padding edge: empty, short, 55 (one block exactly after
        // padding), 56 (spills), block-multiple, and multi-block.
        let long_key = [0xaa; 131];
        let block_key = [0x42; 64];
        let keys: Vec<&[u8]> = vec![b"k0", b"Jefe", &long_key, &block_key, b"", b"another key"];
        for msg_len in [0usize, 8, 55, 56, 63, 64, 65, 200] {
            let msg: Vec<u8> = (0..msg_len as u32).map(|i| (i * 13 + 5) as u8).collect();
            let batched = hmac_sha256_batch(&keys, &msg);
            assert_eq!(batched.len(), keys.len());
            for (key, tag) in keys.iter().zip(&batched) {
                assert_eq!(tag, &hmac_sha256(key, &msg), "msg_len={msg_len}");
            }
        }
    }

    #[test]
    fn batch_of_one_matches_rfc4231() {
        let key = [0x0b; 20];
        let tags = hmac_sha256_batch(&[&key], b"Hi There");
        assert_eq!(
            hex(&tags[0]),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(hmac_sha256_batch(&[], b"msg").is_empty());
    }
}

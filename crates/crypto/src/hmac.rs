//! HMAC-SHA-256 (RFC 2104).
//!
//! Used by the simulated PKI ([`crate::keys`]) as the signature primitive:
//! a tag under a per-node secret plays the role of an ED25519 signature in
//! the paper's prototype.

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kh = crate::sha256::sha256(key);
        k[..32].copy_from_slice(&kh);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time-ish tag comparison. (The simulator has no timing side
/// channel, but branch-free comparison is the idiom worth keeping.)
pub fn verify_tag(expected: &[u8; 32], actual: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_tag_detects_any_flip() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_tag(&tag, &tag));
        for i in 0..32 {
            let mut bad = tag;
            bad[i] ^= 1;
            assert!(!verify_tag(&tag, &bad));
        }
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}

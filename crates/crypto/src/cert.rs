//! Quorum certificates.
//!
//! Local PBFT consensus "creates a certificate for the entry … The
//! certificate protects the entry from tampering by Byzantine nodes during
//! the subsequent global replication" (paper §II-A). A [`QuorumCert`] is a
//! digest plus `2f+1` signatures from distinct nodes of one group; any node
//! in any group can validate it against the [`KeyRegistry`].

use crate::{keys::NodeId, Digest, KeyRegistry, Signature};

/// Reasons a certificate fails validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertError {
    /// Fewer than `2f+1` signatures.
    InsufficientSignatures {
        /// Signatures present.
        have: usize,
        /// Signatures required for the group size.
        need: usize,
    },
    /// Two signatures claim the same signer.
    DuplicateSigner(NodeId),
    /// A signature names a node outside the certifying group.
    ForeignSigner(NodeId),
    /// A signature does not verify over the digest.
    BadSignature(NodeId),
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::InsufficientSignatures { have, need } => {
                write!(f, "insufficient signatures: {have} < {need}")
            }
            CertError::DuplicateSigner(id) => write!(f, "duplicate signer {id}"),
            CertError::ForeignSigner(id) => write!(f, "signer {id} not in certifying group"),
            CertError::BadSignature(id) => write!(f, "invalid signature from {id}"),
        }
    }
}

impl std::error::Error for CertError {}

/// A `2f+1` quorum certificate over a digest, produced by one group's
/// local PBFT commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumCert {
    /// The certified digest (of a log entry or a consensus decision).
    pub digest: Digest,
    /// The certifying group.
    pub group: u32,
    /// Signatures from distinct nodes of `group`.
    pub signatures: Vec<Signature>,
}

/// Quorum size for a PBFT group of `n` nodes: `2f + 1` with
/// `f = (n - 1) / 3`.
pub fn quorum(n: usize) -> usize {
    2 * ((n - 1) / 3) + 1
}

/// Maximum tolerated Byzantine nodes for a group of `n`: `(n - 1) / 3`.
pub fn max_faulty(n: usize) -> usize {
    (n - 1) / 3
}

impl QuorumCert {
    /// Assembles a certificate by signing `digest` with every key in
    /// `signers`. Test/simulation helper for the honest path.
    pub fn assemble(
        digest: Digest,
        group: u32,
        registry: &KeyRegistry,
        signers: impl IntoIterator<Item = NodeId>,
    ) -> QuorumCert {
        let signatures = signers
            .into_iter()
            .filter_map(|id| registry.key_of(id))
            .map(|k| k.sign_digest(&digest))
            .collect();
        QuorumCert {
            digest,
            group,
            signatures,
        }
    }

    /// Validates the certificate: `2f+1` distinct in-group signers, all
    /// signatures valid over `digest`.
    ///
    /// Every signature's expected HMAC tag is computed up front through
    /// [`KeyRegistry::verify_digest_batch`] — one multi-lane SHA pass per
    /// HMAC stage for the whole quorum instead of a kernel entry per
    /// signature. The structural checks then walk signatures in order, so
    /// the reported error (variant *and* which signer) is identical to
    /// checking one signature at a time.
    pub fn validate(&self, registry: &KeyRegistry) -> Result<(), CertError> {
        let n = registry.group_size(self.group);
        let need = quorum(n);
        if self.signatures.len() < need {
            return Err(CertError::InsufficientSignatures {
                have: self.signatures.len(),
                need,
            });
        }
        let verdicts = registry.verify_digest_batch(&self.digest, &self.signatures);
        let mut seen = std::collections::BTreeSet::new();
        for (sig, &ok) in self.signatures.iter().zip(&verdicts) {
            if sig.signer.group != self.group {
                return Err(CertError::ForeignSigner(sig.signer));
            }
            if !seen.insert(sig.signer) {
                return Err(CertError::DuplicateSigner(sig.signer));
            }
            if !ok {
                return Err(CertError::BadSignature(sig.signer));
            }
        }
        Ok(())
    }

    /// Validates and additionally checks the certificate covers `expected`.
    pub fn validate_for(&self, expected: &Digest, registry: &KeyRegistry) -> Result<(), CertError> {
        if self.digest != *expected {
            // A mismatched digest means every signature is over the wrong
            // message; report the first signer for diagnostics.
            let who = self
                .signatures
                .first()
                .map(|s| s.signer)
                .unwrap_or(NodeId::new(self.group, 0));
            return Err(CertError::BadSignature(who));
        }
        self.validate(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KeyRegistry, Digest) {
        (KeyRegistry::generate(7, &[7, 7]), Digest::of(b"entry"))
    }

    fn signer_range(group: u32, n: u32) -> impl Iterator<Item = NodeId> {
        (0..n).map(move |i| NodeId::new(group, i))
    }

    #[test]
    fn quorum_math_matches_paper() {
        // n >= 3f + 1 (paper §II-A); for n = 7, f = 2, quorum = 5.
        assert_eq!(max_faulty(7), 2);
        assert_eq!(quorum(7), 5);
        assert_eq!(max_faulty(4), 1);
        assert_eq!(quorum(4), 3);
        assert_eq!(max_faulty(40), 13);
        assert_eq!(quorum(40), 27);
        assert_eq!(quorum(1), 1);
    }

    #[test]
    fn honest_certificate_validates() {
        let (reg, d) = setup();
        let cert = QuorumCert::assemble(d, 0, &reg, signer_range(0, 5));
        assert_eq!(cert.validate(&reg), Ok(()));
        assert_eq!(cert.validate_for(&d, &reg), Ok(()));
    }

    #[test]
    fn too_few_signatures_rejected() {
        let (reg, d) = setup();
        let cert = QuorumCert::assemble(d, 0, &reg, signer_range(0, 4));
        assert_eq!(
            cert.validate(&reg),
            Err(CertError::InsufficientSignatures { have: 4, need: 5 })
        );
    }

    #[test]
    fn duplicate_signer_rejected() {
        let (reg, d) = setup();
        let mut cert = QuorumCert::assemble(d, 0, &reg, signer_range(0, 5));
        cert.signatures[4] = cert.signatures[0];
        assert_eq!(
            cert.validate(&reg),
            Err(CertError::DuplicateSigner(NodeId::new(0, 0)))
        );
    }

    #[test]
    fn foreign_signer_rejected() {
        let (reg, d) = setup();
        let mut signers: Vec<NodeId> = signer_range(0, 4).collect();
        signers.push(NodeId::new(1, 0)); // from the other group
        let cert = QuorumCert::assemble(d, 0, &reg, signers);
        assert_eq!(
            cert.validate(&reg),
            Err(CertError::ForeignSigner(NodeId::new(1, 0)))
        );
    }

    #[test]
    fn tampered_digest_rejected() {
        let (reg, d) = setup();
        let mut cert = QuorumCert::assemble(d, 0, &reg, signer_range(0, 5));
        cert.digest = Digest::of(b"tampered entry");
        assert!(matches!(
            cert.validate(&reg),
            Err(CertError::BadSignature(_))
        ));
    }

    #[test]
    fn validate_for_detects_digest_swap() {
        let (reg, d) = setup();
        let other = Digest::of(b"other entry");
        // A *valid* cert over `other` must not pass for `d`.
        let cert = QuorumCert::assemble(other, 0, &reg, signer_range(0, 5));
        assert_eq!(cert.validate(&reg), Ok(()));
        assert!(cert.validate_for(&d, &reg).is_err());
    }

    /// Reference validator: the original one-signature-at-a-time path.
    /// The batched `validate` must agree exactly — same verdict, same
    /// error variant, same blamed signer.
    fn validate_scalar(cert: &QuorumCert, registry: &KeyRegistry) -> Result<(), CertError> {
        let need = quorum(registry.group_size(cert.group));
        if cert.signatures.len() < need {
            return Err(CertError::InsufficientSignatures {
                have: cert.signatures.len(),
                need,
            });
        }
        let mut seen = std::collections::BTreeSet::new();
        for sig in &cert.signatures {
            if sig.signer.group != cert.group {
                return Err(CertError::ForeignSigner(sig.signer));
            }
            if !seen.insert(sig.signer) {
                return Err(CertError::DuplicateSigner(sig.signer));
            }
            if !registry.verify_digest(&cert.digest, sig) {
                return Err(CertError::BadSignature(sig.signer));
            }
        }
        Ok(())
    }

    #[test]
    fn batched_validate_matches_scalar_path() {
        let (reg, d) = setup();
        let good = QuorumCert::assemble(d, 0, &reg, signer_range(0, 6));
        let mut variants: Vec<QuorumCert> = vec![good.clone()];
        // Tamper each signature's tag in turn.
        for i in 0..6 {
            let mut c = good.clone();
            c.signatures[i].tag[31] ^= 0x80;
            variants.push(c);
        }
        // Duplicate, foreign, unknown, short, and tampered-digest shapes.
        let mut dup = good.clone();
        dup.signatures[5] = dup.signatures[2];
        variants.push(dup);
        let mut foreign = good.clone();
        foreign.signatures[3].signer = NodeId::new(1, 3);
        variants.push(foreign);
        let mut unknown = good.clone();
        unknown.signatures[0].signer = NodeId::new(0, 42);
        variants.push(unknown);
        let mut short = good.clone();
        short.signatures.truncate(4);
        variants.push(short);
        let mut swapped = good.clone();
        swapped.digest = Digest::of(b"swapped");
        variants.push(swapped);
        // A foreign signer *after* a bad tag: tag error must win (order).
        let mut both = good.clone();
        both.signatures[1].tag[0] ^= 1;
        both.signatures[4].signer = NodeId::new(1, 4);
        variants.push(both);

        for (i, cert) in variants.iter().enumerate() {
            assert_eq!(
                cert.validate(&reg),
                validate_scalar(cert, &reg),
                "variant {i} diverged from the scalar path"
            );
        }
    }

    #[test]
    fn byzantine_minority_cannot_forge() {
        // f = 2 colluding nodes sign a tampered digest; even with their two
        // valid signatures the certificate falls short of quorum.
        let (reg, _) = setup();
        let bad = Digest::of(b"forged");
        let cert = QuorumCert::assemble(bad, 0, &reg, signer_range(0, 2));
        assert_eq!(
            cert.validate(&reg),
            Err(CertError::InsufficientSignatures { have: 2, need: 5 })
        );
    }
}

//! Cryptographic substrate for MassBFT.
//!
//! The paper's prototype uses ED25519 signatures and SHA-256 digests
//! (§VI, *Implementation*). This crate provides:
//!
//! - [`sha256`] — a from-scratch FIPS 180-4 SHA-256,
//! - [`hmac`] — HMAC-SHA-256 (RFC 2104),
//! - [`merkle`] — Merkle trees and inclusion proofs used by the optimistic
//!   entry rebuild (paper §IV-C),
//! - [`keys`] — a *simulated* public-key infrastructure where signatures are
//!   HMAC tags under per-node secrets held by a [`keys::KeyRegistry`],
//! - [`cert`] — quorum certificates (`2f+1` signatures over a digest), the
//!   artifact local PBFT consensus produces to protect entries during
//!   global replication.
//!
//! # Substitution note (see DESIGN.md §2)
//!
//! Real asymmetric signatures are replaced by keyed MACs verified through a
//! registry. Within the simulation's threat model — the adversary controls
//! faulty nodes but "cannot break the cryptographic primitives" (paper
//! §III-A) — the two are interchangeable: a faulty node cannot produce a
//! valid tag for a key it does not hold, so quorum-certificate and
//! tamper-detection logic exercise identical code paths. The per-signature
//! CPU cost that shapes the paper's Fig. 13a plateau is modelled in the
//! simulator as configurable virtual time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod hmac;
pub mod keys;
pub mod merkle;
pub mod sha256;

pub use cert::{CertError, QuorumCert};
pub use keys::{KeyRegistry, NodeKey, Signature};
pub use merkle::{MerkleProof, MerkleTree};

/// A 32-byte SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest; used as a placeholder.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hashes `data` with SHA-256.
    pub fn of(data: &[u8]) -> Digest {
        Digest(sha256::sha256(data))
    }

    /// Hashes the concatenation of several byte strings, length-prefixing
    /// each part so that `("ab","c")` and `("a","bc")` differ.
    pub fn of_parts(parts: &[&[u8]]) -> Digest {
        let mut h = sha256::Sha256::new();
        for p in parts {
            h.update(&(p.len() as u64).to_le_bytes());
            h.update(p);
        }
        Digest(h.finalize())
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Short hex form for logs.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({}…)", self.short_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_parts_is_injective_on_boundaries() {
        let a = Digest::of_parts(&[b"ab", b"c"]);
        let b = Digest::of_parts(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn of_matches_itself_and_differs_from_framed() {
        assert_ne!(Digest::of(b"x"), Digest::of_parts(&[b"x"]));
        assert_eq!(Digest::of(b"x"), Digest::of(b"x"));
    }

    #[test]
    fn debug_is_short() {
        let d = Digest::of(b"hello");
        let s = format!("{d:?}");
        assert!(s.starts_with("Digest("));
        assert!(s.len() < 24);
    }
}

//! Merkle trees and inclusion proofs.
//!
//! Paper §IV-C: after encoding an entry into chunks, each sender builds a
//! Merkle tree over the chunks and ships each chunk with its proof.
//! Receivers bucket chunks by Merkle *root*; chunks in one bucket are
//! guaranteed to come from the same encoding, so a bucket that reaches
//! `n_data` chunks can attempt a rebuild, and a failed rebuild condemns the
//! whole bucket (all its chunk IDs get blacklisted).
//!
//! Leaves are domain-separated from internal nodes (prefix byte) to prevent
//! second-preimage tricks where an internal node is replayed as a leaf.
//! Odd nodes at any level are promoted unchanged (Bitcoin-style duplication
//! is avoided because it admits trivial collisions).

use crate::{sha256::Sha256, Digest};

const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// Minimum leaf count before [`MerkleTree::build`] hashes leaves on scoped
/// worker threads. Chunked entries at paper scale (tens of leaves, each a
/// sizeable erasure-coded chunk) clear this easily; tiny trees stay on the
/// calling thread.
pub const PARALLEL_LEAF_COUNT: usize = 4;

/// Minimum total leaf bytes before leaf hashing goes parallel. Hashing is
/// ~100 MiB/s-scale work, so below this the thread-spawn cost outweighs
/// the win even when the leaf count clears [`PARALLEL_LEAF_COUNT`].
const PARALLEL_LEAF_BYTES: usize = 256 * 1024;

fn hash_leaf(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(data);
    Digest(h.finalize())
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(&left.0);
    h.update(&right.0);
    Digest(h.finalize())
}

/// A Merkle tree over an ordered list of byte-string leaves.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = `[root]`.
    levels: Vec<Vec<Digest>>,
}

/// One sibling step of a Merkle proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling hash at this level.
    pub sibling: Digest,
    /// Whether the sibling sits to the left of the path node.
    pub sibling_on_left: bool,
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Total number of leaves in the tree (binds the proof to a geometry).
    pub leaf_count: usize,
    /// Sibling hashes bottom-up. Levels where the node had no sibling
    /// (odd promotion) contribute no step.
    pub path: Vec<ProofStep>,
}

impl MerkleTree {
    /// Builds a tree over `leaves`.
    ///
    /// Leaf hashing — the dominant cost, proportional to total leaf bytes —
    /// fans out over scoped threads once the leaf set is large enough
    /// ([`PARALLEL_LEAF_COUNT`] leaves and ≥256 KiB of data). The inner
    /// levels hash fixed-size digests and always stay sequential.
    ///
    /// # Panics
    /// Panics on an empty leaf set — the replication layer never encodes
    /// zero chunks.
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let total_bytes: usize = leaves.iter().map(|l| l.as_ref().len()).sum();
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        if leaves.len() < PARALLEL_LEAF_COUNT || total_bytes < PARALLEL_LEAF_BYTES || workers < 2 {
            return Self::build_sequential(leaves);
        }

        let refs: Vec<&[u8]> = leaves.iter().map(AsRef::as_ref).collect();
        let band = refs.len().div_ceil(workers.min(refs.len()));
        let leaf_hashes: Vec<Digest> = std::thread::scope(|s| {
            let handles: Vec<_> = refs
                .chunks(band)
                .map(|chunk| {
                    s.spawn(move || chunk.iter().map(|l| hash_leaf(l)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("leaf hash worker panicked"))
                .collect()
        });
        Self::from_leaf_hashes(leaf_hashes)
    }

    /// Builds a tree over `leaves` entirely on the calling thread.
    ///
    /// Same tree as [`MerkleTree::build`]; kept public so tests and benches
    /// can compare the two paths.
    ///
    /// # Panics
    /// Panics on an empty leaf set.
    pub fn build_sequential<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        Self::from_leaf_hashes(leaves.iter().map(|l| hash_leaf(l.as_ref())).collect())
    }

    /// Builds the inner levels above an already-hashed leaf row.
    fn from_leaf_hashes(leaf_hashes: Vec<Digest>) -> Self {
        let mut levels = vec![leaf_hashes];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i < prev.len() {
                if i + 1 < prev.len() {
                    next.push(hash_node(&prev[i], &prev[i + 1]));
                    i += 2;
                } else {
                    next.push(prev[i]); // odd promotion
                    i += 1;
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root hash.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Generates the inclusion proof for leaf `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut path = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if i.is_multiple_of(2) { i + 1 } else { i - 1 };
            if sibling < level.len() {
                path.push(ProofStep {
                    sibling: level[sibling],
                    sibling_on_left: sibling < i,
                });
            }
            i /= 2;
        }
        MerkleProof {
            leaf_index: index,
            leaf_count: self.leaf_count(),
            path,
        }
    }
}

impl MerkleProof {
    /// Verifies that `leaf_data` is the leaf at `self.leaf_index` of the
    /// tree with root `root`.
    pub fn verify(&self, root: &Digest, leaf_data: &[u8]) -> bool {
        // Recompute the path; also check the path length is plausible for
        // the claimed geometry so proofs can't smuggle extra levels.
        if self.leaf_index >= self.leaf_count {
            return false;
        }
        let mut acc = hash_leaf(leaf_data);
        let mut i = self.leaf_index;
        let mut width = self.leaf_count;
        let mut step_iter = self.path.iter();
        while width > 1 {
            let has_sibling = if i.is_multiple_of(2) {
                i + 1 < width
            } else {
                true
            };
            if has_sibling {
                let Some(step) = step_iter.next() else {
                    return false;
                };
                let expected_side = i % 2 == 1;
                if step.sibling_on_left != expected_side {
                    return false;
                }
                acc = if step.sibling_on_left {
                    hash_node(&step.sibling, &acc)
                } else {
                    hash_node(&acc, &step.sibling)
                };
            }
            i /= 2;
            width = width.div_ceil(2);
        }
        step_iter.next().is_none() && acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("chunk-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let t = MerkleTree::build(&[b"only".to_vec()]);
        assert_eq!(t.leaf_count(), 1);
        let p = t.prove(0);
        assert!(p.path.is_empty());
        assert!(p.verify(&t.root(), b"only"));
        assert!(!p.verify(&t.root(), b"other"));
    }

    #[test]
    fn all_proofs_verify_for_many_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 13, 28, 33, 64] {
            let ls = leaves(n);
            let t = MerkleTree::build(&ls);
            for (i, l) in ls.iter().enumerate() {
                let p = t.prove(i);
                assert!(p.verify(&t.root(), l), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_data_rejected() {
        let ls = leaves(7);
        let t = MerkleTree::build(&ls);
        let p = t.prove(3);
        assert!(!p.verify(&t.root(), &ls[4]));
        assert!(!p.verify(&t.root(), b"garbage"));
    }

    #[test]
    fn proof_not_transferable_between_indices() {
        let ls = leaves(8);
        let t = MerkleTree::build(&ls);
        let mut p = t.prove(2);
        p.leaf_index = 3; // claim a different position
        assert!(!p.verify(&t.root(), &ls[2]));
    }

    #[test]
    fn tampered_sibling_rejected() {
        let ls = leaves(6);
        let t = MerkleTree::build(&ls);
        let mut p = t.prove(1);
        p.path[0].sibling = Digest::of(b"evil");
        assert!(!p.verify(&t.root(), &ls[1]));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Big enough to cross both parallel thresholds (16 leaves, 512 KiB).
        let ls: Vec<Vec<u8>> = (0..16).map(|i| vec![i as u8 * 3 + 1; 32 * 1024]).collect();
        let par = MerkleTree::build(&ls);
        let seq = MerkleTree::build_sequential(&ls);
        assert_eq!(par.root(), seq.root());
        for (i, l) in ls.iter().enumerate() {
            assert_eq!(par.prove(i), seq.prove(i), "leaf {i}");
            assert!(seq.prove(i).verify(&par.root(), l));
        }
        // Odd leaf counts exercise promotion in the banded parallel path.
        let odd = &ls[..13];
        assert_eq!(
            MerkleTree::build(odd).root(),
            MerkleTree::build_sequential(odd).root()
        );
    }

    #[test]
    fn different_leaf_sets_different_roots() {
        let a = MerkleTree::build(&leaves(5));
        let mut ls = leaves(5);
        ls[2][0] ^= 1;
        let b = MerkleTree::build(&ls);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_not_confused_with_internal_node() {
        // Build a 2-leaf tree; its root's preimage (NODE_PREFIX || h1 || h2)
        // presented as leaf data of a 1-leaf tree must hash differently.
        let ls = leaves(2);
        let t = MerkleTree::build(&ls);
        let l0 = hash_leaf(&ls[0]);
        let l1 = hash_leaf(&ls[1]);
        let mut preimage = vec![NODE_PREFIX];
        preimage.extend_from_slice(&l0.0);
        preimage.extend_from_slice(&l1.0);
        let fake = MerkleTree::build(&[preimage]);
        assert_ne!(fake.root(), t.root());
    }

    #[test]
    fn extra_path_steps_rejected() {
        let ls = leaves(4);
        let t = MerkleTree::build(&ls);
        let mut p = t.prove(0);
        p.path.push(ProofStep {
            sibling: Digest::of(b"pad"),
            sibling_on_left: false,
        });
        assert!(!p.verify(&t.root(), &ls[0]));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        let empty: Vec<Vec<u8>> = vec![];
        let _ = MerkleTree::build(&empty);
    }

    proptest! {
        #[test]
        fn prop_every_proof_verifies(
            data in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..40)
        ) {
            let t = MerkleTree::build(&data);
            for (i, leaf) in data.iter().enumerate() {
                let p = t.prove(i);
                prop_assert!(p.verify(&t.root(), leaf));
            }
        }

        #[test]
        fn prop_proofs_fail_against_other_roots(
            data in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 2..20),
            flip_leaf in any::<prop::sample::Index>(),
        ) {
            let t = MerkleTree::build(&data);
            let mut other = data.clone();
            let k = flip_leaf.index(other.len());
            other[k].push(0xFF);
            let t2 = MerkleTree::build(&other);
            prop_assume!(t.root() != t2.root());
            // A proof from t for an unmodified leaf must not verify under t2
            // unless the leaf occupies an identical position/path, which the
            // flip rules out for leaf k itself.
            let p = t.prove(k);
            prop_assert!(!p.verify(&t2.root(), &data[k]));
        }
    }
}

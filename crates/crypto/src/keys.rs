//! Simulated public-key infrastructure.
//!
//! The paper assumes a PKI where "each node has a public-private key pair
//! for signing and verifying messages" (§III-A). In this reproduction a
//! node's *private key* is a 32-byte secret derived from a cluster seed and
//! its identity; a *signature* is `HMAC-SHA256(secret, msg)`. Verification
//! goes through the [`KeyRegistry`], which plays the role of the certificate
//! directory every node holds in a permissioned deployment.
//!
//! Soundness within the simulation: the adversary controls faulty nodes
//! (and thus their secrets) but never a correct node's secret, so it cannot
//! forge a correct node's signature — exactly the guarantee the protocol
//! needs from ED25519.

use crate::{hmac, Digest};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifies a node as `(group id, node id within group)`, matching the
/// paper's `N_{i,j}` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Group (data center) index, 0-based.
    pub group: u32,
    /// Node index within the group, 0-based.
    pub node: u32,
}

impl NodeId {
    /// Convenience constructor.
    pub fn new(group: u32, node: u32) -> Self {
        NodeId { group, node }
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N{},{}", self.group, self.node)
    }
}

/// A node's signing key.
#[derive(Clone)]
pub struct NodeKey {
    id: NodeId,
    secret: [u8; 32],
}

impl NodeKey {
    /// Signs a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature {
            signer: self.id,
            tag: hmac::hmac_sha256(&self.secret, msg),
        }
    }

    /// Signs a digest (the common case: PBFT votes sign entry digests).
    pub fn sign_digest(&self, d: &Digest) -> Signature {
        self.sign(&d.0)
    }

    /// The identity this key signs for.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl std::fmt::Debug for NodeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret.
        write!(f, "NodeKey({})", self.id)
    }
}

/// A signature: an HMAC tag bound to a claimed signer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Claimed signer identity.
    pub signer: NodeId,
    /// HMAC-SHA256 tag.
    pub tag: [u8; 32],
}

/// The cluster-wide key directory. Cheap to clone (`Arc` inside); every
/// node holds one and verifies peers' signatures against it.
#[derive(Debug, Clone)]
pub struct KeyRegistry {
    inner: Arc<RegistryInner>,
}

#[derive(Debug)]
struct RegistryInner {
    secrets: BTreeMap<NodeId, [u8; 32]>,
}

impl KeyRegistry {
    /// Derives keys for a cluster with the given group sizes from a seed.
    /// `group_sizes[i]` is the number of nodes in group `i`.
    pub fn generate(seed: u64, group_sizes: &[usize]) -> Self {
        let mut secrets = BTreeMap::new();
        for (g, &size) in group_sizes.iter().enumerate() {
            for n in 0..size {
                let id = NodeId::new(g as u32, n as u32);
                secrets.insert(id, derive_secret(seed, id));
            }
        }
        KeyRegistry {
            inner: Arc::new(RegistryInner { secrets }),
        }
    }

    /// Returns the signing key for `id`, if it is a registered node.
    pub fn key_of(&self, id: NodeId) -> Option<NodeKey> {
        self.inner
            .secrets
            .get(&id)
            .map(|&secret| NodeKey { id, secret })
    }

    /// Verifies `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        match self.inner.secrets.get(&sig.signer) {
            Some(secret) => {
                let expect = hmac::hmac_sha256(secret, msg);
                hmac::verify_tag(&expect, &sig.tag)
            }
            None => false,
        }
    }

    /// Verifies a signature over a digest.
    pub fn verify_digest(&self, d: &Digest, sig: &Signature) -> bool {
        self.verify(&d.0, sig)
    }

    /// Verifies many signatures over the same digest in one batched HMAC
    /// pass, returning per-signature verdicts in input order.
    ///
    /// All known signers' expected tags are computed through
    /// [`hmac::hmac_sha256_batch`] — two multi-lane SHA passes for the
    /// whole set instead of two per signature — which is where a quorum
    /// certificate spends its verification time. Unknown signers verify to
    /// `false` without consuming a lane.
    pub fn verify_digest_batch(&self, d: &Digest, sigs: &[Signature]) -> Vec<bool> {
        let secrets: Vec<Option<&[u8; 32]>> = sigs
            .iter()
            .map(|sig| self.inner.secrets.get(&sig.signer))
            .collect();
        let keys: Vec<&[u8]> = secrets
            .iter()
            .filter_map(|s| s.map(|k| k.as_slice()))
            .collect();
        let tags = hmac::hmac_sha256_batch(&keys, &d.0);
        let mut lane = 0;
        sigs.iter()
            .zip(&secrets)
            .map(|(sig, secret)| match secret {
                Some(_) => {
                    let ok = hmac::verify_tag(&tags[lane], &sig.tag);
                    lane += 1;
                    ok
                }
                None => false,
            })
            .collect()
    }

    /// All registered node ids, ordered.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.inner.secrets.keys().copied()
    }

    /// Number of nodes in group `g`.
    pub fn group_size(&self, g: u32) -> usize {
        self.inner.secrets.keys().filter(|id| id.group == g).count()
    }
}

fn derive_secret(seed: u64, id: NodeId) -> [u8; 32] {
    let mut material = Vec::with_capacity(24);
    material.extend_from_slice(b"massbft:");
    material.extend_from_slice(&seed.to_le_bytes());
    material.extend_from_slice(&id.group.to_le_bytes());
    material.extend_from_slice(&id.node.to_le_bytes());
    crate::sha256::sha256(&material)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> KeyRegistry {
        KeyRegistry::generate(42, &[4, 7, 7])
    }

    #[test]
    fn sign_verify_roundtrip() {
        let reg = registry();
        let key = reg.key_of(NodeId::new(1, 3)).unwrap();
        let sig = key.sign(b"message");
        assert!(reg.verify(b"message", &sig));
        assert!(!reg.verify(b"other", &sig));
    }

    #[test]
    fn signature_binds_signer() {
        let reg = registry();
        let key = reg.key_of(NodeId::new(0, 0)).unwrap();
        let mut sig = key.sign(b"m");
        sig.signer = NodeId::new(0, 1); // claim someone else signed
        assert!(!reg.verify(b"m", &sig));
    }

    #[test]
    fn unknown_signer_rejected() {
        let reg = registry();
        let fake = Signature {
            signer: NodeId::new(9, 9),
            tag: [0; 32],
        };
        assert!(!reg.verify(b"m", &fake));
        assert!(reg.key_of(NodeId::new(9, 9)).is_none());
    }

    #[test]
    fn deterministic_across_registries_same_seed() {
        let a = registry();
        let b = registry();
        let ka = a.key_of(NodeId::new(2, 6)).unwrap();
        let kb = b.key_of(NodeId::new(2, 6)).unwrap();
        assert_eq!(ka.sign(b"x"), kb.sign(b"x"));
    }

    #[test]
    fn different_seed_different_keys() {
        let a = KeyRegistry::generate(1, &[3]);
        let b = KeyRegistry::generate(2, &[3]);
        let sig = a.key_of(NodeId::new(0, 0)).unwrap().sign(b"x");
        assert!(!b.verify(b"x", &sig));
    }

    #[test]
    fn group_sizes_respected() {
        let reg = registry();
        assert_eq!(reg.group_size(0), 4);
        assert_eq!(reg.group_size(1), 7);
        assert_eq!(reg.group_size(2), 7);
        assert_eq!(reg.group_size(3), 0);
        assert_eq!(reg.nodes().count(), 18);
    }

    #[test]
    fn batch_verdicts_match_scalar_verify() {
        let reg = registry();
        let d = crate::Digest::of(b"batched entry");
        // Mix of valid, tampered, signer-swapped, and unknown-signer
        // signatures — including an unknown in the middle so the lane
        // cursor has to skip it.
        let mut sigs: Vec<Signature> = (0..4)
            .map(|n| reg.key_of(NodeId::new(1, n)).unwrap().sign_digest(&d))
            .collect();
        sigs[1].tag[0] ^= 1; // tampered
        sigs.insert(
            2,
            Signature {
                signer: NodeId::new(9, 9),
                tag: [7; 32],
            },
        );
        sigs[3].signer = NodeId::new(1, 6); // valid tag, wrong claimed signer
        let batch = reg.verify_digest_batch(&d, &sigs);
        let scalar: Vec<bool> = sigs.iter().map(|s| reg.verify_digest(&d, s)).collect();
        assert_eq!(batch, scalar);
        assert_eq!(batch, vec![true, false, false, false, true]);
        assert!(reg.verify_digest_batch(&d, &[]).is_empty());
    }

    #[test]
    fn debug_never_leaks_secret() {
        let reg = registry();
        let key = reg.key_of(NodeId::new(0, 0)).unwrap();
        let dbg = format!("{key:?}");
        assert_eq!(dbg, "NodeKey(N0,0)");
    }
}

//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Streaming [`Sha256`] hasher plus a one-shot [`sha256`] convenience.
//! Whole-block input is compressed by `massbft-accel`'s SHA-NI kernel when
//! the CPU has it; otherwise a scalar multi-block path keeps the hash
//! state in locals across blocks instead of round-tripping through the
//! struct per block. This crate itself stays `forbid(unsafe_code)` — the
//! hardware dispatch lives behind the accel crate's safe API.

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    ///
    /// Whole 64-byte blocks are compressed straight from `data` in a single
    /// multi-block pass that keeps the hash state in locals; only a partial
    /// trailing block is staged through the internal buffer.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        let whole = rest.len() - rest.len() % 64;
        if whole > 0 {
            compress_blocks(&mut self.state, &rest[..whole]);
            rest = &rest[whole..];
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        // careful: update() bumped total_len; we captured bit_len first.
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.total_len = 0; // silence further counting; length goes below
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_blocks(&mut self.state, block);
    }
}

/// Compresses a run of whole 64-byte blocks into `state`.
///
/// Dispatches to the SHA-NI kernel when the CPU supports it; the scalar
/// path keeps the working variables in locals for the entire run, so a
/// long `update` pays the state load/store once instead of once per block.
///
/// # Panics
/// Debug-asserts that `data` is a multiple of 64 bytes.
fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0, "whole blocks only");
    if massbft_accel::sha256_compress_blocks(state, data) {
        return;
    }
    let [mut h0, mut h1, mut h2, mut h3, mut h4, mut h5, mut h6, mut h7] = *state;
    for block in data.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let (mut a, mut b, mut c, mut d) = (h0, h1, h2, h3);
        let (mut e, mut f, mut g, mut h) = (h4, h5, h6, h7);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        h0 = h0.wrapping_add(a);
        h1 = h1.wrapping_add(b);
        h2 = h2.wrapping_add(c);
        h3 = h3.wrapping_add(d);
        h4 = h4.wrapping_add(e);
        h5 = h5.wrapping_add(f);
        h6 = h6.wrapping_add(g);
        h7 = h7.wrapping_add(h);
    }
    *state = [h0, h1, h2, h3, h4, h5, h6, h7];
}

/// Compresses many independent SHA-256 lanes: lane `i`'s state absorbs
/// `blocks_per_lane` whole blocks from
/// `blocks[i * blocks_per_lane * 64 ..][.. blocks_per_lane * 64]`.
///
/// One accel dispatch (single feature check + kernel entry) covers the
/// whole batch; on hosts without SHA-NI each lane runs the scalar
/// multi-block path. The batched HMAC verifier feeds every signature of a
/// quorum certificate through here as one pass per HMAC stage.
pub(crate) fn compress_lanes(states: &mut [[u32; 8]], blocks: &[u8], blocks_per_lane: usize) {
    debug_assert_eq!(
        blocks.len(),
        states.len() * blocks_per_lane * 64,
        "whole lanes only"
    );
    if massbft_accel::sha256_compress_lanes(states, blocks, blocks_per_lane) {
        return;
    }
    let run = blocks_per_lane * 64;
    for (state, lane_blocks) in states.iter_mut().zip(blocks.chunks_exact(run.max(64))) {
        compress_blocks(state, lane_blocks);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST / well-known test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exactly_55_56_63_64_65_bytes() {
        // Padding edge cases around the block boundary: compare streaming
        // in odd pieces against one-shot.
        for n in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data: Vec<u8> = (0..n as u32).map(|i| (i * 7 + 3) as u8).collect();
            let oneshot = sha256(&data);
            let mut h = Sha256::new();
            for piece in data.chunks(13) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), oneshot, "n={n}");
        }
    }

    #[test]
    fn compress_lanes_matches_per_lane_compress() {
        for (lanes, bpl) in [(1usize, 1usize), (3, 1), (4, 2), (7, 3)] {
            let blocks: Vec<u8> = (0..lanes * bpl * 64)
                .map(|i| (i as u32).wrapping_mul(167).wrapping_add(11) as u8)
                .collect();
            let mut batched = vec![H0; lanes];
            compress_lanes(&mut batched, &blocks, bpl);
            for (l, lane_blocks) in blocks.chunks_exact(bpl * 64).enumerate() {
                let mut solo = H0;
                compress_blocks(&mut solo, lane_blocks);
                assert_eq!(batched[l], solo, "lanes={lanes} bpl={bpl} lane={l}");
            }
        }
    }

    #[test]
    fn streaming_matches_oneshot_bytewise() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut h = Sha256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(&data));
    }
}

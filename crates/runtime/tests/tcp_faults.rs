//! Live-TCP fault matrix subset: the scheduled-fault machinery
//! (crashes, recovery via PBFT view change, partitions and heals) must
//! work over the wall-clock driver exactly as it does in the simulator.
//!
//! These run real threads over loopback TCP with injected WAN latency,
//! so they are wall-clock tests: a few seconds each, with assertions on
//! progress and consistency rather than exact counts.

use massbft_core::adversary::FaultEvent;
use massbft_core::cluster::ClusterConfig;
use massbft_core::protocol::Protocol;
use massbft_runtime::Cluster;
use massbft_sim_net::{NodeId, SECOND};
use massbft_workloads::WorkloadKind;

fn base(protocol: Protocol, sizes: &[usize]) -> ClusterConfig {
    ClusterConfig::nationwide(sizes, protocol)
        .workload(WorkloadKind::YcsbA)
        .seed(42)
        .arrival_tps(800.0)
        .max_batch(40)
}

/// Plain progress smoke: the TCP driver commits transactions and all
/// replicas stay prefix-consistent.
#[test]
fn tcp_cluster_makes_progress() {
    let mut c = Cluster::new(base(Protocol::MassBft, &[4, 4]));
    c.run_until(3 * SECOND);
    let txns = c.with_node(c.observer(), |n| n.executed_txns());
    assert!(txns > 0, "no transactions committed over TCP");
    assert!(c.check_consistency(), "replicas diverged");
}

/// Crashed primary: group 1's representative dies at 2 s; the PBFT
/// view change must elect a new primary which takes over as acting
/// representative, so group 1 keeps committing *new* transactions
/// (mirrors `crashed_primary_group_resumes_via_view_change` in the sim
/// fault-tolerance suite, with the sim's generous takeover timing).
#[test]
fn tcp_crashed_primary_recovers_via_view_change() {
    // Three groups: the global Raft needs a surviving quorum of group
    // representatives (2 of 3) to take over the crashed rep's instance.
    let cfg = base(Protocol::MassBft, &[4, 4, 4])
        .fault_at(2 * SECOND, FaultEvent::Crash(NodeId::new(1, 0)));
    let mut c = Cluster::new(cfg);
    c.run_until(8 * SECOND);
    let obs = c.observer();
    let mid = c.with_node(obs, |n| n.executed_by_group()[1]);
    c.run_until(14 * SECOND);
    let end = c.with_node(obs, |n| n.executed_by_group()[1]);
    let view = c.with_node(NodeId::new(1, 1), |n| n.pbft_view());
    assert!(view > 0, "no view change after primary crash");
    assert!(
        end > mid,
        "group 1 stopped proposing after its primary crashed: {mid} → {end}"
    );
    assert!(c.check_consistency(), "replicas diverged after view change");
}

/// Partition / heal: sever the WAN between the two groups, then heal
/// it; the cluster must make progress after healing and stay
/// consistent.
#[test]
fn tcp_partition_and_heal_keeps_consistency() {
    let cfg = base(Protocol::EncodedBijective, &[3, 3])
        .fault_at(2 * SECOND, FaultEvent::PartitionGroups(0, 1))
        .fault_at(4 * SECOND, FaultEvent::HealGroups(0, 1));
    let mut c = Cluster::new(cfg);
    c.run_until(7 * SECOND);
    let txns = c.with_node(c.observer(), |n| n.executed_txns());
    assert!(txns > 0, "no progress across partition/heal");
    assert!(c.check_consistency(), "replicas diverged across partition");
}

//! Frame codec properties:
//!
//! 1. **Wire-model agreement** (one assertion per `Msg` variant): the
//!    encoded body length equals `massbft_core::wire::msg_wire_size`,
//!    so wall-clock byte counters and the simulator's byte accounting
//!    measure the same thing.
//! 2. **Robust reassembly**: frames split across arbitrary read
//!    boundaries, coalesced into single reads, truncated mid-frame, or
//!    replaced with garbage never panic and never mis-frame.
//!
//! `Msg` doesn't implement `PartialEq`, so roundtrips are compared by
//! re-encoding the decoded message and asserting byte equality — the
//! encoder is deterministic, so equal bytes imply equal messages.

use bytes::Bytes;
use massbft_consensus::{pbft::PbftMsg, raft::LogEntry, RaftMsg};
use massbft_core::protocol::{FeedEvent, GlobalCmd, Msg};
use massbft_core::replication::ChunkMsg;
use massbft_core::{wire, EntryId};
use massbft_crypto::keys::NodeId;
use massbft_crypto::merkle::ProofStep;
use massbft_crypto::{Digest, MerkleProof, QuorumCert, Signature};
use massbft_runtime::frame::{
    decode_msg, encode_frame, FrameBuffer, FrameError, FRAME_HEADER, MAX_FRAME,
};
use proptest::prelude::*;

fn digest(b: u8) -> Digest {
    Digest([b; 32])
}

fn sig(g: u32, n: u32, b: u8) -> Signature {
    Signature {
        signer: NodeId::new(g, n),
        tag: [b; 32],
    }
}

fn cert(n_sigs: usize) -> QuorumCert {
    QuorumCert {
        digest: digest(7),
        group: 1,
        signatures: (0..n_sigs).map(|i| sig(1, i as u32, i as u8)).collect(),
    }
}

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}

/// One instance of every `Msg` variant (and every Raft sub-variant),
/// with non-trivial field values.
fn sample_msgs() -> Vec<Msg> {
    vec![
        Msg::Pbft(PbftMsg::PrePrepare {
            view: 3,
            seq: 42,
            payload: payload(97),
            digest: digest(1),
        }),
        Msg::Pbft(PbftMsg::Prepare {
            view: 3,
            seq: 42,
            digest: digest(2),
            sig: sig(0, 2, 9),
        }),
        Msg::Pbft(PbftMsg::Commit {
            view: 3,
            seq: 42,
            digest: digest(3),
            sig: sig(0, 3, 8),
        }),
        Msg::Pbft(PbftMsg::ViewChange {
            new_view: 4,
            last_exec: 40,
            prepared: vec![(41, digest(4), payload(30)), (42, digest(5), payload(0))],
            sig: sig(0, 1, 7),
        }),
        Msg::Pbft(PbftMsg::NewView {
            view: 4,
            reproposals: vec![(41, payload(30)), (42, payload(5))],
        }),
        Msg::Pbft(PbftMsg::Heartbeat { view: 4 }),
        Msg::Chunk {
            chunk: ChunkMsg {
                entry: EntryId::new(2, 17),
                chunk_id: 3,
                data: payload(200),
                root: digest(6),
                proof: MerkleProof {
                    leaf_index: 3,
                    leaf_count: 8,
                    path: vec![
                        ProofStep {
                            sibling: digest(10),
                            sibling_on_left: true,
                        },
                        ProofStep {
                            sibling: digest(11),
                            sibling_on_left: false,
                        },
                    ],
                },
            },
            cert: cert(3),
        },
        Msg::Entry {
            id: EntryId::new(1, 9),
            bytes: payload(150),
            cert: cert(3),
        },
        Msg::Raft {
            instance: 2,
            rmsg: RaftMsg::RequestVote {
                term: 5,
                last_log_index: 30,
                last_log_term: 4,
            },
            cert_bytes: 0,
        },
        Msg::Raft {
            instance: 2,
            rmsg: RaftMsg::Vote {
                term: 5,
                granted: true,
            },
            cert_bytes: 0,
        },
        Msg::Raft {
            instance: 2,
            rmsg: RaftMsg::AppendEntries {
                term: 5,
                prev_index: 30,
                prev_term: 4,
                entries: vec![
                    LogEntry {
                        term: 5,
                        data: GlobalCmd {
                            entry: Some((EntryId::new(2, 31), digest(12))),
                            stamps: vec![(EntryId::new(0, 7), 11), (EntryId::new(1, 8), 12)],
                        },
                    },
                    LogEntry {
                        term: 5,
                        data: GlobalCmd {
                            entry: None,
                            stamps: vec![(EntryId::new(2, 9), 13)],
                        },
                    },
                ],
                leader_commit: 29,
            },
            cert_bytes: 224,
        },
        Msg::Raft {
            instance: 2,
            rmsg: RaftMsg::AppendResp {
                term: 5,
                success: false,
                match_index: 28,
            },
            cert_bytes: 0,
        },
        Msg::Raft {
            instance: 2,
            rmsg: RaftMsg::TimeoutNow,
            cert_bytes: 0,
        },
        Msg::Feed {
            events: vec![
                FeedEvent::Committed(EntryId::new(1, 5)),
                FeedEvent::Stamp {
                    stamper: 2,
                    target: EntryId::new(0, 6),
                    ts: 99,
                },
            ],
        },
        Msg::EntryRequest {
            id: EntryId::new(2, 44),
        },
        Msg::AcceptNotice {
            from_group: 1,
            entries: vec![EntryId::new(0, 1), EntryId::new(0, 2)],
        },
        Msg::EpochClose { group: 2, epoch: 6 },
    ]
}

/// Satellite: the frame body is byte-for-byte as large as the wire
/// model says — per variant, no drift allowed in either direction.
#[test]
fn encoded_body_matches_wire_model_per_variant() {
    for (i, msg) in sample_msgs().iter().enumerate() {
        let frame = encode_frame(msg).expect("sample must encode");
        assert_eq!(
            frame.len() - FRAME_HEADER,
            wire::msg_wire_size(msg),
            "variant #{i} body size disagrees with wire model"
        );
    }
}

#[test]
fn roundtrip_reencodes_identically() {
    for (i, msg) in sample_msgs().iter().enumerate() {
        let frame = encode_frame(msg).expect("sample must encode");
        let decoded = decode_msg(&frame.slice(FRAME_HEADER..)).expect("decodes");
        let again = encode_frame(&decoded).expect("re-encodes");
        assert_eq!(
            frame.as_slice(),
            again.as_slice(),
            "variant #{i} not stable under decode∘encode"
        );
    }
}

#[test]
fn oversized_and_zero_length_prefixes_rejected() {
    let mut fb = FrameBuffer::new();
    let mut raw = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
    raw.extend_from_slice(&[0u8; 16]);
    fb.push(&raw);
    assert!(matches!(fb.next_frame(), Err(FrameError::BadLength(_))));

    let mut fb = FrameBuffer::new();
    fb.push(&0u32.to_le_bytes());
    assert!(matches!(fb.next_frame(), Err(FrameError::BadLength(0))));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Frames split at arbitrary read boundaries (including boundaries
    /// inside the length prefix) and frames coalesced many-per-read all
    /// reassemble to exactly the original sequence.
    #[test]
    fn split_and_coalesced_streams_reframe_exactly(
        seed in any::<u64>(),
        n_msgs in 1usize..8,
        chunk in 1usize..300,
    ) {
        let samples = sample_msgs();
        let mut stream: Vec<u8> = Vec::new();
        let mut frames: Vec<Bytes> = Vec::new();
        let mut s = seed;
        for _ in 0..n_msgs {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let m = &samples[(s >> 33) as usize % samples.len()];
            let f = encode_frame(m).expect("sample must encode");
            stream.extend_from_slice(&f);
            frames.push(f);
        }
        let mut fb = FrameBuffer::new();
        let mut got: Vec<Bytes> = Vec::new();
        for c in stream.chunks(chunk) {
            fb.push(c);
            while let Some(body) = fb.next_frame().expect("valid stream") {
                got.push(body);
            }
        }
        prop_assert_eq!(got.len(), frames.len());
        for (body, f) in got.iter().zip(&frames) {
            let m = decode_msg(body).expect("valid body");
            let re = encode_frame(&m).expect("re-encodes");
            prop_assert_eq!(re.as_slice(), f.as_slice());
        }
        prop_assert_eq!(fb.pending(), 0);
    }

    /// A frame cut mid-stream yields `Ok(None)` (wait for more bytes),
    /// and delivering the remainder completes it losslessly.
    #[test]
    fn mid_frame_truncation_resumes_cleanly(
        idx in 0usize..17,
        cut in 1usize..4096,
    ) {
        let samples = sample_msgs();
        let msg = &samples[idx % samples.len()];
        let f = encode_frame(msg).expect("sample must encode");
        let cut = cut.min(f.len() - 1);
        let mut fb = FrameBuffer::new();
        fb.push(&f[..cut]);
        prop_assert!(matches!(fb.next_frame(), Ok(None)));
        fb.push(&f[cut..]);
        let body = fb.next_frame().expect("valid").expect("complete now");
        let re = encode_frame(&decode_msg(&body).expect("decodes")).expect("re-encodes");
        prop_assert_eq!(re.as_slice(), f.as_slice());
        prop_assert!(matches!(fb.next_frame(), Ok(None)));
    }

    /// Arbitrary garbage never panics the reassembler or the decoder —
    /// it either waits for more bytes, produces an error, or decodes by
    /// luck; all are acceptable, crashing is not.
    #[test]
    fn garbage_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut fb = FrameBuffer::new();
        fb.push(&data);
        loop {
            match fb.next_frame() {
                Ok(Some(body)) => { let _ = decode_msg(&body); }
                Ok(None) => break,
                Err(_) => break,
            }
        }
        let _ = decode_msg(&Bytes::from(data.clone()));
    }

    /// Flipping bytes inside a valid frame body must never panic the
    /// decoder (counts and lengths are attacker-controlled).
    #[test]
    fn corrupted_bodies_never_panic(
        idx in 0usize..17,
        pos in 0usize..4096,
        xor in 1u8..255,
    ) {
        let samples = sample_msgs();
        let f = encode_frame(&samples[idx % samples.len()]).expect("encodes");
        let mut body = f[FRAME_HEADER..].to_vec();
        let pos = pos % body.len();
        body[pos] ^= xor;
        let _ = decode_msg(&Bytes::from(body));
    }
}

//! Thread-per-node reactors and a wall-clock [`Cluster`] facade
//! mirroring `massbft_core::cluster::Cluster`, so the same experiment
//! code, fault schedules, and adversary specs drive either the
//! simulator or real TCP.
//!
//! Differences from the simulator, by design:
//! - `Ctx::now()` is wall-clock microseconds since cluster start, so
//!   latency samples and telemetry spans measure real time.
//! - `Command::SpendCpu` is ignored: the actors burn real CPU here, the
//!   virtual cost model would double-count it.
//! - Runs are *not* bit-deterministic (thread scheduling orders message
//!   interleavings); protocol-level agreement still holds, which
//!   `tests/cross_driver.rs` checks by comparing ledgers across
//!   drivers under timing-independent configurations.
//!
//! Crash semantics mirror the simulator exactly: a crashed node's
//! reactor drops inbound messages and expiring timers silently (state
//! retained, timers consumed), and its sends are gated in
//! [`crate::net::NetHandle::send`]; recovery just clears the flag
//! without re-running `on_start`.

use crate::frame::encode_frame;
use crate::net::{spawn_acceptor, Event, NetHandle, Shared};
use crate::wheel::TimerWheel;
use bytes::Bytes;
use massbft_core::adversary::{FaultEvent, ScheduledFault, Strategy};
use massbft_core::cluster::{ClusterConfig, Region, Report};
use massbft_core::protocol::{Msg, Node};
use massbft_core::stats::Throughput;
use massbft_crypto::KeyRegistry;
use massbft_sim_net::{Actor, Command, Ctx, NodeId, Time, Topology, TopologyBuilder, SECOND};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Max time a reactor sleeps in `recv_timeout` before re-checking the
/// wheel and the shutdown flag.
const REACTOR_POLL_US: u64 = 20_000;
/// Messages drained per node-lock acquisition.
const DRAIN_BATCH: usize = 64;

/// Which part of the cluster this OS process hosts (multi-process
/// mode). The default, [`HostSpec::all`], hosts everything in-process
/// with ephemeral loopback ports.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Groups whose nodes run in this process.
    pub hosted_groups: Vec<u32>,
    /// When set, node `(g, n)` listens on `127.0.0.1:(base + dense
    /// index)` — every process computes the same address table without
    /// coordination. `None` means ephemeral ports (single-process only).
    pub port_base: Option<u16>,
}

impl HostSpec {
    /// Host every group in this process on ephemeral ports.
    pub fn all(num_groups: usize) -> Self {
        HostSpec {
            hosted_groups: (0..num_groups as u32).collect(),
            port_base: None,
        }
    }

    /// Host a subset of groups with the fixed-port address scheme.
    pub fn groups(hosted: &[u32], port_base: u16) -> Self {
        HostSpec {
            hosted_groups: hosted.to_vec(),
            port_base: Some(port_base),
        }
    }
}

enum Pending {
    Timer(u64),
    /// A `SendAfter` whose network entry was postponed: the frame is
    /// pre-encoded, the destination resolved at fire time.
    Send(NodeId, Bytes),
}

struct LocalNode {
    id: NodeId,
    node: Arc<Mutex<Node>>,
    tx: Sender<Event>,
    reactor: Option<std::thread::JoinHandle<()>>,
}

/// A running wall-clock cluster experiment. The API mirrors
/// [`massbft_core::cluster::Cluster`]: `run_until`/`run_secs` advance
/// (real) time applying the scripted fault schedule, windows produce
/// the same [`Report`].
pub struct Cluster {
    shared: Arc<Shared>,
    cfg: ClusterConfig,
    nodes: Vec<LocalNode>,
    schedule: Vec<ScheduledFault>,
    next_fault: usize,
    window_start_txns: u64,
    window_start_time: Time,
    window_wan: u64,
    window_lan: u64,
    window_wan_per_node: Vec<u64>,
}

fn build_topology(cfg: &ClusterConfig) -> Topology {
    let sizes = &cfg.params.group_sizes;
    let mut b = match cfg.region {
        Region::Nationwide => TopologyBuilder::nationwide(sizes),
        Region::Worldwide => TopologyBuilder::worldwide(sizes),
    };
    b = b.wan_bandwidth_mbps(cfg.wan_mbps);
    for &(id, mbps) in &cfg.node_wan_mbps {
        b = b.node_bandwidth_mbps(id, mbps);
    }
    b.build()
}

impl Cluster {
    /// Builds and starts the cluster: binds one loopback listener per
    /// node, then spawns acceptor and reactor threads. By the time this
    /// returns, every node has run `on_start` (or is about to; peers
    /// retry connects, so ordering is not load-bearing).
    pub fn new(cfg: ClusterConfig) -> Self {
        Self::new_hosted(cfg, None)
    }

    /// Multi-process entry point: host only `spec.hosted_groups` here,
    /// with the deterministic port scheme shared by all processes.
    pub fn new_hosted(cfg: ClusterConfig, spec: Option<HostSpec>) -> Self {
        let topo = build_topology(&cfg);
        let spec = spec.unwrap_or_else(|| HostSpec::all(topo.group_count()));
        let registry = KeyRegistry::generate(cfg.params.seed, &cfg.params.group_sizes);

        let local_ids: Vec<NodeId> = topo
            .nodes()
            .filter(|id| spec.hosted_groups.contains(&id.group))
            .collect();

        // Bind all local listeners first so the address table is
        // complete before anything starts sending.
        let mut listeners: Vec<(NodeId, TcpListener)> = Vec::with_capacity(local_ids.len());
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(topo.node_count());
        for (dense, id) in topo.nodes().enumerate() {
            let addr: SocketAddr = match spec.port_base {
                Some(base) => format!("127.0.0.1:{}", base as usize + dense)
                    .parse()
                    .expect("loopback addr"),
                None => "127.0.0.1:0".parse().expect("loopback addr"),
            };
            if spec.hosted_groups.contains(&id.group) {
                let l = TcpListener::bind(addr).expect("bind node listener");
                addrs.push(l.local_addr().expect("listener addr"));
                listeners.push((id, l));
            } else {
                addrs.push(addr);
            }
        }

        let shared = Shared::new(topo, addrs);

        // Desugar DelayAll adversaries into send-delay fault events,
        // exactly like the simulator harness does.
        let mut schedule = cfg.faults.clone();
        for spec in &cfg.params.adversaries {
            if let Strategy::DelayAll { delay_us } = spec.strategy {
                schedule.push(spec.from_us, FaultEvent::SetSendDelay(spec.node, delay_us));
                if let Some(until) = spec.until_us {
                    schedule.push(until, FaultEvent::SetSendDelay(spec.node, 0));
                }
            }
        }

        let mut nodes = Vec::with_capacity(local_ids.len());
        let mut listeners = listeners.into_iter();
        for id in local_ids {
            let (lid, listener) = listeners.next().expect("listener per local node");
            debug_assert_eq!(lid, id);
            let (tx, rx) = mpsc::channel::<Event>();
            spawn_acceptor(Arc::clone(&shared), id, listener, tx.clone());
            let node = Arc::new(Mutex::new(Node::new(
                id,
                cfg.params.clone(),
                registry.clone(),
            )));
            let reactor = {
                let shared = Arc::clone(&shared);
                let node = Arc::clone(&node);
                let self_tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("reactor-{id}"))
                    .spawn(move || reactor_loop(shared, id, node, rx, self_tx))
                    .expect("spawn reactor")
            };
            nodes.push(LocalNode {
                id,
                node,
                tx,
                reactor: Some(reactor),
            });
        }

        let wan_per_node = vec![0; shared.wan_out_per_node.len()];
        Cluster {
            shared,
            cfg,
            nodes,
            schedule: schedule.events().to_vec(),
            next_fault: 0,
            window_start_txns: 0,
            window_start_time: 0,
            window_wan: 0,
            window_lan: 0,
            window_wan_per_node: wan_per_node,
        }
    }

    /// Shared transport state (fault injection, byte counters).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// The observer node for throughput accounting — same choice as the
    /// sim harness.
    pub fn observer(&self) -> NodeId {
        if self.cfg.params.group_sizes[0] > 1 {
            NodeId::new(0, 1)
        } else {
            NodeId::new(0, 0)
        }
    }

    fn local(&self, id: NodeId) -> &LocalNode {
        self.nodes
            .iter()
            .find(|n| n.id == id)
            .expect("node hosted in this process")
    }

    /// Runs `f` against a node's state (briefly blocking its reactor).
    pub fn with_node<R>(&self, id: NodeId, f: impl FnOnce(&Node) -> R) -> R {
        let n = self.local(id).node.lock().expect("node lock");
        f(&n)
    }

    /// Runs `f` against a node's mutable state.
    pub fn with_node_mut<R>(&self, id: NodeId, f: impl FnOnce(&mut Node) -> R) -> R {
        let mut n = self.local(id).node.lock().expect("node lock");
        f(&mut n)
    }

    fn apply_fault(&self, event: FaultEvent) {
        let mut f = self.shared.faults.write().expect("faults lock");
        match event {
            FaultEvent::Crash(n) => {
                f.crashed.insert(n);
            }
            FaultEvent::Recover(n) => {
                f.crashed.remove(&n);
            }
            FaultEvent::CrashGroup(g) => {
                for n in self.shared.topo.group_nodes(g) {
                    f.crashed.insert(n);
                }
            }
            FaultEvent::RecoverGroup(g) => {
                for n in self.shared.topo.group_nodes(g) {
                    f.crashed.remove(&n);
                }
            }
            FaultEvent::PartitionGroups(a, b) => {
                f.group_partitions.insert((a.min(b), a.max(b)));
            }
            FaultEvent::HealGroups(a, b) => {
                f.group_partitions.remove(&(a.min(b), a.max(b)));
            }
            FaultEvent::PartitionNodes(a, b) => {
                let p = if a <= b { (a, b) } else { (b, a) };
                f.node_partitions.insert(p);
            }
            FaultEvent::HealNodes(a, b) => {
                let p = if a <= b { (a, b) } else { (b, a) };
                f.node_partitions.remove(&p);
            }
            FaultEvent::SetLinkFault(src, dst, Some(lf)) => {
                f.link_faults.insert((src, dst), lf);
            }
            FaultEvent::SetLinkFault(src, dst, None) => {
                f.link_faults.remove(&(src, dst));
            }
            FaultEvent::SetWanFault(lf) => {
                f.wan_fault = lf;
            }
            FaultEvent::SetSendDelay(n, d) => {
                if d == 0 {
                    f.send_delay.remove(&n);
                } else {
                    f.send_delay.insert(n, d);
                }
            }
        }
    }

    /// Crashes a node now (also available via the fault schedule).
    pub fn crash(&self, id: NodeId) {
        self.apply_fault(FaultEvent::Crash(id));
    }

    /// Recovers a crashed node (state retained, no `on_start` rerun).
    pub fn recover(&self, id: NodeId) {
        self.apply_fault(FaultEvent::Recover(id));
    }

    /// Crashes a whole group.
    pub fn crash_group(&self, g: u32) {
        self.apply_fault(FaultEvent::CrashGroup(g));
    }

    /// Severs WAN links between two groups.
    pub fn partition(&self, a: u32, b: u32) {
        self.apply_fault(FaultEvent::PartitionGroups(a, b));
    }

    /// Heals a group partition.
    pub fn heal(&self, a: u32, b: u32) {
        self.apply_fault(FaultEvent::HealGroups(a, b));
    }

    /// Wall-clock microseconds since the cluster started.
    pub fn now(&self) -> Time {
        self.shared.now_us()
    }

    fn sleep_until(&self, t: Time) {
        loop {
            let now = self.shared.now_us();
            if now >= t {
                return;
            }
            std::thread::sleep(Duration::from_micros(t - now));
        }
    }

    /// Lets the cluster run until wall-clock instant `t` (µs since
    /// start), applying scripted faults at their instants.
    pub fn run_until(&mut self, t: Time) {
        while self.next_fault < self.schedule.len() && self.schedule[self.next_fault].at <= t {
            let ScheduledFault { at, event } = self.schedule[self.next_fault];
            self.next_fault += 1;
            self.sleep_until(at);
            self.apply_fault(event);
        }
        self.sleep_until(t);
    }

    /// Opens a measurement window at the current instant.
    pub fn open_window(&mut self) {
        self.window_start_txns = self.with_node(self.observer(), |n| n.executed_txns());
        self.window_start_time = self.shared.now_us();
        self.window_wan = self.shared.wan_bytes.load(Ordering::Relaxed);
        self.window_lan = self.shared.lan_bytes.load(Ordering::Relaxed);
        for (i, c) in self.shared.wan_out_per_node.iter().enumerate() {
            self.window_wan_per_node[i] = c.load(Ordering::Relaxed);
        }
    }

    /// Closes the window and produces the same [`Report`] the sim
    /// harness produces (latency fields need the observer's group to be
    /// hosted in this process).
    pub fn close_window(&mut self) -> Report {
        let now = self.shared.now_us();
        let window_us = now - self.window_start_time;
        let obs = self.observer();
        let txns = self.with_node(obs, |n| n.executed_txns()) - self.window_start_txns;
        let throughput = Throughput { txns, window_us };

        let crashed = |id: NodeId| self.shared.is_crashed(id);
        let hosted = |id: NodeId| self.nodes.iter().any(|n| n.id == id);
        let ng = self.cfg.params.ng();
        let mut all_lat: Vec<Time> = Vec::new();
        for g in 0..ng as u32 {
            let rep = self.cfg.params.leader_of(g);
            if crashed(rep) || !hosted(rep) {
                continue;
            }
            let (count, mean) =
                self.with_node(rep, |n| (n.latency().count(), n.latency().mean_us()));
            if count > 0 {
                all_lat.push(mean as Time);
            }
        }
        let mean_latency_ms = if all_lat.is_empty() {
            0.0
        } else {
            all_lat.iter().sum::<u64>() as f64 / all_lat.len() as f64 / 1000.0
        };
        let mut p99 = 0u64;
        let obs_rep = self.cfg.params.leader_of(0);
        if !crashed(obs_rep) && hosted(obs_rep) {
            p99 = self.with_node_mut(obs_rep, |n| n.latency_mut().percentile_us(99.0));
        }

        let wan_bytes = self.shared.wan_bytes.load(Ordering::Relaxed) - self.window_wan;
        let lan_bytes = self.shared.lan_bytes.load(Ordering::Relaxed) - self.window_lan;
        let max_node_wan_bytes = self
            .shared
            .wan_out_per_node
            .iter()
            .enumerate()
            .map(|(i, c)| c.load(Ordering::Relaxed) - self.window_wan_per_node[i])
            .max()
            .unwrap_or(0);

        let per_group_tps: Vec<f64> = self.with_node(obs, |n| {
            n.executed_by_group()
                .iter()
                .map(|&t| t as f64 * 1_000_000.0 / window_us.max(1) as f64)
                .collect()
        });

        Report {
            protocol: self.cfg.params.protocol,
            workload: self.cfg.params.workload,
            throughput,
            per_group_tps,
            mean_latency_ms,
            p99_latency_ms: p99 as f64 / 1000.0,
            wan_bytes,
            max_node_wan_bytes,
            lan_bytes,
            all_nodes_consistent: self.check_consistency(),
            entries_executed: self.with_node(obs, |n| n.executed_entries()),
        }
    }

    /// Convenience: 1 s wall-clock warmup, then measure `secs` seconds.
    pub fn run_secs(&mut self, secs: u64) -> Report {
        self.run_until(SECOND);
        self.open_window();
        let end = self.shared.now_us() + secs * SECOND;
        self.run_until(end);
        self.close_window()
    }

    /// Prefix-consistency across hosted, non-crashed nodes. Locks every
    /// node, so reactors pause briefly; call between windows.
    pub fn check_consistency(&self) -> bool {
        let guards: Vec<_> = self
            .nodes
            .iter()
            .filter(|n| !self.shared.is_crashed(n.id))
            .map(|n| n.node.lock().expect("node lock"))
            .collect();
        for i in 0..guards.len() {
            for j in (i + 1)..guards.len() {
                let (a, b) = (guards[i].exec_log(), guards[j].exec_log());
                let k = a.len().min(b.len());
                if a[..k] != b[..k] {
                    return false;
                }
            }
        }
        true
    }

    /// Node ids hosted in this process, dense order.
    pub fn hosted_nodes(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Unblock acceptors stuck in accept(2) with a throwaway connect
        // to each hosted listener.
        for n in &self.nodes {
            let addr = self.shared.addrs[self.shared.idx(n.id)];
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(50));
        }
        // Reactors poll the flag at REACTOR_POLL_US; join them so node
        // state can't be touched after drop. Writer/reader threads exit
        // on the flag or on the EOF cascade from dropped connections.
        for n in &mut self.nodes {
            let _ = n.tx.send(Event::Msg {
                // Self-addressed wakeup; the reactor sees shutdown first.
                from: n.id,
                msg: Msg::EpochClose { group: 0, epoch: 0 },
            });
            if let Some(h) = n.reactor.take() {
                let _ = h.join();
            }
        }
    }
}

fn reactor_loop(
    shared: Arc<Shared>,
    id: NodeId,
    node: Arc<Mutex<Node>>,
    rx: Receiver<Event>,
    self_tx: Sender<Event>,
) {
    let mut net = NetHandle::new(id, Arc::clone(&shared));
    let mut wheel: TimerWheel<Pending> = TimerWheel::new(shared.now_us());
    let mut ctx: Ctx<Msg> = Ctx::new_driver(shared.now_us(), id);
    let mut fired: Vec<Pending> = Vec::new();

    // on_start (the sim skips it for nodes crashed at t=0; schedules
    // rarely do that, but mirror it anyway).
    if !shared.is_crashed(id) {
        let mut n = node.lock().expect("node lock");
        ctx.set_now(shared.now_us());
        n.on_start(&mut ctx);
    }
    apply_commands(&shared, id, &mut ctx, &mut net, &mut wheel, &self_tx);

    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Fire due timers and delayed sends.
        let now = shared.now_us();
        fired.clear();
        wheel.advance(now, &mut fired);
        if !fired.is_empty() {
            let crashed = shared.is_crashed(id);
            for p in fired.drain(..) {
                match p {
                    Pending::Timer(token) => {
                        // Crashed: the timer is consumed silently, like
                        // the sim dropping Timer events.
                        if crashed {
                            continue;
                        }
                        {
                            let mut n = node.lock().expect("node lock");
                            ctx.set_now(shared.now_us());
                            n.on_timer(&mut ctx, token);
                        }
                        apply_commands(&shared, id, &mut ctx, &mut net, &mut wheel, &self_tx);
                    }
                    Pending::Send(dst, frame) => {
                        // Route-time crash gating happens inside send.
                        if dst == id {
                            deliver_local(&shared, id, &frame, &self_tx);
                        } else {
                            net.send(dst, frame);
                        }
                    }
                }
            }
        }

        // Sleep until the next deadline or an inbound message.
        let now = shared.now_us();
        let wait = wheel
            .next_deadline()
            .map(|d| d.saturating_sub(now))
            .unwrap_or(REACTOR_POLL_US)
            .clamp(100, REACTOR_POLL_US);
        match rx.recv_timeout(Duration::from_micros(wait)) {
            Ok(ev) => {
                let mut batch = vec![ev];
                while batch.len() < DRAIN_BATCH {
                    match rx.try_recv() {
                        Ok(ev) => batch.push(ev),
                        Err(_) => break,
                    }
                }
                if shared.is_crashed(id) {
                    // Crashed receivers drop deliveries on the floor.
                    continue;
                }
                {
                    let mut n = node.lock().expect("node lock");
                    for ev in batch {
                        let Event::Msg { from, msg } = ev;
                        ctx.set_now(shared.now_us());
                        n.on_message(&mut ctx, from, msg);
                    }
                }
                apply_commands(&shared, id, &mut ctx, &mut net, &mut wheel, &self_tx);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn deliver_local(shared: &Shared, id: NodeId, frame: &Bytes, self_tx: &Sender<Event>) {
    if shared.is_crashed(id) {
        return;
    }
    // Decode round-trips the frame; loopback traffic is rare (the
    // protocol broadcasts exclude self) so the cost is negligible and
    // the path stays uniform with remote delivery.
    if let Ok(msg) = crate::frame::decode_msg(&frame.slice(crate::frame::FRAME_HEADER..)) {
        let _ = self_tx.send(Event::Msg { from: id, msg });
    }
}

fn apply_commands(
    shared: &Arc<Shared>,
    id: NodeId,
    ctx: &mut Ctx<Msg>,
    net: &mut NetHandle,
    wheel: &mut TimerWheel<Pending>,
    self_tx: &Sender<Event>,
) {
    for cmd in ctx.take_commands() {
        match cmd {
            Command::Send { dst, msg } => match encode_frame(&msg) {
                Ok(frame) => {
                    if dst == id {
                        deliver_local(shared, id, &frame, self_tx);
                    } else {
                        net.send(dst, frame);
                    }
                }
                Err(_) => debug_assert!(false, "protocol produced unencodable message"),
            },
            Command::SendMany { dsts, msg } => match encode_frame(&msg) {
                Ok(frame) => {
                    for dst in dsts {
                        if dst == id {
                            deliver_local(shared, id, &frame, self_tx);
                        } else {
                            net.send(dst, frame.clone());
                        }
                    }
                }
                Err(_) => debug_assert!(false, "protocol produced unencodable message"),
            },
            Command::SetTimer { delay, token } => {
                wheel.insert(shared.now_us().saturating_add(delay), Pending::Timer(token));
            }
            // Real CPU is spent by actually running the handlers; the
            // virtual cost model would double-count it.
            Command::SpendCpu(_) => {}
            Command::SendAfter { delay, dst, msg } => match encode_frame(&msg) {
                Ok(frame) => {
                    wheel.insert(
                        shared.now_us().saturating_add(delay),
                        Pending::Send(dst, frame),
                    );
                }
                Err(_) => debug_assert!(false, "protocol produced unencodable message"),
            },
        }
    }
}

//! Hierarchical timer wheel for the per-node reactor threads.
//!
//! The simulator orders timers in a global binary heap; a wall-clock
//! reactor cannot, because it only wakes when its channel does. The
//! wheel gives O(1) insert and amortized O(1) advance at a 1.024 ms
//! tick, coarse enough to batch wakeups and fine enough for the
//! protocol's shortest timers (batch ticks, heartbeats — all ≥ a few
//! milliseconds).
//!
//! Four levels of 64 slots cover deadlines up to 64^4 ticks ≈ 4.7 hours;
//! anything later is clamped into the top level and re-cascaded, which
//! only delays (never loses) it. Timers fire late by at most one tick,
//! never early — `advance` pops an item only once its exact microsecond
//! deadline has passed.

const SLOTS: usize = 64;
const LEVELS: usize = 4;
/// Microseconds per tick (1 << 10 keeps the µs→tick conversion a shift).
const TICK_US: u64 = 1 << 10;

struct Item<T> {
    deadline_us: u64,
    value: T,
}

/// A hierarchical timing wheel holding values of type `T`.
pub struct TimerWheel<T> {
    levels: Vec<Vec<Vec<Item<T>>>>,
    /// The tick all levels are aligned to; slot indices derive from it.
    current: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// An empty wheel anchored at `now_us`.
    pub fn new(now_us: u64) -> Self {
        let levels = (0..LEVELS)
            .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
            .collect();
        TimerWheel {
            levels,
            current: now_us / TICK_US,
            len: 0,
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `value` to fire once `deadline_us` has passed.
    pub fn insert(&mut self, deadline_us: u64, value: T) {
        let deadline_tick = deadline_us / TICK_US;
        let item = Item { deadline_us, value };
        let dt = deadline_tick.saturating_sub(self.current);
        let (level, slot) = if dt < SLOTS as u64 {
            // Past-due deadlines go into the cursor's own slot, which
            // `advance` pops before stepping ticks.
            let eff = deadline_tick.max(self.current);
            (0, (eff as usize) & (SLOTS - 1))
        } else if dt < (SLOTS * SLOTS) as u64 {
            (1, ((deadline_tick >> 6) as usize) & (SLOTS - 1))
        } else if dt < (SLOTS * SLOTS * SLOTS) as u64 {
            (2, ((deadline_tick >> 12) as usize) & (SLOTS - 1))
        } else {
            // Clamp far-future deadlines into the top level; cascading
            // re-inserts them with the then-smaller delta.
            let dt = dt.min((SLOTS as u64).pow(LEVELS as u32) - 1);
            (3, (((self.current + dt) >> 18) as usize) & (SLOTS - 1))
        };
        self.levels[level][slot].push(item);
        self.len += 1;
    }

    /// Advances wall time to `now_us`, appending every expired value to
    /// `out` (in no particular order — ties are resolved by the caller's
    /// processing order, which matches the sim engine's same-instant
    /// behavior of draining whatever is due).
    pub fn advance(&mut self, now_us: u64, out: &mut Vec<T>) {
        let target = now_us / TICK_US;
        // The cursor's own slot may hold items inserted with already-past
        // deadlines; pop what's due before stepping.
        self.pop_due(self.current, now_us, out);
        while self.current < target {
            self.current += 1;
            self.cascade();
            if self.current < target {
                // A fully elapsed tick: everything in its L0 slot is due.
                let slot = (self.current as usize) & (SLOTS - 1);
                let items = &mut self.levels[0][slot];
                self.len -= items.len();
                out.extend(items.drain(..).map(|i| i.value));
            } else {
                // The target tick itself may hold items whose microsecond
                // deadline is still ahead; pop only what's actually due.
                self.pop_due(target, now_us, out);
            }
        }
    }

    fn pop_due(&mut self, tick: u64, now_us: u64, out: &mut Vec<T>) {
        let items = &mut self.levels[0][(tick as usize) & (SLOTS - 1)];
        let mut i = 0;
        while i < items.len() {
            if items[i].deadline_us <= now_us {
                let item = items.swap_remove(i);
                self.len -= 1;
                out.push(item.value);
            } else {
                i += 1;
            }
        }
    }

    /// Re-distributes higher-level slots whose window just opened.
    fn cascade(&mut self) {
        for level in 1..LEVELS {
            let mask = (SLOTS as u64).pow(level as u32) - 1;
            if self.current & mask != 0 {
                break;
            }
            let slot = ((self.current >> (6 * level)) as usize) & (SLOTS - 1);
            let items: Vec<Item<T>> = self.levels[level][slot].drain(..).collect();
            for item in items {
                self.len -= 1;
                self.insert(item.deadline_us, item.value);
            }
        }
    }

    /// Earliest pending deadline in µs, if any. Linear in pending timers;
    /// reactors hold only a handful (protocol timers + delayed sends).
    pub fn next_deadline(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut min = u64::MAX;
        for level in &self.levels {
            for slot in level {
                for item in slot {
                    min = min.min(item.deadline_us);
                }
            }
        }
        Some(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_order_never_early() {
        let mut w = TimerWheel::new(0);
        w.insert(5_000, "a");
        w.insert(2_000, "b");
        w.insert(2_000_000, "c");
        let mut out = Vec::new();
        w.advance(1_999, &mut out);
        assert!(out.is_empty());
        w.advance(2_000, &mut out);
        assert_eq!(out, vec!["b"]);
        out.clear();
        w.advance(1_000_000, &mut out);
        assert_eq!(out, vec!["a"]);
        out.clear();
        w.advance(3_000_000, &mut out);
        assert_eq!(out, vec!["c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn cascades_long_deadlines() {
        let mut w = TimerWheel::new(0);
        // Deadlines spanning all four levels plus a clamped one.
        let deadlines = [
            TICK_US * 10,
            TICK_US * 100,
            TICK_US * 5_000,
            TICK_US * 300_000,
            TICK_US * 20_000_000,
        ];
        for (i, &d) in deadlines.iter().enumerate() {
            w.insert(d, i);
        }
        let mut fired = Vec::new();
        let mut t = 0;
        while !w.is_empty() && t < TICK_US * 40_000_000 {
            t += TICK_US * 997; // uneven stride across slot boundaries
            let before = fired.len();
            w.advance(t, &mut fired);
            for &idx in &fired[before..] {
                assert!(t >= deadlines[idx], "timer {idx} fired early");
                assert!(
                    t - deadlines[idx] <= TICK_US * 1_000,
                    "timer {idx} fired far too late"
                );
            }
        }
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn next_deadline_tracks_min() {
        let mut w = TimerWheel::new(1_000_000);
        assert_eq!(w.next_deadline(), None);
        w.insert(1_500_000, ());
        w.insert(1_200_000, ());
        assert_eq!(w.next_deadline(), Some(1_200_000));
        let mut out = Vec::new();
        w.advance(1_300_000, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(w.next_deadline(), Some(1_500_000));
    }

    #[test]
    fn anchored_wheel_accepts_past_deadlines() {
        let mut w = TimerWheel::new(5_000_000);
        w.insert(4_000_000, "late");
        let mut out = Vec::new();
        w.advance(5_001_000, &mut out);
        assert_eq!(out, vec!["late"]);
    }
}

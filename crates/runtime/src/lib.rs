//! Wall-clock TCP runtime for the MassBFT node state machines.
//!
//! The simulator (`massbft-sim-net`) runs the sans-io [`Node`] actors
//! over a virtual-time event heap; this crate runs the *same* actors
//! over real `std::net` TCP connections with real threads and a real
//! clock — the repo's first wall-clock throughput numbers come from
//! here (`BENCH_wallclock.json`, see `crates/bench/src/bin/wallclock.rs`).
//!
//! Architecture (DESIGN.md §5f):
//! - [`frame`]: length-prefixed codec whose body size equals the
//!   simulator's byte-accounting model (`massbft_core::wire`) exactly,
//!   with zero-copy [`bytes::Bytes`] payload paths.
//! - [`wheel`]: hierarchical timer wheel driving protocol timers and
//!   delayed sends per reactor thread.
//! - [`net`]: connection manager — lazy per-peer writer threads with
//!   write coalescing and byte-bounded backpressure, per-node acceptor
//!   plus per-connection reader threads, and netem-style injected
//!   latency/fault state shared across the cluster.
//! - [`cluster`]: thread-per-node reactors and a [`cluster::Cluster`]
//!   facade mirroring `massbft_core::cluster::Cluster`, so experiments
//!   and fault schedules run unchanged on either driver.
//!
//! [`Node`]: massbft_core::protocol::Node

pub mod cluster;
pub mod frame;
pub mod net;
pub mod wheel;

pub use cluster::{Cluster, HostSpec};
pub use frame::{decode_msg, encode_frame, FrameBuffer, FrameError, MAX_FRAME};
pub use wheel::TimerWheel;

//! TCP connection manager: shared cluster state, per-peer outbound
//! queues with write coalescing and backpressure, and inbound reader
//! threads feeding decoded messages to the reactors.
//!
//! Latency injection happens at the *connection layer*, netem-style:
//! every frame gets a due instant `now + topology latency (+ adversarial
//! send delay + fault jitter)` when enqueued, and the peer's writer
//! thread holds it back until then. Loopback TCP is effectively
//! instantaneous, so the injected delay dominates exactly like a WAN
//! round trip would. Partitions, crashes, and link faults are gated at
//! send time from a cluster-wide [`FaultState`], mirroring the
//! simulator's routing checks (`sim.rs::route`).

use crate::frame::FRAME_HEADER;
use bytes::Bytes;
use massbft_core::protocol::Msg;
use massbft_sim_net::{LinkFault, NodeId, Time, Topology};
use massbft_telemetry::registry::{self, Counter, Gauge};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Per-peer outbound queue limit; senders block (backpressure) above it.
const MAX_QUEUE_BYTES: usize = 32 << 20;
/// Coalescing buffer: consecutive due frames are packed into one write
/// up to this size.
const COALESCE_BYTES: usize = 256 << 10;
/// Frames at or above this size are written directly from their own
/// buffer instead of being copied into the coalescing buffer.
const LARGE_FRAME: usize = 64 << 10;
/// Reader/acceptor poll granularity for shutdown checks.
const POLL: Duration = Duration::from_millis(200);
/// Stack size for I/O threads; a 4×8 cluster runs a few hundred of
/// them, so the default 8 MiB reservation would be wasteful.
const IO_STACK: usize = 256 << 10;

/// What a reader thread delivers to a reactor.
pub enum Event {
    /// A decoded message from a peer (or a local loopback send).
    Msg {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: Msg,
    },
}

/// Transport metrics, registered in the global telemetry registry.
pub struct NetCounters {
    /// Raw TCP bytes received (including frame headers and hellos).
    pub tcp_bytes_in: Counter,
    /// Raw TCP bytes written.
    pub tcp_bytes_out: Counter,
    /// Complete frames decoded from peers.
    pub frames_in: Counter,
    /// Frames enqueued for transmission.
    pub frames_out: Counter,
    /// Writes that packed 2+ frames into one syscall.
    pub coalesced_writes: Counter,
    /// `read(2)` calls issued by reader threads.
    pub syscalls_read: Counter,
    /// `write(2)` calls issued by writer threads.
    pub syscalls_write: Counter,
}

impl NetCounters {
    fn new() -> Self {
        NetCounters {
            tcp_bytes_in: registry::counter("net.tcp_bytes_in"),
            tcp_bytes_out: registry::counter("net.tcp_bytes_out"),
            frames_in: registry::counter("net.frames_in"),
            frames_out: registry::counter("net.frames_out"),
            coalesced_writes: registry::counter("net.coalesced_writes"),
            syscalls_read: registry::counter("net.syscalls_read"),
            syscalls_write: registry::counter("net.syscalls_write"),
        }
    }
}

/// Mutable fault state shared by every sender, mirroring the
/// simulator's knobs ([`massbft_core::adversary::FaultEvent`]).
#[derive(Default)]
pub struct FaultState {
    /// Crashed nodes: they neither send nor receive (their reactors
    /// drop inbound events and timers), but state is retained.
    pub crashed: HashSet<NodeId>,
    /// Severed group pairs, normalized `(min, max)`.
    pub group_partitions: HashSet<(u32, u32)>,
    /// Severed node pairs, normalized.
    pub node_partitions: HashSet<(NodeId, NodeId)>,
    /// Per-directed-link fault overrides.
    pub link_faults: HashMap<(NodeId, NodeId), LinkFault>,
    /// WAN-wide default fault model.
    pub wan_fault: Option<LinkFault>,
    /// Adversarial fixed delay added to everything a node sends.
    pub send_delay: HashMap<NodeId, Time>,
}

fn ordered(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn ordered_nodes(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl FaultState {
    fn blocked(&self, src: NodeId, dst: NodeId) -> bool {
        (!self.group_partitions.is_empty()
            && self
                .group_partitions
                .contains(&ordered(src.group, dst.group)))
            || (!self.node_partitions.is_empty()
                && self.node_partitions.contains(&ordered_nodes(src, dst)))
    }

    fn link_fault(&self, src: NodeId, dst: NodeId, is_wan: bool) -> Option<LinkFault> {
        let wan_default = if is_wan { self.wan_fault } else { None };
        if self.link_faults.is_empty() {
            wan_default
        } else {
            self.link_faults.get(&(src, dst)).copied().or(wan_default)
        }
    }
}

/// Cluster-wide immutable wiring plus the mutable fault state. One
/// instance per [`crate::Cluster`], shared by every thread it spawns.
pub struct Shared {
    /// The latency/group layout (bandwidth fields unused: loopback TCP
    /// is the real transport).
    pub topo: Topology,
    /// Listener address of every node, dense `(group, node)` order.
    pub addrs: Vec<SocketAddr>,
    /// Dense-index base of each group (prefix sums of group sizes).
    offsets: Vec<usize>,
    /// Scripted + runtime fault state.
    pub faults: RwLock<FaultState>,
    /// Set once at teardown; all threads poll it and exit.
    pub shutdown: AtomicBool,
    start: Instant,
    /// Transport metrics (global telemetry registry).
    pub counters: NetCounters,
    /// WAN bytes sent per node (modeled body sizes), for the
    /// leader-bottleneck probe in reports.
    pub wan_out_per_node: Vec<AtomicU64>,
    /// Total WAN bytes (modeled body sizes, comparable to the sim's
    /// `wan_bytes`).
    pub wan_bytes: AtomicU64,
    /// Total LAN bytes (modeled body sizes).
    pub lan_bytes: AtomicU64,
}

impl Shared {
    /// Builds the shared state. `addrs` must be in dense node order.
    pub fn new(topo: Topology, addrs: Vec<SocketAddr>) -> Arc<Self> {
        let mut offsets = Vec::with_capacity(topo.group_sizes.len());
        let mut acc = 0usize;
        for &s in &topo.group_sizes {
            offsets.push(acc);
            acc += s;
        }
        assert_eq!(addrs.len(), acc, "one address per node");
        Arc::new(Shared {
            addrs,
            offsets,
            faults: RwLock::new(FaultState::default()),
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
            counters: NetCounters::new(),
            wan_out_per_node: (0..acc).map(|_| AtomicU64::new(0)).collect(),
            wan_bytes: AtomicU64::new(0),
            lan_bytes: AtomicU64::new(0),
            topo,
        })
    }

    /// Microseconds of wall clock since the cluster was built. This is
    /// the `Ctx::now` the actors see, so telemetry spans and latency
    /// samples are real durations.
    pub fn now_us(&self) -> Time {
        self.start.elapsed().as_micros() as Time
    }

    /// Dense index of a node.
    pub fn idx(&self, id: NodeId) -> usize {
        self.offsets[id.group as usize] + id.node as usize
    }

    /// Whether `id` is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.faults
            .read()
            .expect("faults lock")
            .crashed
            .contains(&id)
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

struct QueueInner {
    q: VecDeque<(Time, Bytes)>,
    bytes: usize,
    /// Set when the writer gave up (connect failure or peer gone);
    /// senders then drop instead of blocking.
    closed: bool,
}

/// One outbound connection: a due-time-ordered frame queue drained by a
/// dedicated writer thread.
pub struct PeerConn {
    inner: Mutex<QueueInner>,
    cond: Condvar,
    depth: Gauge,
}

impl PeerConn {
    fn enqueue(&self, due: Time, frame: Bytes) {
        let mut inner = self.inner.lock().expect("queue lock");
        // Backpressure: block the sending reactor while the peer's
        // queue is over budget (a slow or delayed peer throttles its
        // producers instead of ballooning memory).
        while inner.bytes > MAX_QUEUE_BYTES && !inner.closed {
            inner = self.cond.wait(inner).expect("queue lock");
        }
        if inner.closed {
            return;
        }
        inner.bytes += frame.len();
        // Frames to one peer carry identical injected latency, so FIFO
        // push keeps the queue due-ordered like the sim's link FIFO.
        inner.q.push_back((due, frame));
        self.depth.set(inner.q.len() as u64);
        self.cond.notify_all();
    }
}

/// Per-reactor handle for outbound traffic: owns the lazy map of peer
/// connections and the sender-side fault RNG.
pub struct NetHandle {
    src: NodeId,
    shared: Arc<Shared>,
    peers: HashMap<NodeId, Arc<PeerConn>>,
    rng: u64,
}

impl NetHandle {
    /// A handle for node `src`. The RNG seed differs per node so fault
    /// draws are independent streams.
    pub fn new(src: NodeId, shared: Arc<Shared>) -> Self {
        let seed = 0x9E37_79B9_7F4A_7C15u64
            ^ ((src.group as u64) << 32 | src.node as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        NetHandle {
            src,
            shared,
            peers: HashMap::new(),
            rng: seed | 1,
        }
    }

    fn next_rng(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn rng_unit(&mut self) -> f64 {
        (self.next_rng() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Sends an encoded frame to `dst`, applying crash/partition gating,
    /// link-fault drop/dup/jitter, and injected latency. `dst` must not
    /// be `src` (reactors loop local sends back through their own
    /// channel, like the sim's immediate loopback delivery).
    pub fn send(&mut self, dst: NodeId, frame: Bytes) {
        debug_assert_ne!(dst, self.src, "loopback handled by the reactor");
        let shared = Arc::clone(&self.shared);
        if shared.shutting_down() {
            return;
        }
        let is_wan = shared.topo.is_wan(self.src, dst);
        let fault = {
            let f = shared.faults.read().expect("faults lock");
            if f.crashed.contains(&self.src) || f.blocked(self.src, dst) {
                return;
            }
            let lf = f.link_fault(self.src, dst, is_wan);
            let delay = f.send_delay.get(&self.src).copied().unwrap_or(0);
            (lf, delay)
        };
        let (lf, delay) = fault;
        let mut duplicate = false;
        let mut jitter = 0;
        if let Some(lf) = lf {
            if lf.drop_prob > 0.0 && self.rng_unit() < lf.drop_prob {
                return;
            }
            duplicate = lf.dup_prob > 0.0 && self.rng_unit() < lf.dup_prob;
            if lf.extra_jitter_us > 0 {
                jitter = self.next_rng() % (lf.extra_jitter_us + 1);
            }
        }
        let now = shared.now_us();
        let due = now + shared.topo.latency(self.src, dst) + jitter + delay;
        // Byte accounting uses the modeled body size so wall-clock
        // reports stay comparable with the simulator's `wan_bytes`.
        let body = (frame.len() - FRAME_HEADER) as u64;
        if is_wan {
            shared.wan_bytes.fetch_add(body, Ordering::Relaxed);
            shared.wan_out_per_node[shared.idx(self.src)].fetch_add(body, Ordering::Relaxed);
        } else {
            shared.lan_bytes.fetch_add(body, Ordering::Relaxed);
        }
        shared.counters.frames_out.inc();
        let conn = self.peer(dst);
        if duplicate {
            shared.counters.frames_out.inc();
            conn.enqueue(due, frame.clone());
        }
        conn.enqueue(due, frame);
    }

    fn peer(&mut self, dst: NodeId) -> Arc<PeerConn> {
        if let Some(c) = self.peers.get(&dst) {
            return Arc::clone(c);
        }
        let src = self.src;
        let depth = registry::gauge(&format!(
            "net.queue.g{}n{}-g{}n{}",
            src.group, src.node, dst.group, dst.node
        ));
        let conn = Arc::new(PeerConn {
            inner: Mutex::new(QueueInner {
                q: VecDeque::new(),
                bytes: 0,
                closed: false,
            }),
            cond: Condvar::new(),
            depth,
        });
        let shared = Arc::clone(&self.shared);
        let writer_conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("w-{src}-{dst}"))
            .stack_size(IO_STACK)
            .spawn(move || writer_loop(shared, src, dst, writer_conn))
            .expect("spawn writer");
        self.peers.insert(dst, Arc::clone(&conn));
        conn
    }
}

fn connect_retry(shared: &Shared, addr: SocketAddr) -> Option<TcpStream> {
    // Peers bind their listeners before reactors start in-process, but
    // multi-process clusters start children at slightly different
    // times; retry for ~5 s.
    for _ in 0..50 {
        if shared.shutting_down() {
            return None;
        }
        match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            Ok(s) => return Some(s),
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    None
}

fn write_counted(stream: &mut TcpStream, mut buf: &[u8], c: &NetCounters) -> std::io::Result<()> {
    while !buf.is_empty() {
        let n = stream.write(buf)?;
        if n == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        c.syscalls_write.inc();
        c.tcp_bytes_out.add(n as u64);
        buf = &buf[n..];
    }
    Ok(())
}

fn close_queue(conn: &PeerConn) {
    let mut inner = conn.inner.lock().expect("queue lock");
    inner.closed = true;
    inner.q.clear();
    inner.bytes = 0;
    conn.depth.set(0);
    conn.cond.notify_all();
}

fn writer_loop(shared: Arc<Shared>, src: NodeId, dst: NodeId, conn: Arc<PeerConn>) {
    let Some(mut stream) = connect_retry(&shared, shared.addrs[shared.idx(dst)]) else {
        close_queue(&conn);
        return;
    };
    let _ = stream.set_nodelay(true);
    // Hello: identify the sending node to the reader side.
    let mut hello = [0u8; 8];
    hello[..4].copy_from_slice(&src.group.to_le_bytes());
    hello[4..].copy_from_slice(&src.node.to_le_bytes());
    if write_counted(&mut stream, &hello, &shared.counters).is_err() {
        close_queue(&conn);
        return;
    }
    let mut coalesce: Vec<u8> = Vec::with_capacity(COALESCE_BYTES);
    let mut due_now: Vec<Bytes> = Vec::new();
    loop {
        // Wait for a due frame (or shutdown).
        {
            let mut inner = conn.inner.lock().expect("queue lock");
            loop {
                if shared.shutting_down() {
                    drop(inner);
                    close_queue(&conn);
                    return;
                }
                match inner.q.front() {
                    Some(&(due, _)) => {
                        let now = shared.now_us();
                        if due <= now {
                            break;
                        }
                        let wait = Duration::from_micros((due - now).min(50_000));
                        let (g, _) = conn.cond.wait_timeout(inner, wait).expect("queue lock");
                        inner = g;
                    }
                    None => {
                        let (g, _) = conn
                            .cond
                            .wait_timeout(inner, Duration::from_millis(100))
                            .expect("queue lock");
                        inner = g;
                    }
                }
            }
            let now = shared.now_us();
            while let Some(&(due, _)) = inner.q.front() {
                if due > now {
                    break;
                }
                let (_, frame) = inner.q.pop_front().expect("front checked");
                inner.bytes -= frame.len();
                due_now.push(frame);
            }
            conn.depth.set(inner.q.len() as u64);
            // Wake senders blocked on backpressure.
            conn.cond.notify_all();
        }
        // Write outside the lock: coalesce small frames, stream large
        // ones straight from their refcounted buffers.
        let mut batched = 0usize;
        for frame in due_now.drain(..) {
            if frame.len() >= LARGE_FRAME {
                if !coalesce.is_empty() {
                    if batched >= 2 {
                        shared.counters.coalesced_writes.inc();
                    }
                    if write_counted(&mut stream, &coalesce, &shared.counters).is_err() {
                        close_queue(&conn);
                        return;
                    }
                    coalesce.clear();
                    batched = 0;
                }
                if write_counted(&mut stream, &frame, &shared.counters).is_err() {
                    close_queue(&conn);
                    return;
                }
            } else {
                if coalesce.len() + frame.len() > COALESCE_BYTES && !coalesce.is_empty() {
                    if batched >= 2 {
                        shared.counters.coalesced_writes.inc();
                    }
                    if write_counted(&mut stream, &coalesce, &shared.counters).is_err() {
                        close_queue(&conn);
                        return;
                    }
                    coalesce.clear();
                    batched = 0;
                }
                coalesce.extend_from_slice(&frame);
                batched += 1;
            }
        }
        if !coalesce.is_empty() {
            if batched >= 2 {
                shared.counters.coalesced_writes.inc();
            }
            if write_counted(&mut stream, &coalesce, &shared.counters).is_err() {
                close_queue(&conn);
                return;
            }
            coalesce.clear();
        }
    }
}

/// Spawns the acceptor thread for one node's listener. Each accepted
/// connection gets its own reader thread feeding `tx`.
pub fn spawn_acceptor(
    shared: Arc<Shared>,
    id: NodeId,
    listener: TcpListener,
    tx: Sender<Event>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("acc-{id}"))
        .stack_size(IO_STACK)
        .spawn(move || {
            for stream in listener.incoming() {
                if shared.shutting_down() {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                let _ = std::thread::Builder::new()
                    .name(format!("r-{id}"))
                    .stack_size(IO_STACK)
                    .spawn(move || reader_loop(shared, stream, tx));
            }
        })
        .expect("spawn acceptor")
}

fn reader_loop(shared: Arc<Shared>, mut stream: TcpStream, tx: Sender<Event>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    // Hello: who is talking.
    let mut hello = [0u8; 8];
    if stream.read_exact(&mut hello).is_err() {
        return;
    }
    shared.counters.syscalls_read.inc();
    shared.counters.tcp_bytes_in.add(8);
    let from = NodeId::new(
        u32::from_le_bytes(hello[..4].try_into().expect("len")),
        u32::from_le_bytes(hello[4..].try_into().expect("len")),
    );
    let mut fb = crate::frame::FrameBuffer::new();
    loop {
        if shared.shutting_down() {
            return;
        }
        match fb.fill_from(&mut stream, COALESCE_BYTES) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                shared.counters.syscalls_read.inc();
                shared.counters.tcp_bytes_in.add(n as u64);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return,
        }
        loop {
            match fb.next_msg() {
                Ok(Some(msg)) => {
                    shared.counters.frames_in.inc();
                    if tx.send(Event::Msg { from, msg }).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                // A mis-framed stream is unrecoverable: drop the
                // connection (the sim's equivalent is a dropped
                // message; a Byzantine-garbage peer loses its link).
                Err(_) => return,
            }
        }
    }
}

//! Length-prefixed frame codec for the protocol's [`Msg`] enum.
//!
//! A frame on the wire is `[u32 LE body length][body]`. The body starts
//! with a one-byte variant tag, followed by the variant's fields in
//! little-endian order, followed by zero padding up to **exactly** the
//! size the simulator's byte-accounting model assigns the message
//! (`massbft_core::wire::msg_wire_size`). That identity is what makes
//! wall-clock byte counts comparable with simulated `wan_bytes`, and a
//! unit test here asserts it per variant.
//!
//! Layout rules:
//! - natural fields first, one zero-pad run at the end of the body (the
//!   model's per-part overheads are upper bounds on the natural field
//!   encoding, so the pad length is always non-negative);
//! - variable payloads (`Bytes`) are length-prefixed inline and, on
//!   decode, returned as zero-copy [`Bytes::slice`] windows into the
//!   frame buffer — chunk data travels from the socket to the
//!   `ChunkAssembler` without another copy;
//! - feed events pack their kind into the top bit of the first word so
//!   one event occupies exactly the modeled 24 bytes.
//!
//! Robustness: `decode_msg` never panics on malformed input — every
//! read is bounds-checked and length-prefixed counts are validated
//! against the remaining frame bytes before allocating.

use bytes::Bytes;
use massbft_consensus::{pbft::PbftMsg, raft::LogEntry, RaftMsg};
use massbft_core::protocol::{FeedEvent, GlobalCmd, Msg};
use massbft_core::replication::ChunkMsg;
use massbft_core::wire;
use massbft_core::EntryId;
use massbft_crypto::keys::NodeId;
use massbft_crypto::merkle::ProofStep;
use massbft_crypto::{Digest, MerkleProof, QuorumCert, Signature};

/// Upper bound on a frame body; larger length prefixes are rejected
/// before any allocation (a garbage or hostile peer cannot make us
/// reserve gigabytes).
pub const MAX_FRAME: usize = 64 << 20;

/// Frame header size: the u32 body-length prefix.
pub const FRAME_HEADER: usize = 4;

/// Why a frame could not be encoded or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`] (or is zero).
    BadLength(usize),
    /// The body ended before a field could be read.
    Truncated,
    /// An unknown variant or kind tag.
    BadTag(u8),
    /// A count or length field is inconsistent with the body size.
    BadCount,
    /// The message cannot be represented in the wire format (e.g. a
    /// chunk certificate with no signatures, or a feed stamper id using
    /// the reserved top bit).
    Unencodable(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(n) => write!(f, "bad frame length {n}"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadTag(t) => write!(f, "unknown tag {t}"),
            FrameError::BadCount => write!(f, "count exceeds frame"),
            FrameError::Unencodable(why) => write!(f, "unencodable: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

// Variant tags.
const T_PREPREPARE: u8 = 0;
const T_PREPARE: u8 = 1;
const T_COMMIT: u8 = 2;
const T_VIEWCHANGE: u8 = 3;
const T_NEWVIEW: u8 = 4;
const T_HEARTBEAT: u8 = 5;
const T_CHUNK: u8 = 6;
const T_ENTRY: u8 = 7;
const T_RAFT: u8 = 8;
const T_FEED: u8 = 9;
const T_ENTRY_REQUEST: u8 = 10;
const T_ACCEPT_NOTICE: u8 = 11;
const T_EPOCH_CLOSE: u8 = 12;

// Raft sub-tags.
const R_REQUEST_VOTE: u8 = 0;
const R_VOTE: u8 = 1;
const R_APPEND: u8 = 2;
const R_APPEND_RESP: u8 = 3;
const R_TIMEOUT_NOW: u8 = 4;

// ---------------------------------------------------------------- encode

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(&d.0);
    }
    fn node_id(&mut self, id: NodeId) {
        self.u32(id.group);
        self.u32(id.node);
    }
    fn entry_id(&mut self, id: EntryId) {
        self.u32(id.gid);
        self.u64(id.seq);
    }
    fn sig(&mut self, s: &Signature) {
        self.node_id(s.signer);
        self.buf.extend_from_slice(&s.tag);
    }
    fn cert(&mut self, c: &QuorumCert) {
        self.digest(&c.digest);
        self.u32(c.group);
        self.u32(c.signatures.len() as u32);
        for s in &c.signatures {
            self.sig(s);
        }
    }
    fn bytes(&mut self, b: &Bytes) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
    fn global_cmd(&mut self, cmd: &GlobalCmd) {
        match &cmd.entry {
            Some((id, d)) => {
                self.u8(1);
                self.entry_id(*id);
                self.digest(d);
            }
            None => self.u8(0),
        }
        self.u32(cmd.stamps.len() as u32);
        for (id, ts) in &cmd.stamps {
            self.entry_id(*id);
            self.u64(*ts);
        }
    }
}

/// Encodes `msg` as a complete frame (`[len][body]`), body padded to
/// exactly `wire::msg_wire_size(msg)` bytes. The returned [`Bytes`] is
/// ready to hand to per-peer send queues; broadcasting clones refcounts,
/// not buffers.
pub fn encode_frame(msg: &Msg) -> Result<Bytes, FrameError> {
    let body_len = wire::msg_wire_size(msg);
    if body_len > MAX_FRAME {
        return Err(FrameError::BadLength(body_len));
    }
    let mut e = Enc {
        buf: Vec::with_capacity(FRAME_HEADER + body_len),
    };
    e.u32(body_len as u32);
    match msg {
        Msg::Pbft(m) => match m {
            PbftMsg::PrePrepare {
                view,
                seq,
                payload,
                digest,
            } => {
                e.u8(T_PREPREPARE);
                e.u64(*view);
                e.u64(*seq);
                e.digest(digest);
                e.bytes(payload);
            }
            PbftMsg::Prepare {
                view,
                seq,
                digest,
                sig,
            } => {
                e.u8(T_PREPARE);
                e.u64(*view);
                e.u64(*seq);
                e.digest(digest);
                e.sig(sig);
            }
            PbftMsg::Commit {
                view,
                seq,
                digest,
                sig,
            } => {
                e.u8(T_COMMIT);
                e.u64(*view);
                e.u64(*seq);
                e.digest(digest);
                e.sig(sig);
            }
            PbftMsg::ViewChange {
                new_view,
                last_exec,
                prepared,
                sig,
            } => {
                e.u8(T_VIEWCHANGE);
                e.u64(*new_view);
                e.u64(*last_exec);
                e.sig(sig);
                e.u32(prepared.len() as u32);
                for (seq, digest, payload) in prepared {
                    e.u64(*seq);
                    e.digest(digest);
                    e.bytes(payload);
                }
            }
            PbftMsg::NewView { view, reproposals } => {
                e.u8(T_NEWVIEW);
                e.u64(*view);
                e.u32(reproposals.len() as u32);
                for (seq, payload) in reproposals {
                    e.u64(*seq);
                    e.bytes(payload);
                }
            }
            PbftMsg::Heartbeat { view } => {
                e.u8(T_HEARTBEAT);
                e.u64(*view);
            }
        },
        Msg::Chunk { chunk, cert } => {
            // The chunk envelope's natural fields run one byte past the
            // modeled 64-byte overhead; the certificate's 32 modeled pad
            // bytes per signature absorb it, so a chunk must carry at
            // least one signature (protocol certificates always do).
            if cert.signatures.is_empty() {
                return Err(FrameError::Unencodable("chunk cert without signatures"));
            }
            e.u8(T_CHUNK);
            e.entry_id(chunk.entry);
            e.u32(chunk.chunk_id);
            e.digest(&chunk.root);
            e.u32(chunk.proof.leaf_index as u32);
            e.u32(chunk.proof.leaf_count as u32);
            e.u16(chunk.proof.path.len() as u16);
            for step in &chunk.proof.path {
                e.digest(&step.sibling);
                e.u8(step.sibling_on_left as u8);
            }
            e.cert(cert);
            e.bytes(&chunk.data);
        }
        Msg::Entry { id, bytes, cert } => {
            e.u8(T_ENTRY);
            e.entry_id(*id);
            e.cert(cert);
            e.bytes(bytes);
        }
        Msg::Raft {
            instance,
            rmsg,
            cert_bytes,
        } => {
            e.u8(T_RAFT);
            e.u32(*instance);
            e.u32(*cert_bytes as u32);
            match rmsg {
                RaftMsg::RequestVote {
                    term,
                    last_log_index,
                    last_log_term,
                } => {
                    e.u8(R_REQUEST_VOTE);
                    e.u64(*term);
                    e.u64(*last_log_index);
                    e.u64(*last_log_term);
                }
                RaftMsg::Vote { term, granted } => {
                    e.u8(R_VOTE);
                    e.u64(*term);
                    e.u8(*granted as u8);
                }
                RaftMsg::AppendEntries {
                    term,
                    prev_index,
                    prev_term,
                    entries,
                    leader_commit,
                } => {
                    e.u8(R_APPEND);
                    e.u64(*term);
                    e.u64(*prev_index);
                    e.u64(*prev_term);
                    e.u64(*leader_commit);
                    e.u32(entries.len() as u32);
                    for le in entries {
                        e.u64(le.term);
                        e.global_cmd(&le.data);
                    }
                }
                RaftMsg::AppendResp {
                    term,
                    success,
                    match_index,
                } => {
                    e.u8(R_APPEND_RESP);
                    e.u64(*term);
                    e.u8(*success as u8);
                    e.u64(*match_index);
                }
                RaftMsg::TimeoutNow => e.u8(R_TIMEOUT_NOW),
            }
        }
        Msg::Feed { events } => {
            e.u8(T_FEED);
            e.u32(events.len() as u32);
            for ev in events {
                match ev {
                    FeedEvent::Committed(id) => {
                        e.u32(1 << 31);
                        e.entry_id(*id);
                        e.u64(0);
                    }
                    FeedEvent::Stamp {
                        stamper,
                        target,
                        ts,
                    } => {
                        if *stamper & (1 << 31) != 0 {
                            return Err(FrameError::Unencodable("stamper id uses reserved bit"));
                        }
                        e.u32(*stamper);
                        e.entry_id(*target);
                        e.u64(*ts);
                    }
                }
            }
        }
        Msg::EntryRequest { id } => {
            e.u8(T_ENTRY_REQUEST);
            e.entry_id(*id);
        }
        Msg::AcceptNotice {
            from_group,
            entries,
        } => {
            e.u8(T_ACCEPT_NOTICE);
            e.u32(*from_group);
            e.u32(entries.len() as u32);
            for id in entries {
                e.entry_id(*id);
            }
        }
        Msg::EpochClose { group, epoch } => {
            e.u8(T_EPOCH_CLOSE);
            e.u32(*group);
            e.u64(*epoch);
        }
    }
    let natural = e.buf.len() - FRAME_HEADER;
    debug_assert!(
        natural <= body_len,
        "natural encoding {natural} exceeds modeled size {body_len}"
    );
    if natural > body_len {
        return Err(FrameError::Unencodable("model smaller than encoding"));
    }
    e.buf.resize(FRAME_HEADER + body_len, 0);
    Ok(Bytes::from(e.buf))
}

// ---------------------------------------------------------------- decode

struct Dec<'a> {
    frame: &'a Bytes,
    pos: usize,
}

impl<'a> Dec<'a> {
    fn remaining(&self) -> usize {
        self.frame.len() - self.pos
    }
    fn u8(&mut self) -> Result<u8, FrameError> {
        if self.remaining() < 1 {
            return Err(FrameError::Truncated);
        }
        let v = self.frame[self.pos];
        self.pos += 1;
        Ok(v)
    }
    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("len checked"),
        ))
    }
    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("len checked"),
        ))
    }
    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("len checked"),
        ))
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated);
        }
        let s = &self.frame.as_slice()[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn digest(&mut self) -> Result<Digest, FrameError> {
        Ok(Digest(self.take(32)?.try_into().expect("len checked")))
    }
    fn node_id(&mut self) -> Result<NodeId, FrameError> {
        let group = self.u32()?;
        let node = self.u32()?;
        Ok(NodeId { group, node })
    }
    fn entry_id(&mut self) -> Result<EntryId, FrameError> {
        let gid = self.u32()?;
        let seq = self.u64()?;
        Ok(EntryId::new(gid, seq))
    }
    fn sig(&mut self) -> Result<Signature, FrameError> {
        let signer = self.node_id()?;
        let tag: [u8; 32] = self.take(32)?.try_into().expect("len checked");
        Ok(Signature { signer, tag })
    }
    fn cert(&mut self) -> Result<QuorumCert, FrameError> {
        let digest = self.digest()?;
        let group = self.u32()?;
        let count = self.u32()? as usize;
        // Each signature needs 40 natural bytes; reject counts that
        // cannot fit before allocating.
        if count > self.remaining() / 40 {
            return Err(FrameError::BadCount);
        }
        let mut signatures = Vec::with_capacity(count);
        for _ in 0..count {
            signatures.push(self.sig()?);
        }
        Ok(QuorumCert {
            digest,
            group,
            signatures,
        })
    }
    /// A length-prefixed payload as a zero-copy window into the frame.
    fn bytes(&mut self) -> Result<Bytes, FrameError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(FrameError::Truncated);
        }
        let b = self.frame.slice(self.pos..self.pos + len);
        self.pos += len;
        Ok(b)
    }
    fn global_cmd(&mut self) -> Result<GlobalCmd, FrameError> {
        let entry = match self.u8()? {
            0 => None,
            1 => {
                let id = self.entry_id()?;
                let d = self.digest()?;
                Some((id, d))
            }
            t => return Err(FrameError::BadTag(t)),
        };
        let count = self.u32()? as usize;
        if count > self.remaining() / 20 {
            return Err(FrameError::BadCount);
        }
        let mut stamps = Vec::with_capacity(count);
        for _ in 0..count {
            let id = self.entry_id()?;
            let ts = self.u64()?;
            stamps.push((id, ts));
        }
        Ok(GlobalCmd { entry, stamps })
    }
}

/// Decodes one frame body (everything after the length prefix). Payload
/// fields are zero-copy slices of `body`. Trailing padding is ignored.
pub fn decode_msg(body: &Bytes) -> Result<Msg, FrameError> {
    let mut d = Dec {
        frame: body,
        pos: 0,
    };
    let tag = d.u8()?;
    let msg = match tag {
        T_PREPREPARE => {
            let view = d.u64()?;
            let seq = d.u64()?;
            let digest = d.digest()?;
            let payload = d.bytes()?;
            Msg::Pbft(PbftMsg::PrePrepare {
                view,
                seq,
                payload,
                digest,
            })
        }
        T_PREPARE | T_COMMIT => {
            let view = d.u64()?;
            let seq = d.u64()?;
            let digest = d.digest()?;
            let sig = d.sig()?;
            Msg::Pbft(if tag == T_PREPARE {
                PbftMsg::Prepare {
                    view,
                    seq,
                    digest,
                    sig,
                }
            } else {
                PbftMsg::Commit {
                    view,
                    seq,
                    digest,
                    sig,
                }
            })
        }
        T_VIEWCHANGE => {
            let new_view = d.u64()?;
            let last_exec = d.u64()?;
            let sig = d.sig()?;
            let count = d.u32()? as usize;
            if count > d.remaining() / 44 {
                return Err(FrameError::BadCount);
            }
            let mut prepared = Vec::with_capacity(count);
            for _ in 0..count {
                let seq = d.u64()?;
                let digest = d.digest()?;
                let payload = d.bytes()?;
                prepared.push((seq, digest, payload));
            }
            Msg::Pbft(PbftMsg::ViewChange {
                new_view,
                last_exec,
                prepared,
                sig,
            })
        }
        T_NEWVIEW => {
            let view = d.u64()?;
            let count = d.u32()? as usize;
            if count > d.remaining() / 12 {
                return Err(FrameError::BadCount);
            }
            let mut reproposals = Vec::with_capacity(count);
            for _ in 0..count {
                let seq = d.u64()?;
                let payload = d.bytes()?;
                reproposals.push((seq, payload));
            }
            Msg::Pbft(PbftMsg::NewView { view, reproposals })
        }
        T_HEARTBEAT => Msg::Pbft(PbftMsg::Heartbeat { view: d.u64()? }),
        T_CHUNK => {
            let entry = d.entry_id()?;
            let chunk_id = d.u32()?;
            let root = d.digest()?;
            let leaf_index = d.u32()? as usize;
            let leaf_count = d.u32()? as usize;
            let steps = d.u16()? as usize;
            if steps > d.remaining() / 33 {
                return Err(FrameError::BadCount);
            }
            let mut path = Vec::with_capacity(steps);
            for _ in 0..steps {
                let sibling = d.digest()?;
                let sibling_on_left = d.u8()? != 0;
                path.push(ProofStep {
                    sibling,
                    sibling_on_left,
                });
            }
            let cert = d.cert()?;
            let data = d.bytes()?;
            Msg::Chunk {
                chunk: ChunkMsg {
                    entry,
                    chunk_id,
                    data,
                    root,
                    proof: MerkleProof {
                        leaf_index,
                        leaf_count,
                        path,
                    },
                },
                cert,
            }
        }
        T_ENTRY => {
            let id = d.entry_id()?;
            let cert = d.cert()?;
            let bytes = d.bytes()?;
            Msg::Entry { id, bytes, cert }
        }
        T_RAFT => {
            let instance = d.u32()?;
            let cert_bytes = d.u32()? as usize;
            let rmsg = match d.u8()? {
                R_REQUEST_VOTE => RaftMsg::RequestVote {
                    term: d.u64()?,
                    last_log_index: d.u64()?,
                    last_log_term: d.u64()?,
                },
                R_VOTE => RaftMsg::Vote {
                    term: d.u64()?,
                    granted: d.u8()? != 0,
                },
                R_APPEND => {
                    let term = d.u64()?;
                    let prev_index = d.u64()?;
                    let prev_term = d.u64()?;
                    let leader_commit = d.u64()?;
                    let count = d.u32()? as usize;
                    if count > d.remaining() / 13 {
                        return Err(FrameError::BadCount);
                    }
                    let mut entries = Vec::with_capacity(count);
                    for _ in 0..count {
                        let term = d.u64()?;
                        let data = d.global_cmd()?;
                        entries.push(LogEntry { term, data });
                    }
                    RaftMsg::AppendEntries {
                        term,
                        prev_index,
                        prev_term,
                        entries,
                        leader_commit,
                    }
                }
                R_APPEND_RESP => RaftMsg::AppendResp {
                    term: d.u64()?,
                    success: d.u8()? != 0,
                    match_index: d.u64()?,
                },
                R_TIMEOUT_NOW => RaftMsg::TimeoutNow,
                t => return Err(FrameError::BadTag(t)),
            };
            Msg::Raft {
                instance,
                rmsg,
                cert_bytes,
            }
        }
        T_FEED => {
            let count = d.u32()? as usize;
            if count > d.remaining() / 24 {
                return Err(FrameError::BadCount);
            }
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                let word0 = d.u32()?;
                let id = d.entry_id()?;
                let ts = d.u64()?;
                if word0 & (1 << 31) != 0 {
                    events.push(FeedEvent::Committed(id));
                } else {
                    events.push(FeedEvent::Stamp {
                        stamper: word0,
                        target: id,
                        ts,
                    });
                }
            }
            Msg::Feed { events }
        }
        T_ENTRY_REQUEST => Msg::EntryRequest { id: d.entry_id()? },
        T_ACCEPT_NOTICE => {
            let from_group = d.u32()?;
            let count = d.u32()? as usize;
            if count > d.remaining() / 12 {
                return Err(FrameError::BadCount);
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(d.entry_id()?);
            }
            Msg::AcceptNotice {
                from_group,
                entries,
            }
        }
        T_EPOCH_CLOSE => Msg::EpochClose {
            group: d.u32()?,
            epoch: d.u64()?,
        },
        t => return Err(FrameError::BadTag(t)),
    };
    Ok(msg)
}

// ------------------------------------------------------------ reassembly

/// Incremental frame reassembly over arbitrary read boundaries: bytes go
/// in via [`FrameBuffer::push`] (or [`FrameBuffer::fill_from`] straight
/// off a socket), complete frame bodies come out of
/// [`FrameBuffer::next_frame`]. Partial frames stay buffered; multiple
/// frames arriving in one read drain one `next_frame` call at a time.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn push(&mut self, chunk: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(chunk);
    }

    /// Reads once from `r` into the buffer tail (at most `max` bytes).
    /// Returns the number of bytes read (0 = EOF).
    pub fn fill_from<R: std::io::Read>(&mut self, r: &mut R, max: usize) -> std::io::Result<usize> {
        self.compact();
        let old = self.buf.len();
        self.buf.resize(old + max, 0);
        let n = r.read(&mut self.buf[old..]);
        match n {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    fn compact(&mut self) {
        if self.start > 0 && (self.start == self.buf.len() || self.start > 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Bytes currently buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame body, if one is fully buffered.
    /// The body is copied out of the reassembly buffer into its own
    /// [`Bytes`] allocation exactly once; all payload fields decoded
    /// from it are zero-copy slices of that allocation.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        let avail = self.buf.len() - self.start;
        if avail < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.start..self.start + 4]
                .try_into()
                .expect("len checked"),
        ) as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(FrameError::BadLength(len));
        }
        if avail < FRAME_HEADER + len {
            return Ok(None);
        }
        let body = Bytes::copy_from_slice(
            &self.buf[self.start + FRAME_HEADER..self.start + FRAME_HEADER + len],
        );
        self.start += FRAME_HEADER + len;
        self.compact();
        Ok(Some(body))
    }

    /// Convenience: next complete frame, decoded.
    pub fn next_msg(&mut self) -> Result<Option<Msg>, FrameError> {
        match self.next_frame()? {
            Some(body) => Ok(Some(decode_msg(&body)?)),
            None => Ok(None),
        }
    }
}

//! The wire-format model: one shared set of per-message size constants.
//!
//! Two consumers must agree byte-for-byte on how large each [`Msg`]
//! variant is on the wire:
//!
//! 1. the simulator's byte accounting (`SimMessage::wire_size`, which
//!    drives WAN serialization delay and every `wan_bytes` report), and
//! 2. the TCP runtime's frame codec (`massbft-runtime`), which encodes
//!    the same enum into length-prefixed frames.
//!
//! Historically the sizes were magic numbers inlined in `protocol.rs`
//! (`cert.signatures.len() * 72 + 40`, …). They live here now, and the
//! frame codec pads each variant's encoding up to exactly the modeled
//! size, so a cross-driver test can assert `encoded body length ==
//! wire_size()` per variant (see `crates/runtime/src/frame.rs`).
//!
//! Two overheads were raised (by 4 bytes per item) when the codec was
//! written, because no honest encoding fits the old model: a
//! `ViewChange` prepared tuple needs seq (8) + digest (32) + length
//! prefix (4) before the payload, and a `NewView` re-proposal needs
//! seq (8) + length prefix (4). Both messages appear only during view
//! changes, so fault-free simulator byte accounting is unchanged.

use crate::protocol::{GlobalCmd, Msg};
use massbft_consensus::{PbftMsg, RaftMsg};

/// Bytes per signature in a quorum certificate: claimed signer identity
/// (8) + HMAC-SHA256 tag (32) + the envelope a production signature
/// scheme would add (modeled, 32).
pub const SIG_WIRE: usize = 72;
/// Certificate header: certified digest (32) + group (4) + count (4).
pub const CERT_OVERHEAD: usize = 40;
/// Serialized [`crate::entry::EntryId`]: gid (4) + seq (8).
pub const ENTRY_ID_WIRE: usize = 12;
/// A SHA-256 digest.
pub const DIGEST_WIRE: usize = 32;

/// PBFT pre-prepare envelope around the payload.
pub const PBFT_PREPREPARE_OVERHEAD: usize = 64;
/// A PBFT prepare or commit vote (fixed size).
pub const PBFT_VOTE_WIRE: usize = 112;
/// A PBFT primary-liveness heartbeat.
pub const PBFT_HEARTBEAT_WIRE: usize = 48;
/// View-change envelope (new view, last exec, signature, count).
pub const PBFT_VIEWCHANGE_OVERHEAD: usize = 112;
/// Per prepared tuple in a view change: seq (8) + digest (32) + payload
/// length prefix (4), on top of the payload itself.
pub const PBFT_VIEWCHANGE_PREPARED_OVERHEAD: usize = 44;
/// New-view envelope.
pub const PBFT_NEWVIEW_OVERHEAD: usize = 64;
/// Per re-proposal in a new-view: seq (8) + payload length prefix (4).
pub const PBFT_NEWVIEW_REPROPOSAL_OVERHEAD: usize = 12;

/// Chunk envelope: entry id, chunk id, Merkle root, proof and data
/// framing — everything but the data and the proof path.
pub const CHUNK_OVERHEAD: usize = 64;
/// One Merkle proof step: sibling digest (32) + side flag (1).
pub const PROOF_STEP_WIRE: usize = 33;
/// Full-entry-copy envelope (beyond the entry bytes and certificate).
pub const ENTRY_OVERHEAD: usize = 104;

/// Raft message envelope (instance, term bookkeeping, framing).
pub const RAFT_OVERHEAD: usize = 64;
/// A `GlobalCmd` entry commitment: entry id (12) + digest (32).
pub const GLOBAL_CMD_ENTRY_WIRE: usize = ENTRY_ID_WIRE + DIGEST_WIRE;
/// One piggybacked VTS stamp: entry id (12) + clock value (8).
pub const GLOBAL_CMD_STAMP_WIRE: usize = 20;
/// `GlobalCmd` envelope (flags, counts, log-entry term).
pub const GLOBAL_CMD_OVERHEAD: usize = 24;

/// One ordering feed event (committed-entry or stamp record).
pub const FEED_EVENT_WIRE: usize = 24;
/// Feed envelope.
pub const FEED_OVERHEAD: usize = 32;
/// A pull-repair entry request (fixed size).
pub const ENTRY_REQUEST_WIRE: usize = 64;
/// Per entry id in an accept notice.
pub const ACCEPT_NOTICE_ENTRY_WIRE: usize = 16;
/// Accept-notice envelope.
pub const ACCEPT_NOTICE_OVERHEAD: usize = 48;
/// An ISS epoch-close announcement (fixed size).
pub const EPOCH_CLOSE_WIRE: usize = 48;

/// Wire size of a quorum certificate with `signatures` signatures.
pub fn cert_wire(signatures: usize) -> usize {
    signatures * SIG_WIRE + CERT_OVERHEAD
}

/// Wire size of one global Raft command.
pub fn global_cmd_wire(cmd: &GlobalCmd) -> usize {
    let entry = if cmd.entry.is_some() {
        GLOBAL_CMD_ENTRY_WIRE
    } else {
        0
    };
    entry + cmd.stamps.len() * GLOBAL_CMD_STAMP_WIRE + GLOBAL_CMD_OVERHEAD
}

/// Wire size of a chunk message with `data_len` payload bytes and
/// `proof_steps` Merkle proof steps (certificate not included).
pub fn chunk_wire(data_len: usize, proof_steps: usize) -> usize {
    data_len + proof_steps * PROOF_STEP_WIRE + CHUNK_OVERHEAD
}

/// The modeled wire size of a protocol message. Single source of truth:
/// `SimMessage::wire_size` delegates here, and the runtime frame codec
/// produces frame bodies of exactly this many bytes.
pub fn msg_wire_size(msg: &Msg) -> usize {
    match msg {
        Msg::Pbft(m) => match m {
            PbftMsg::PrePrepare { payload, .. } => payload.len() + PBFT_PREPREPARE_OVERHEAD,
            PbftMsg::Prepare { .. } | PbftMsg::Commit { .. } => PBFT_VOTE_WIRE,
            PbftMsg::Heartbeat { .. } => PBFT_HEARTBEAT_WIRE,
            PbftMsg::ViewChange { prepared, .. } => {
                PBFT_VIEWCHANGE_OVERHEAD
                    + prepared
                        .iter()
                        .map(|(_, _, p)| p.len() + PBFT_VIEWCHANGE_PREPARED_OVERHEAD)
                        .sum::<usize>()
            }
            PbftMsg::NewView { reproposals, .. } => {
                PBFT_NEWVIEW_OVERHEAD
                    + reproposals
                        .iter()
                        .map(|(_, p)| p.len() + PBFT_NEWVIEW_REPROPOSAL_OVERHEAD)
                        .sum::<usize>()
            }
        },
        Msg::Chunk { chunk, cert } => chunk.wire_size() + cert_wire(cert.signatures.len()),
        Msg::Entry { bytes, cert, .. } => {
            bytes.len() + cert.signatures.len() * SIG_WIRE + ENTRY_OVERHEAD
        }
        Msg::Raft {
            rmsg, cert_bytes, ..
        } => match rmsg {
            RaftMsg::AppendEntries { entries, .. } => {
                entries
                    .iter()
                    .map(|e| global_cmd_wire(&e.data))
                    .sum::<usize>()
                    + cert_bytes
                    + RAFT_OVERHEAD
            }
            _ => RAFT_OVERHEAD,
        },
        Msg::Feed { events } => events.len() * FEED_EVENT_WIRE + FEED_OVERHEAD,
        Msg::EntryRequest { .. } => ENTRY_REQUEST_WIRE,
        Msg::AcceptNotice { entries, .. } => {
            entries.len() * ACCEPT_NOTICE_ENTRY_WIRE + ACCEPT_NOTICE_OVERHEAD
        }
        Msg::EpochClose { .. } => EPOCH_CLOSE_WIRE,
    }
}

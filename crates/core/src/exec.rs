//! Batched ordering→execution handoff.
//!
//! [`ExecutionPipeline`] sits between the protocol layer's globally
//! ordered entry stream and the Aria executor. Per tick the protocol
//! drains *every* execution-ready entry (in `(vts, seq, gid)` order) and
//! hands the whole run to [`ExecutionPipeline::execute_entries`] in one
//! call, instead of crossing the ordering/execution boundary once per
//! entry.
//!
//! ## Why batch boundaries stay at entry granularity
//!
//! Which entries are drained *together* depends on message arrival
//! timing, which differs per replica. The ledger commits a state
//! fingerprint after every entry ([`crate::ledger::Block`]), so anything
//! that lets one entry's conflict set bleed into another's — e.g. a true
//! cross-entry Aria mega-batch — would make commits depend on drain
//! timing and diverge replicas. The pipeline therefore runs one Aria
//! batch per entry, in order; the parallelism lives *inside* each batch
//! (multi-core phases, see `massbft_db::aria`). Transaction ids are the
//! position within the entry's batch, and entries are totally ordered,
//! so the (entry, index) id assignment is identical on every replica.
//!
//! ## Conflict-abort retry
//!
//! With `retry_aborts` enabled, conflict-aborted transactions are
//! re-queued at the *front* of the next entry's batch, in their original
//! id order. The retry queue's content is a pure function of the entry
//! sequence prefix — timing cannot touch it — so replicas still agree.
//! It defaults off to preserve the paper's drop-on-conflict accounting
//! (Fig. 8d abort-rate comparisons).

use crate::entry::EntryId;
use massbft_db::{AriaExecutor, KvStore, TxnOutcome};
use massbft_workloads::Request;
use std::collections::VecDeque;
use std::sync::OnceLock;

/// Distribution of per-entry batch sizes handed to Aria
/// (`core.exec.entry_txns` histogram in the telemetry registry).
fn entry_txns_histogram() -> &'static massbft_telemetry::registry::Histogram {
    static H: OnceLock<massbft_telemetry::registry::Histogram> = OnceLock::new();
    H.get_or_init(|| massbft_telemetry::registry::histogram("core.exec.entry_txns"))
}

/// A decoded, execution-ready entry.
#[derive(Debug, Clone)]
pub struct PreparedEntry {
    /// Global entry id.
    pub id: EntryId,
    /// Decoded transactions, entry order.
    pub txns: Vec<Request>,
}

/// Per-entry execution result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryResult {
    /// Which entry.
    pub id: EntryId,
    /// Transactions fed to the executor (entry txns + injected retries).
    pub executed: usize,
    /// Committed transactions.
    pub committed: usize,
    /// Conflict (WAW/RAW) aborts left unresolved after the batch (with the
    /// deterministic fallback on, rescued txns move to `fallback_committed`
    /// and this stays 0).
    pub conflict_aborted: usize,
    /// Logic-level aborts.
    pub logic_aborted: usize,
    /// Conflict-aborted transactions committed by the serial fallback
    /// re-run within the same batch.
    pub fallback_committed: usize,
    /// `store.content_hash()` after this entry's batch — what the ledger
    /// block records.
    pub state_fingerprint: u64,
}

/// Owns the execution-side state: the (sharded) store, the Aria
/// executor, and the deterministic conflict-retry queue.
#[derive(Debug)]
pub struct ExecutionPipeline {
    store: KvStore,
    executor: AriaExecutor,
    retry: VecDeque<Request>,
    retry_aborts: bool,
}

impl ExecutionPipeline {
    /// A pipeline with `workers` Aria lanes (1 = serial), the given
    /// cross-entry retry policy, and (when `fallback` is on) Aria's
    /// deterministic same-batch abort fallback.
    ///
    /// The two abort policies compose: the fallback rescues conflict
    /// aborts *inside* the batch (leaving none for the retry queue), so
    /// with fallback on the retry queue naturally stays empty.
    pub fn new(workers: usize, retry_aborts: bool, fallback: bool) -> Self {
        ExecutionPipeline {
            store: KvStore::new(),
            executor: AriaExecutor::parallel(workers).with_fallback(fallback),
            retry: VecDeque::new(),
            retry_aborts,
        }
    }

    /// The execution state.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Mutable store access (initial-state loading in tests/tools).
    pub fn store_mut(&mut self) -> &mut KvStore {
        &mut self.store
    }

    /// Configured Aria worker lanes.
    pub fn workers(&self) -> usize {
        self.executor.workers()
    }

    /// Conflict-aborted transactions waiting for the next entry.
    pub fn pending_retries(&self) -> usize {
        self.retry.len()
    }

    /// Executes a drained run of ready entries, in order, one Aria batch
    /// per entry. Returns one result per input entry.
    pub fn execute_entries(&mut self, entries: Vec<PreparedEntry>) -> Vec<EntryResult> {
        entries
            .into_iter()
            .map(|entry| {
                let id = entry.id;
                let batch: Vec<Request> = if self.retry.is_empty() {
                    entry.txns
                } else {
                    let mut b: Vec<Request> =
                        Vec::with_capacity(self.retry.len() + entry.txns.len());
                    b.extend(self.retry.drain(..));
                    b.extend(entry.txns);
                    b
                };
                entry_txns_histogram().record(batch.len() as u64);
                let out = self.executor.execute_batch(&mut self.store, &batch);
                if self.retry_aborts {
                    for &i in &out.conflict_aborted {
                        self.retry.push_back(batch[i].clone());
                    }
                }
                let logic_aborted = out
                    .outcomes
                    .iter()
                    .filter(|o| **o == TxnOutcome::LogicAborted)
                    .count();
                EntryResult {
                    id,
                    executed: batch.len(),
                    committed: out.committed,
                    conflict_aborted: out.conflict_aborted.len(),
                    logic_aborted,
                    fallback_committed: out.fallback_committed,
                    state_fingerprint: self.store.content_hash(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(gid: u32, seq: u64, reqs: Vec<Request>) -> PreparedEntry {
        PreparedEntry {
            id: EntryId::new(gid, seq),
            txns: reqs,
        }
    }

    fn payment(src: u64, dst: u64, amount: u32) -> Request {
        Request::SbSendPayment { src, dst, amount }
    }

    fn deposit(acct: u64, amount: u32) -> Request {
        Request::SbDepositChecking { acct, amount }
    }

    #[test]
    fn one_fingerprint_per_entry_matches_sequential_execution() {
        let run_batched = || {
            let mut p = ExecutionPipeline::new(1, false, false);
            let entries = vec![
                entry(0, 0, vec![deposit(1, 100), deposit(2, 100)]),
                entry(1, 0, vec![payment(1, 2, 30)]),
            ];
            p.execute_entries(entries)
        };
        let run_single = || {
            let mut p = ExecutionPipeline::new(1, false, false);
            let a = p.execute_entries(vec![entry(0, 0, vec![deposit(1, 100), deposit(2, 100)])]);
            let b = p.execute_entries(vec![entry(1, 0, vec![payment(1, 2, 30)])]);
            [a, b].concat()
        };
        // Draining 2 entries in one call vs two calls is invisible in the
        // results — the property replica agreement rests on.
        assert_eq!(run_batched(), run_single());
    }

    #[test]
    fn conflict_aborts_requeue_at_front_when_enabled() {
        let mut p = ExecutionPipeline::new(1, true, false);
        // Both payments drain account 1: the second conflict-aborts.
        let r = p.execute_entries(vec![entry(
            0,
            0,
            vec![deposit(1, 100), payment(1, 2, 10), payment(1, 3, 10)],
        )]);
        assert_eq!(r[0].conflict_aborted, 2);
        assert_eq!(p.pending_retries(), 2);
        // Next entry: retries run first (ids 0..2), then the new txn.
        let r2 = p.execute_entries(vec![entry(0, 1, vec![deposit(4, 1)])]);
        assert_eq!(r2[0].executed, 3);
        // One retry commits, the other conflicts again and re-queues.
        assert_eq!(p.pending_retries(), 1);
        let r3 = p.execute_entries(vec![entry(0, 2, vec![])]);
        assert_eq!(r3[0].executed, 1);
        assert_eq!(r3[0].committed, 1);
        assert_eq!(p.pending_retries(), 0);
    }

    #[test]
    fn retries_drop_silently_when_disabled() {
        let mut p = ExecutionPipeline::new(1, false, false);
        let r = p.execute_entries(vec![entry(
            0,
            0,
            vec![deposit(1, 100), payment(1, 2, 10), payment(1, 3, 10)],
        )]);
        assert_eq!(r[0].conflict_aborted, 2);
        assert_eq!(p.pending_retries(), 0);
    }

    #[test]
    fn fallback_rescues_conflicts_and_leaves_no_residue() {
        let conflicting = |seq: u64| {
            entry(
                0,
                seq,
                vec![deposit(1, 100), payment(1, 2, 10), payment(1, 3, 10)],
            )
        };
        // Without the fallback, two payments conflict-abort.
        let mut plain = ExecutionPipeline::new(1, false, false);
        let r = plain.execute_entries(vec![conflicting(0)]);
        assert_eq!(r[0].conflict_aborted, 2);
        assert_eq!(r[0].fallback_committed, 0);
        // With it, the same entry commits everything in one batch and the
        // retry queue has nothing to pick up even with retries enabled.
        let run = |workers: usize| {
            let mut p = ExecutionPipeline::new(workers, true, true);
            let r = p.execute_entries(vec![conflicting(0), conflicting(1)]);
            assert_eq!(p.pending_retries(), 0);
            r
        };
        let serial = run(1);
        for res in &serial {
            assert_eq!(res.conflict_aborted, 0);
            assert_eq!(res.committed, 3);
            assert_eq!(res.fallback_committed, 2);
        }
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn retry_pipeline_is_deterministic_across_worker_counts() {
        let run = |workers: usize| {
            let mut p = ExecutionPipeline::new(workers, true, false);
            let mk = |seq: u64| {
                entry(
                    0,
                    seq,
                    (0..40u64)
                        .map(|i| payment(i % 5, (i + 1) % 5, 1))
                        .chain((0..40u64).map(|i| deposit(i % 7, 10)))
                        .collect(),
                )
            };
            let results = p.execute_entries(vec![mk(0), mk(1), mk(2)]);
            (results, p.store().content_hash(), p.pending_retries())
        };
        let serial = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), serial, "workers={workers}");
        }
    }
}

//! MassBFT: fast and scalable geo-distributed Byzantine fault-tolerant
//! consensus — the paper's primary contribution.
//!
//! This crate implements the protocol of *MassBFT* (Peng et al., ICDE
//! 2025) and the competitor protocols evaluated against it, all over the
//! deterministic simulation substrate in `massbft-sim-net`:
//!
//! - [`plan`] — Algorithm 1: bijective transfer-plan generation.
//! - [`replication`] — encoded bijective log replication with optimistic
//!   Merkle-bucketed rebuild (§IV).
//! - [`ordering`] — Algorithm 2: asynchronous ordering by vector
//!   timestamps (§V).
//! - [`round`] — the round-based synchronous ordering used by Baseline,
//!   GeoBFT, and ISS (§II-A).
//! - [`exec`] — the batched ordering→execution handoff feeding the
//!   (optionally multi-core) Aria executor, with the deterministic
//!   conflict-retry queue.
//! - [`protocol`] — the unified node actor: one implementation with
//!   configuration presets for **MassBFT**, **Baseline**, **GeoBFT**,
//!   **Steward**, **ISS**, **BR** (bijective-only), and **EBR**
//!   (encoded bijective without asynchronous ordering) — the same
//!   same-codebase methodology the paper uses for fair comparison (§VI).
//! - [`cluster`] — the experiment harness: build a geo-cluster, drive a
//!   workload, inject faults, measure throughput and latency in virtual
//!   time.
//!
//! # Quickstart
//!
//! ```
//! use massbft_core::cluster::{Cluster, ClusterConfig};
//! use massbft_core::protocol::Protocol;
//! use massbft_workloads::WorkloadKind;
//!
//! let cfg = ClusterConfig::nationwide(&[4, 4, 4], Protocol::MassBft)
//!     .workload(WorkloadKind::YcsbA)
//!     .seed(7);
//! let mut cluster = Cluster::new(cfg);
//! let report = cluster.run_secs(3);
//! assert!(report.throughput.tps() > 0.0);
//! assert!(report.all_nodes_consistent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod cluster;
pub mod entry;
pub mod exec;
pub mod ledger;
pub mod ordering;
pub mod plan;
pub mod protocol;
pub mod replication;
pub mod round;
pub mod stats;
pub mod wire;

pub use entry::EntryId;
pub use exec::{ExecutionPipeline, PreparedEntry};
pub use ordering::OrderingEngine;
pub use plan::TransferPlan;
pub use replication::{ChunkAssembler, ChunkMsg, ChunkSender};

//! Log entries: identity, batch framing, and digests.
//!
//! An *entry* is a batch of client transactions created by one group's
//! leader (paper §II-A, *Batching*). Entries are identified by
//! `(gid, seq)` — the proposing group and its local sequence number —
//! written `e_{i,m}` in the paper.

use massbft_crypto::Digest;

/// Identity of an entry: proposing group + local sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryId {
    /// Proposing group id.
    pub gid: u32,
    /// Local sequence number within the group, starting at 1.
    pub seq: u64,
}

impl EntryId {
    /// Convenience constructor.
    pub fn new(gid: u32, seq: u64) -> Self {
        EntryId { gid, seq }
    }

    /// The next entry from the same group.
    pub fn successor(&self) -> EntryId {
        EntryId {
            gid: self.gid,
            seq: self.seq + 1,
        }
    }
}

impl std::fmt::Display for EntryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{},{}", self.gid, self.seq)
    }
}

/// Frames a batch of serialized transaction requests into entry bytes:
/// `[count: u32][len: u32, bytes]*`, preceded by the entry id so identical
/// batches from different groups hash differently.
pub fn encode_batch(id: EntryId, requests: &[Vec<u8>]) -> Vec<u8> {
    let body: usize = requests.iter().map(|r| r.len() + 4).sum();
    let mut out = Vec::with_capacity(16 + body);
    out.extend_from_slice(&id.gid.to_le_bytes());
    out.extend_from_slice(&id.seq.to_le_bytes());
    out.extend_from_slice(&(requests.len() as u32).to_le_bytes());
    for r in requests {
        out.extend_from_slice(&(r.len() as u32).to_le_bytes());
        out.extend_from_slice(r);
    }
    out
}

/// Reads just the entry id from encoded batch bytes without touching the
/// request payloads — the telemetry layer uses this to attribute PBFT
/// traffic (which carries opaque payloads) to entries in O(1).
pub fn peek_entry_id(bytes: &[u8]) -> Option<EntryId> {
    if bytes.len() < 16 {
        return None;
    }
    let gid = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let seq = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    Some(EntryId::new(gid, seq))
}

/// Inverse of [`encode_batch`]. Returns the id and the request byte
/// strings, or `None` on malformed framing (tampered entries surface here
/// after certificate validation has already failed — this is a belt-and-
/// braces check).
pub fn decode_batch(bytes: &[u8]) -> Option<(EntryId, Vec<Vec<u8>>)> {
    if bytes.len() < 16 {
        return None;
    }
    let gid = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let seq = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    let count = u32::from_le_bytes(bytes[12..16].try_into().ok()?) as usize;
    let mut requests = Vec::with_capacity(count);
    let mut pos = 16;
    for _ in 0..count {
        if pos + 4 > bytes.len() {
            return None;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().ok()?) as usize;
        pos += 4;
        if pos + len > bytes.len() {
            return None;
        }
        requests.push(bytes[pos..pos + len].to_vec());
        pos += len;
    }
    if pos != bytes.len() {
        return None;
    }
    Some((EntryId::new(gid, seq), requests))
}

/// Digest of entry bytes (what certificates sign).
pub fn entry_digest(bytes: &[u8]) -> Digest {
    Digest::of(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let id = EntryId::new(2, 17);
        let reqs = vec![b"tx-1".to_vec(), b"transaction-two".to_vec(), Vec::new()];
        let bytes = encode_batch(id, &reqs);
        let (id2, reqs2) = decode_batch(&bytes).unwrap();
        assert_eq!(id2, id);
        assert_eq!(reqs2, reqs);
    }

    #[test]
    fn peek_reads_header_only() {
        let id = EntryId::new(3, 99);
        let bytes = encode_batch(id, &[b"payload".to_vec()]);
        assert_eq!(peek_entry_id(&bytes), Some(id));
        assert_eq!(peek_entry_id(&bytes[..12]), None);
        // Peek agrees with the full decode on every well-formed batch.
        assert_eq!(peek_entry_id(&bytes), decode_batch(&bytes).map(|(i, _)| i));
    }

    #[test]
    fn empty_batch_roundtrips() {
        let bytes = encode_batch(EntryId::new(0, 1), &[]);
        let (id, reqs) = decode_batch(&bytes).unwrap();
        assert_eq!(id, EntryId::new(0, 1));
        assert!(reqs.is_empty());
    }

    #[test]
    fn same_payload_different_groups_differ() {
        let reqs = vec![b"tx".to_vec()];
        let a = encode_batch(EntryId::new(0, 1), &reqs);
        let b = encode_batch(EntryId::new(1, 1), &reqs);
        assert_ne!(entry_digest(&a), entry_digest(&b));
    }

    #[test]
    fn malformed_framing_rejected() {
        assert!(decode_batch(&[]).is_none());
        assert!(decode_batch(&[0; 15]).is_none());
        let mut bytes = encode_batch(EntryId::new(0, 1), &[b"x".to_vec()]);
        bytes.push(0); // trailing garbage
        assert!(decode_batch(&bytes).is_none());
        let bytes = encode_batch(EntryId::new(0, 1), &[b"x".to_vec()]);
        assert!(decode_batch(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn successor_increments_seq_only() {
        let id = EntryId::new(3, 9);
        assert_eq!(id.successor(), EntryId::new(3, 10));
    }
}

//! The globally ordered ledger.
//!
//! The paper's prototype is a permissioned blockchain: "Each group
//! concurrently accepts local client transactions and generates a
//! subchain of blocks. These blocks are then synchronized across groups
//! using MassBFT to create a single, globally ordered, ledger" (§VI).
//! [`Ledger`] is that final artifact at one node: a hash chain over the
//! deterministically ordered, executed entries, binding each block to the
//! entry content and the post-execution state fingerprint.
//!
//! Two correct nodes' ledgers are prefix-identical (Agreement); the chain
//! head hash is a single value that audits an entire shared history.

use crate::entry::EntryId;
use massbft_crypto::Digest;

/// One ledger block: an executed entry with its chain linkage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Position in the chain, starting at 1.
    pub height: u64,
    /// The entry executed at this height.
    pub entry: EntryId,
    /// Digest of the entry bytes.
    pub entry_digest: Digest,
    /// Hash of the previous block ([`Digest::ZERO`] for the genesis link).
    pub prev_hash: Digest,
    /// Database content fingerprint after executing this entry.
    pub state_fingerprint: u64,
    /// This block's hash (binds all of the above).
    pub hash: Digest,
}

/// A node-local hash chain over the executed entry sequence.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    blocks: Vec<Block>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chain height (number of blocks).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// The head block's hash, or [`Digest::ZERO`] before genesis.
    pub fn head_hash(&self) -> Digest {
        self.blocks.last().map(|b| b.hash).unwrap_or(Digest::ZERO)
    }

    /// Block at `height` (1-based).
    pub fn block(&self, height: u64) -> Option<&Block> {
        if height == 0 {
            return None;
        }
        self.blocks.get(height as usize - 1)
    }

    /// All blocks in order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Appends the next executed entry, returning the new block.
    pub fn append(
        &mut self,
        entry: EntryId,
        entry_digest: Digest,
        state_fingerprint: u64,
    ) -> &Block {
        let height = self.height() + 1;
        let prev_hash = self.head_hash();
        let hash = block_hash(height, entry, &entry_digest, &prev_hash, state_fingerprint);
        self.blocks.push(Block {
            height,
            entry,
            entry_digest,
            prev_hash,
            state_fingerprint,
            hash,
        });
        self.blocks.last().expect("just pushed")
    }

    /// Verifies the internal hash chain (tamper-evidence).
    pub fn verify_chain(&self) -> bool {
        let mut prev = Digest::ZERO;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.height != i as u64 + 1 || b.prev_hash != prev {
                return false;
            }
            let expect = block_hash(
                b.height,
                b.entry,
                &b.entry_digest,
                &b.prev_hash,
                b.state_fingerprint,
            );
            if b.hash != expect {
                return false;
            }
            prev = b.hash;
        }
        true
    }

    /// Whether `other` is a prefix of `self` or vice versa — the
    /// Agreement check between two replicas' ledgers.
    pub fn prefix_consistent(&self, other: &Ledger) -> bool {
        let k = self.blocks.len().min(other.blocks.len());
        self.blocks[..k] == other.blocks[..k]
    }
}

fn block_hash(
    height: u64,
    entry: EntryId,
    entry_digest: &Digest,
    prev_hash: &Digest,
    state_fingerprint: u64,
) -> Digest {
    Digest::of_parts(&[
        b"massbft-block",
        &height.to_le_bytes(),
        &entry.gid.to_le_bytes(),
        &entry.seq.to_le_bytes(),
        &entry_digest.0,
        &prev_hash.0,
        &state_fingerprint.to_le_bytes(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Ledger {
        let mut l = Ledger::new();
        for i in 1..=n {
            let id = EntryId::new((i % 3) as u32, i);
            l.append(id, Digest::of(&i.to_le_bytes()), i * 7);
        }
        l
    }

    #[test]
    fn chain_links_and_verifies() {
        let l = sample(5);
        assert_eq!(l.height(), 5);
        assert!(l.verify_chain());
        assert_eq!(l.block(1).unwrap().prev_hash, Digest::ZERO);
        for h in 2..=5 {
            assert_eq!(l.block(h).unwrap().prev_hash, l.block(h - 1).unwrap().hash);
        }
        assert_eq!(l.head_hash(), l.block(5).unwrap().hash);
        assert!(l.block(0).is_none());
        assert!(l.block(6).is_none());
    }

    #[test]
    fn tampering_is_detected() {
        let mut l = sample(4);
        assert!(l.verify_chain());
        l.blocks[1].state_fingerprint ^= 1;
        assert!(!l.verify_chain());

        let mut l = sample(4);
        l.blocks[2].entry = EntryId::new(9, 9);
        assert!(!l.verify_chain());

        let mut l = sample(4);
        l.blocks.remove(1);
        assert!(!l.verify_chain());
    }

    #[test]
    fn identical_histories_identical_heads() {
        let a = sample(6);
        let b = sample(6);
        assert_eq!(a.head_hash(), b.head_hash());
        assert!(a.prefix_consistent(&b));
    }

    #[test]
    fn prefix_consistency_detects_forks() {
        let a = sample(6);
        let b = sample(4);
        assert!(a.prefix_consistent(&b), "shorter chain is a prefix");
        let mut forked = sample(4);
        forked.append(EntryId::new(2, 99), Digest::of(b"fork"), 1);
        assert!(!a.prefix_consistent(&forked) || a.blocks()[4].entry == EntryId::new(2, 99));
    }

    #[test]
    fn empty_ledger_is_trivially_valid() {
        let l = Ledger::new();
        assert_eq!(l.height(), 0);
        assert_eq!(l.head_hash(), Digest::ZERO);
        assert!(l.verify_chain());
        assert!(l.prefix_consistent(&Ledger::new()));
    }
}

//! Run statistics: throughput windows, latency distributions,
//! data-plane counters (decode-cache effectiveness, residual byte
//! copies), and execution-pipeline counters (per-phase Aria timings,
//! worker utilization, abort rates — re-exported from `massbft-db`,
//! which records them at the executor hot path).

use massbft_sim_net::Time;
use std::sync::atomic::{AtomicU64, Ordering};

pub use massbft_db::stats::{exec_stats, BatchSample, ExecStats};

/// Snapshot of the process-wide execution-pipeline counters: batch and
/// transaction totals, commit/abort splits, execute/reserve/commit phase
/// wall time, and busy-vs-capacity worker utilization. Monotonic;
/// callers measure deltas via [`ExecStats::since`].
pub fn execution_stats() -> ExecStats {
    exec_stats()
}

/// Bytes the replication data plane still copies after the zero-copy work
/// (entry framing on encode, framed reassembly + retained copy on rebuild).
static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);

/// Counts `n` bytes that were memcpy'd on the chunk encode/rebuild path.
/// Called by the replication layer; monotonic for the process lifetime.
pub fn record_copied_bytes(n: usize) {
    BYTES_COPIED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Process-wide data-plane counters.
///
/// Hits and misses come from the codec's decode-plan cache (one inverted
/// matrix per erasure pattern); `bytes_copied` counts the residual copies
/// the chunk path performs. All three are monotonic, so callers measure
/// deltas across a window of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataPlaneStats {
    /// Entry rebuilds that reused a cached decode matrix.
    pub decode_cache_hits: u64,
    /// Entry rebuilds that inverted a fresh decode matrix.
    pub decode_cache_misses: u64,
    /// Bytes memcpy'd by the encode/rebuild path.
    pub bytes_copied: u64,
}

/// Snapshot of the process-wide data-plane counters.
pub fn data_plane_stats() -> DataPlaneStats {
    let cache = massbft_codec::rs::global_cache_stats();
    DataPlaneStats {
        decode_cache_hits: cache.hits,
        decode_cache_misses: cache.misses,
        bytes_copied: BYTES_COPIED.load(Ordering::Relaxed),
    }
}

/// Online latency accumulator with reservoir-free exact percentiles
/// (latencies are few per run — one per entry — so storing them is fine).
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<Time>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (microseconds).
    pub fn record(&mut self, latency: Time) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_us() / 1000.0
    }

    /// Mean of samples recorded at index `from` onward — windowed means
    /// for timeline plots (Fig. 15).
    pub fn mean_from(&self, from: usize) -> f64 {
        if from >= self.samples.len() {
            return 0.0;
        }
        // Note: percentile_us() sorts in place; timeline users must call
        // mean_from before any percentile query, or track indices before.
        let slice = &self.samples[from..];
        slice.iter().sum::<u64>() as f64 / slice.len() as f64
    }

    /// The `p`-th percentile (0–100), microseconds.
    pub fn percentile_us(&mut self, p: f64) -> Time {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[rank.min(self.samples.len() - 1)]
    }
}

/// Throughput over a measurement window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Throughput {
    /// Committed (executed) transactions in the window.
    pub txns: u64,
    /// Window length in microseconds.
    pub window_us: Time,
}

impl Throughput {
    /// Transactions per second.
    pub fn tps(&self) -> f64 {
        if self.window_us == 0 {
            return 0.0;
        }
        self.txns as f64 * 1_000_000.0 / self.window_us as f64
    }

    /// Kilotransactions per second (the paper's unit).
    pub fn ktps(&self) -> f64 {
        self.tps() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_basics() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean_us(), 0.0);
        assert_eq!(s.percentile_us(50.0), 0);
        for v in [10, 20, 30, 40, 50] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean_us() - 30.0).abs() < 1e-9);
        assert_eq!(s.percentile_us(0.0), 10);
        assert_eq!(s.percentile_us(50.0), 30);
        assert_eq!(s.percentile_us(100.0), 50);
        assert_eq!(s.mean_ms(), 0.03);
    }

    #[test]
    fn mean_from_windows() {
        let mut s = LatencyStats::new();
        for v in [10, 20, 90, 110] {
            s.record(v);
        }
        assert!((s.mean_from(0) - 57.5).abs() < 1e-9);
        assert!((s.mean_from(2) - 100.0).abs() < 1e-9);
        assert_eq!(s.mean_from(4), 0.0);
    }

    #[test]
    fn percentile_after_more_records_resorts() {
        let mut s = LatencyStats::new();
        s.record(100);
        assert_eq!(s.percentile_us(50.0), 100);
        s.record(1);
        assert_eq!(s.percentile_us(0.0), 1);
    }

    #[test]
    fn throughput_math() {
        let t = Throughput {
            txns: 50_000,
            window_us: 1_000_000,
        };
        assert!((t.tps() - 50_000.0).abs() < 1e-9);
        assert!((t.ktps() - 50.0).abs() < 1e-9);
        let zero = Throughput::default();
        assert_eq!(zero.tps(), 0.0);
    }
}

//! Run statistics: throughput windows, latency distributions,
//! data-plane counters (decode-cache effectiveness, residual byte
//! copies), and execution-pipeline counters (per-phase Aria timings,
//! worker utilization, abort rates — re-exported from `massbft-db`,
//! which records them at the executor hot path).
//!
//! Since the telemetry PR this module is a thin facade over the
//! process-wide [`massbft_telemetry::registry`]: the counters live there
//! (named under `core.*`), and the functions here keep their original
//! signatures. Query the registry directly for a unified snapshot.

use massbft_sim_net::Time;
use massbft_telemetry::registry::{self, Counter, Gauge};
use std::sync::OnceLock;

pub use massbft_db::stats::{exec_stats, BatchSample, ExecStats};

/// Snapshot of the process-wide execution-pipeline counters: batch and
/// transaction totals, commit/abort splits, execute/reserve/commit phase
/// wall time, and busy-vs-capacity worker utilization. Monotonic;
/// callers measure deltas via [`ExecStats::since`].
pub fn execution_stats() -> ExecStats {
    exec_stats()
}

/// Bytes the replication data plane still copies after the zero-copy work
/// (entry framing on encode, framed reassembly + retained copy on rebuild).
/// Lives in the telemetry registry as `core.data_plane.bytes_copied`.
fn bytes_copied_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| registry::counter("core.data_plane.bytes_copied"))
}

/// Counts `n` bytes that were memcpy'd on the chunk encode/rebuild path.
/// Called by the replication layer; monotonic for the process lifetime.
pub fn record_copied_bytes(n: usize) {
    bytes_copied_counter().add(n as u64);
}

/// Process-wide data-plane counters.
///
/// Hits and misses come from the codec's decode-plan cache (one inverted
/// matrix per erasure pattern); `bytes_copied` counts the residual copies
/// the chunk path performs. All three are monotonic, so callers measure
/// deltas across a window of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataPlaneStats {
    /// Entry rebuilds that reused a cached decode matrix.
    pub decode_cache_hits: u64,
    /// Entry rebuilds that inverted a fresh decode matrix.
    pub decode_cache_misses: u64,
    /// Bytes memcpy'd by the encode/rebuild path.
    pub bytes_copied: u64,
}

/// Snapshot of the process-wide data-plane counters. Also mirrors the
/// codec decode-cache numbers into the registry (`core.data_plane.*`
/// gauges) so a single registry snapshot carries the whole data plane.
pub fn data_plane_stats() -> DataPlaneStats {
    static HITS: OnceLock<Gauge> = OnceLock::new();
    static MISSES: OnceLock<Gauge> = OnceLock::new();
    let cache = massbft_codec::rs::global_cache_stats();
    HITS.get_or_init(|| registry::gauge("core.data_plane.decode_cache_hits"))
        .set(cache.hits);
    MISSES
        .get_or_init(|| registry::gauge("core.data_plane.decode_cache_misses"))
        .set(cache.misses);
    DataPlaneStats {
        decode_cache_hits: cache.hits,
        decode_cache_misses: cache.misses,
        bytes_copied: bytes_copied_counter().get(),
    }
}

/// Online latency accumulator with exact percentiles (latencies are few
/// per run — one per entry — so storing them is fine).
///
/// Samples are kept in insertion order: [`LatencyStats::mean_from`]
/// windows stay valid no matter how the accumulator is queried.
/// Percentiles work on a lazily maintained sorted copy.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    /// Insertion-ordered samples — never reordered.
    samples: Vec<Time>,
    /// Sorted copy for percentile queries; rebuilt after new records.
    sorted: Vec<Time>,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (microseconds).
    pub fn record(&mut self, latency: Time) {
        self.samples.push(latency);
        self.sorted.clear();
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_us() / 1000.0
    }

    /// Mean of samples recorded at index `from` onward — windowed means
    /// for timeline plots (Fig. 15). Indices are insertion order, which
    /// percentile queries do not disturb.
    pub fn mean_from(&self, from: usize) -> f64 {
        if from >= self.samples.len() {
            return 0.0;
        }
        let slice = &self.samples[from..];
        slice.iter().sum::<u64>() as f64 / slice.len() as f64
    }

    /// The `p`-th percentile (0–100), microseconds. Sorts a copy, so the
    /// insertion-order timeline is preserved.
    pub fn percentile_us(&mut self, p: f64) -> Time {
        if self.samples.is_empty() {
            return 0;
        }
        if self.sorted.len() != self.samples.len() {
            self.sorted.clear();
            self.sorted.extend_from_slice(&self.samples);
            self.sorted.sort_unstable();
        }
        let rank = ((p / 100.0) * (self.sorted.len() - 1) as f64).round() as usize;
        self.sorted[rank.min(self.sorted.len() - 1)]
    }
}

/// Throughput over a measurement window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Throughput {
    /// Committed (executed) transactions in the window.
    pub txns: u64,
    /// Window length in microseconds.
    pub window_us: Time,
}

impl Throughput {
    /// Transactions per second.
    pub fn tps(&self) -> f64 {
        if self.window_us == 0 {
            return 0.0;
        }
        self.txns as f64 * 1_000_000.0 / self.window_us as f64
    }

    /// Kilotransactions per second (the paper's unit).
    pub fn ktps(&self) -> f64 {
        self.tps() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_basics() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean_us(), 0.0);
        assert_eq!(s.percentile_us(50.0), 0);
        for v in [10, 20, 30, 40, 50] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean_us() - 30.0).abs() < 1e-9);
        assert_eq!(s.percentile_us(0.0), 10);
        assert_eq!(s.percentile_us(50.0), 30);
        assert_eq!(s.percentile_us(100.0), 50);
        assert_eq!(s.mean_ms(), 0.03);
    }

    #[test]
    fn mean_from_windows() {
        let mut s = LatencyStats::new();
        for v in [10, 20, 90, 110] {
            s.record(v);
        }
        assert!((s.mean_from(0) - 57.5).abs() < 1e-9);
        assert!((s.mean_from(2) - 100.0).abs() < 1e-9);
        assert_eq!(s.mean_from(4), 0.0);
    }

    #[test]
    fn percentile_after_more_records_resorts() {
        let mut s = LatencyStats::new();
        s.record(100);
        assert_eq!(s.percentile_us(50.0), 100);
        s.record(1);
        assert_eq!(s.percentile_us(0.0), 1);
    }

    // Regression: percentile queries must not corrupt timeline windows.
    // The old implementation sorted `samples` in place, so a percentile
    // query silently reordered the insertion-order indices that
    // mean_from depends on.
    #[test]
    fn percentile_then_mean_from_keeps_insertion_order() {
        let mut s = LatencyStats::new();
        // Deliberately decreasing: sorting would move the big samples
        // into the tail window.
        for v in [110, 90, 20, 10] {
            s.record(v);
        }
        assert_eq!(s.percentile_us(50.0), 90); // sorted [10,20,90,110], rank 2
        assert!((s.mean_from(2) - 15.0).abs() < 1e-9);
        assert_eq!(s.percentile_us(100.0), 110);
        assert!(
            (s.mean_from(2) - 15.0).abs() < 1e-9,
            "window corrupted by percentile"
        );
        assert!((s.mean_from(0) - 57.5).abs() < 1e-9);
    }

    #[test]
    fn bytes_copied_delegates_to_registry() {
        let before = data_plane_stats().bytes_copied;
        record_copied_bytes(123);
        let after = data_plane_stats().bytes_copied;
        assert_eq!(after - before, 123);
        let reg = massbft_telemetry::registry::counter("core.data_plane.bytes_copied");
        assert_eq!(reg.get(), after);
    }

    #[test]
    fn throughput_math() {
        let t = Throughput {
            txns: 50_000,
            window_us: 1_000_000,
        };
        assert!((t.tps() - 50_000.0).abs() < 1e-9);
        assert!((t.ktps() - 50.0).abs() < 1e-9);
        let zero = Throughput::default();
        assert_eq!(zero.tps(), 0.0);
    }
}

//! Pluggable adversary strategies and scripted fault schedules.
//!
//! The paper's threat model (§III) allows up to `f` Byzantine nodes per
//! group — including the PBFT primary. This module turns the single
//! hardcoded "tamper chunks" misbehavior into a strategy engine:
//! each node can be assigned a [`Strategy`] with an activation window
//! ([`AdversarySpec`]), and whole scenarios — crashes, recoveries,
//! partitions, link faults — become data via [`FaultSchedule`], applied
//! deterministically by `Cluster` at scripted virtual times.
//!
//! Strategies are interpreted by the protocol layer (`protocol.rs`):
//!
//! - [`Strategy::TamperChunks`] — the sender substitutes garbage for its
//!   erasure-coded chunk shares (the pre-existing Byzantine behavior;
//!   Merkle proofs + quorum certificates catch it, §V-B).
//! - [`Strategy::SilentPrimary`] — the node suppresses every outbound
//!   PBFT message while active. As primary it mutes the group's local
//!   consensus; the view-change driver must evict it.
//! - [`Strategy::EquivocatingPrimary`] — as primary, sends conflicting
//!   pre-prepares (same view/seq, different payloads) to disjoint halves
//!   of the group. Neither branch can reach a `2f+1` quorum, so the
//!   group stalls until a view change re-proposes exactly one branch.
//! - [`Strategy::WithholdChunks`] — the node certifies entries normally
//!   but never sends its WAN chunk/copy shares (tests erasure-coding
//!   redundancy and pull repair).
//! - [`Strategy::DelayAll`] — every message the node sends is delayed by
//!   a fixed amount (gray failure / overloaded NIC). Implemented at the
//!   simulator level via `Simulation::set_send_delay`, scheduled by the
//!   cluster when the spec activates and deactivates.

use massbft_sim_net::{LinkFault, NodeId, Time};

/// One adversarial behavior a node can exhibit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Substitute garbage for outgoing erasure-coded chunks (default
    /// Byzantine behavior; detected by Merkle proof verification).
    TamperChunks,
    /// Suppress all outbound PBFT traffic (mute primary / crash-like
    /// fault that is not detectable as a process crash).
    SilentPrimary,
    /// Send conflicting pre-prepares to disjoint replica halves.
    EquivocatingPrimary,
    /// Never send WAN chunk/copy shares for certified entries.
    WithholdChunks,
    /// Delay every outbound message by a fixed amount.
    DelayAll {
        /// Added latency per message, microseconds.
        delay_us: Time,
    },
}

/// A [`Strategy`] assigned to one node, with an activation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversarySpec {
    /// The misbehaving node.
    pub node: NodeId,
    /// What it does while active.
    pub strategy: Strategy,
    /// Virtual time the behavior starts.
    pub from_us: Time,
    /// Virtual time the behavior stops (`None` = forever).
    pub until_us: Option<Time>,
}

impl AdversarySpec {
    /// A spec active from time zero, forever.
    pub fn new(node: NodeId, strategy: Strategy) -> Self {
        AdversarySpec {
            node,
            strategy,
            from_us: 0,
            until_us: None,
        }
    }

    /// Sets the activation time.
    pub fn from_us(mut self, t: Time) -> Self {
        self.from_us = t;
        self
    }

    /// Sets the deactivation time.
    pub fn until_us(mut self, t: Time) -> Self {
        self.until_us = Some(t);
        self
    }

    /// Whether the behavior is active at `now`.
    pub fn active_at(&self, now: Time) -> bool {
        now >= self.from_us && self.until_us.is_none_or(|t| now < t)
    }
}

/// One scripted fault action, applied to the simulation at a scheduled
/// virtual time. Node/group crash–recover, partitions at both
/// granularities, link-level fault models, and adversarial send delays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Crash a node (stops sending/receiving; state retained).
    Crash(NodeId),
    /// Recover a crashed node.
    Recover(NodeId),
    /// Crash every node of a group (data-center outage, §VI-E).
    CrashGroup(u32),
    /// Recover every node of a group.
    RecoverGroup(u32),
    /// Sever all WAN links between two groups.
    PartitionGroups(u32, u32),
    /// Heal a group partition.
    HealGroups(u32, u32),
    /// Sever the link between two individual nodes (WAN or LAN).
    PartitionNodes(NodeId, NodeId),
    /// Heal a node-pair partition.
    HealNodes(NodeId, NodeId),
    /// Set (`Some`) or clear (`None`) the fault model on a directed link.
    SetLinkFault(NodeId, NodeId, Option<LinkFault>),
    /// Set (`Some`) or clear (`None`) the WAN-wide default fault model.
    SetWanFault(Option<LinkFault>),
    /// Add a fixed delay to everything a node sends (0 clears it).
    SetSendDelay(NodeId, Time),
}

/// A [`FaultEvent`] with its activation instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// Virtual time the event fires.
    pub at: Time,
    /// What happens.
    pub event: FaultEvent,
}

/// A deterministic script of fault events, kept sorted by time (stable
/// for equal times, so same-instant events apply in insertion order).
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: adds `event` at `at` and returns the schedule.
    pub fn at(mut self, at: Time, event: FaultEvent) -> Self {
        self.push(at, event);
        self
    }

    /// Adds `event` at `at`, keeping the script sorted (stable).
    pub fn push(&mut self, at: Time, event: FaultEvent) {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, ScheduledFault { at, event });
    }

    /// The full script, sorted by time.
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_activation_window() {
        let spec = AdversarySpec::new(NodeId::new(1, 0), Strategy::SilentPrimary)
            .from_us(100)
            .until_us(200);
        assert!(!spec.active_at(99));
        assert!(spec.active_at(100));
        assert!(spec.active_at(199));
        assert!(!spec.active_at(200));
        let forever = AdversarySpec::new(NodeId::new(0, 1), Strategy::TamperChunks);
        assert!(forever.active_at(0));
        assert!(forever.active_at(u64::MAX));
    }

    #[test]
    fn schedule_sorts_stably() {
        let s = FaultSchedule::new()
            .at(50, FaultEvent::Crash(NodeId::new(0, 0)))
            .at(10, FaultEvent::PartitionGroups(0, 1))
            .at(50, FaultEvent::Recover(NodeId::new(0, 0)))
            .at(20, FaultEvent::HealGroups(0, 1));
        let ats: Vec<Time> = s.events().iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![10, 20, 50, 50]);
        // Same-instant events keep insertion order: Crash before Recover.
        assert!(matches!(s.events()[2].event, FaultEvent::Crash(_)));
        assert!(matches!(s.events()[3].event, FaultEvent::Recover(_)));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }
}

//! Transfer-plan generation — Algorithm 1 of the paper.
//!
//! For a sender group of `n1` nodes and a receiver group of `n2` nodes, the
//! entry is cut into `n_total = lcm(n1, n2)` chunks so each sender ships
//! exactly `n_total / n1` chunks and each receiver takes exactly
//! `n_total / n2` — every chunk crosses the WAN once. The worst case loses
//! `nc1·f1 + nc2·f2` chunks (faulty senders' chunks and faulty receivers'
//! chunks, disjoint), so exactly that many parity chunks are provisioned
//! and `n_data = n_total - n_parity` suffice to rebuild.

use massbft_crypto::cert::max_faulty;

/// One scheduled chunk transfer: chunk `chunk` goes from node `sender` in
/// the sender group to node `receiver` in the receiver group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Chunk id, `0..n_total`.
    pub chunk: u32,
    /// Sender node index within the sender group.
    pub sender: u32,
    /// Receiver node index within the receiver group.
    pub receiver: u32,
}

/// The complete transfer plan for one (sender group, receiver group) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferPlan {
    /// Total chunks (`lcm(n1, n2)`).
    pub n_total: usize,
    /// Data chunks needed to rebuild.
    pub n_data: usize,
    /// Parity chunks (worst-case loss bound).
    pub n_parity: usize,
    /// Chunks each sender ships.
    pub per_sender: usize,
    /// Chunks each receiver takes.
    pub per_receiver: usize,
    /// All transfers, ordered by chunk id.
    pub transfers: Vec<Transfer>,
}

/// Errors in plan generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// A group was empty.
    EmptyGroup,
    /// The worst-case loss bound leaves no data chunks (`n_parity ≥
    /// n_total`); the pair of group sizes cannot be served by this scheme.
    NoDataChunks,
    /// `lcm(n1, n2)` exceeds the GF(2^8) erasure-coding limit of 256.
    TooManyChunks(usize),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EmptyGroup => write!(f, "groups must be nonempty"),
            PlanError::NoDataChunks => {
                write!(f, "worst-case chunk loss leaves no data chunks")
            }
            PlanError::TooManyChunks(n) => {
                write!(f, "lcm of group sizes is {n} > 256 chunk limit")
            }
        }
    }
}

impl std::error::Error for PlanError {}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple.
pub fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

impl TransferPlan {
    /// Generates the plan for `n1` senders and `n2` receivers
    /// (Algorithm 1, lines 1–6 plus the full tuple list).
    ///
    /// When `lcm(n1, n2)` exceeds the 256-chunk GF(2^8) limit (the paper
    /// hit the same wall and cites the partitioned-sending generalization,
    /// §IV-A), this falls back to [`TransferPlan::generate_balanced`],
    /// which relaxes "every receiver takes exactly the same number of
    /// chunks" to "receivers differ by at most one chunk".
    pub fn generate(n1: usize, n2: usize) -> Result<TransferPlan, PlanError> {
        if n1 == 0 || n2 == 0 {
            return Err(PlanError::EmptyGroup);
        }
        let n_total = lcm(n1, n2);
        if n_total > 256 {
            return Self::generate_balanced(n1, n2);
        }
        let nc1 = n_total / n1; // chunks per sender
        let nc2 = n_total / n2; // chunks per receiver
        let f1 = max_faulty(n1);
        let f2 = max_faulty(n2);
        let n_parity = nc1 * f1 + nc2 * f2;
        if n_parity >= n_total {
            return Err(PlanError::NoDataChunks);
        }
        let n_data = n_total - n_parity;
        // Chunk c is shipped by sender c / nc1 and taken by receiver c / nc2
        // (Algorithm 1 lines 7–14, both directions collapse to this).
        let transfers = (0..n_total)
            .map(|c| Transfer {
                chunk: c as u32,
                sender: (c / nc1) as u32,
                receiver: (c / nc2) as u32,
            })
            .collect();
        Ok(TransferPlan {
            n_total,
            n_data,
            n_parity,
            per_sender: nc1,
            per_receiver: nc2,
            transfers,
        })
    }

    /// Balanced generalization of Algorithm 1 for group-size pairs whose
    /// LCM exceeds the 256-chunk erasure-coding limit.
    ///
    /// Uses `n_total = n1 · ⌈n2 / n1⌉` (the smallest multiple of `n1`
    /// covering the receivers, ≤ `2 · max(n1, n2)` and thus well under
    /// 256 for all supported group sizes): every sender still ships
    /// exactly `n_total / n1` chunks; receivers take `⌊n_total / n2⌋` or
    /// one more. The worst-case loss bound charges faulty receivers at
    /// the *ceiling* count, so the parity budget remains safe.
    pub fn generate_balanced(n1: usize, n2: usize) -> Result<TransferPlan, PlanError> {
        if n1 == 0 || n2 == 0 {
            return Err(PlanError::EmptyGroup);
        }
        let n_total = n1 * n2.div_ceil(n1);
        if n_total > 256 {
            return Err(PlanError::TooManyChunks(n_total));
        }
        let nc1 = n_total / n1;
        let per_receiver_ceil = n_total.div_ceil(n2);
        let f1 = max_faulty(n1);
        let f2 = max_faulty(n2);
        let n_parity = nc1 * f1 + per_receiver_ceil * f2;
        if n_parity >= n_total {
            return Err(PlanError::NoDataChunks);
        }
        let n_data = n_total - n_parity;
        // Senders take contiguous chunk ranges; receivers round-robin so
        // per-receiver counts differ by at most one.
        let transfers = (0..n_total)
            .map(|c| Transfer {
                chunk: c as u32,
                sender: (c / nc1) as u32,
                receiver: (c % n2) as u32,
            })
            .collect();
        Ok(TransferPlan {
            n_total,
            n_data,
            n_parity,
            per_sender: nc1,
            per_receiver: per_receiver_ceil,
            transfers,
        })
    }

    /// The chunks node `i` of the sender group must ship, with receivers.
    pub fn outgoing_of(&self, sender: u32) -> impl Iterator<Item = Transfer> + '_ {
        self.transfers
            .iter()
            .copied()
            .filter(move |t| t.sender == sender)
    }

    /// The chunks node `j` of the receiver group takes, with senders.
    pub fn incoming_of(&self, receiver: u32) -> impl Iterator<Item = Transfer> + '_ {
        self.transfers
            .iter()
            .copied()
            .filter(move |t| t.receiver == receiver)
    }

    /// WAN bytes amplification versus shipping the raw entry once:
    /// `n_total / n_data` (paper: ≈2.15 for the 4→7 case study).
    pub fn amplification(&self) -> f64 {
        self.n_total as f64 / self.n_data as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_case_study_4_to_7() {
        // Fig. 5b: n_total = 28, per-sender 7, per-receiver 4,
        // parity = 1*7 + 2*4 = 15, data = 13, amplification ≈ 2.15.
        let p = TransferPlan::generate(4, 7).unwrap();
        assert_eq!(p.n_total, 28);
        assert_eq!(p.per_sender, 7);
        assert_eq!(p.per_receiver, 4);
        assert_eq!(p.n_parity, 15);
        assert_eq!(p.n_data, 13);
        assert!((p.amplification() - 2.1538).abs() < 1e-3);
    }

    #[test]
    fn equal_groups_ship_one_chunk_each() {
        let p = TransferPlan::generate(7, 7).unwrap();
        assert_eq!(p.n_total, 7);
        assert_eq!(p.per_sender, 1);
        assert_eq!(p.per_receiver, 1);
        assert_eq!(p.n_parity, 2 + 2);
        assert_eq!(p.n_data, 3);
    }

    #[test]
    fn every_chunk_sent_and_received_exactly_once() {
        for (n1, n2) in [(4, 7), (7, 4), (7, 7), (4, 40), (13, 9), (1, 5)] {
            let Ok(p) = TransferPlan::generate(n1, n2) else {
                continue;
            };
            let mut seen = vec![false; p.n_total];
            for t in &p.transfers {
                assert!(!seen[t.chunk as usize], "chunk {} duplicated", t.chunk);
                seen[t.chunk as usize] = true;
                assert!((t.sender as usize) < n1);
                assert!((t.receiver as usize) < n2);
            }
            assert!(seen.iter().all(|&s| s), "({n1},{n2})");
        }
    }

    #[test]
    fn load_is_balanced() {
        for (n1, n2) in [(4, 7), (7, 7), (3, 12), (8, 40)] {
            let p = TransferPlan::generate(n1, n2).unwrap();
            for s in 0..n1 as u32 {
                assert_eq!(p.outgoing_of(s).count(), p.per_sender, "sender {s}");
            }
            for r in 0..n2 as u32 {
                assert_eq!(p.incoming_of(r).count(), p.per_receiver, "receiver {r}");
            }
        }
    }

    #[test]
    fn worst_case_loss_still_leaves_n_data_chunks() {
        // Remove all chunks sent by f1 senders and all received by f2
        // receivers (worst case, disjoint): at least n_data must remain.
        for (n1, n2) in [(4, 7), (7, 7), (10, 15), (4, 4)] {
            let p = TransferPlan::generate(n1, n2).unwrap();
            let f1 = max_faulty(n1);
            let f2 = max_faulty(n2);
            // Choose faulty senders and receivers maximizing disjoint loss:
            // senders 0..f1 and receivers whose chunks don't overlap them.
            let mut lost = vec![false; p.n_total];
            for t in &p.transfers {
                if (t.sender as usize) < f1 {
                    lost[t.chunk as usize] = true;
                }
            }
            // Greedily pick f2 receivers with most un-lost chunks.
            let mut gain: Vec<(usize, u32)> = (0..n2 as u32)
                .map(|r| {
                    (
                        p.incoming_of(r).filter(|t| !lost[t.chunk as usize]).count(),
                        r,
                    )
                })
                .collect();
            gain.sort_unstable_by(|a, b| b.cmp(a));
            for &(_, r) in gain.iter().take(f2) {
                for t in p.incoming_of(r) {
                    lost[t.chunk as usize] = true;
                }
            }
            let survived = lost.iter().filter(|&&l| !l).count();
            assert!(
                survived >= p.n_data,
                "({n1},{n2}): survived {survived} < n_data {}",
                p.n_data
            );
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(
            TransferPlan::generate(0, 5).unwrap_err(),
            PlanError::EmptyGroup
        );
        assert_eq!(
            TransferPlan::generate(5, 0).unwrap_err(),
            PlanError::EmptyGroup
        );
        assert_eq!(
            TransferPlan::generate_balanced(0, 5).unwrap_err(),
            PlanError::EmptyGroup
        );
        // 200 senders covering 201 receivers needs 400 chunks even
        // balanced: past GF(2^8).
        assert!(matches!(
            TransferPlan::generate_balanced(200, 201),
            Err(PlanError::TooManyChunks(400))
        ));
    }

    #[test]
    fn balanced_fallback_handles_large_lcm() {
        // lcm(39, 40) = 1560 > 256: Algorithm 1 proper cannot encode this
        // pair; the balanced plan covers it with 78 chunks.
        let p = TransferPlan::generate(39, 40).unwrap();
        assert_eq!(p.n_total, 78);
        assert_eq!(p.per_sender, 2);
        assert_eq!(p.per_receiver, 2); // ceiling; some receivers take 1
                                       // Coverage invariants still hold.
        let mut seen = vec![false; p.n_total];
        for t in &p.transfers {
            assert!(!seen[t.chunk as usize]);
            seen[t.chunk as usize] = true;
            assert!((t.sender as usize) < 39);
            assert!((t.receiver as usize) < 40);
        }
        assert!(seen.iter().all(|&s| s));
        // Every sender ships exactly per_sender chunks.
        for s in 0..39u32 {
            assert_eq!(p.outgoing_of(s).count(), 2);
        }
        // Receivers take 1 or 2 chunks.
        for r in 0..40u32 {
            let c = p.incoming_of(r).count();
            assert!((1..=2).contains(&c), "receiver {r} takes {c}");
        }
    }

    #[test]
    fn balanced_plan_survives_worst_case_loss() {
        for (n1, n2) in [(39usize, 40usize), (37, 11), (13, 40), (40, 39)] {
            let p = TransferPlan::generate_balanced(n1, n2).unwrap();
            let f1 = max_faulty(n1);
            let f2 = max_faulty(n2);
            // Adversary picks the f1 senders and f2 receivers covering
            // the most chunks.
            let mut lost = vec![false; p.n_total];
            let mut sender_load: Vec<(usize, u32)> = (0..n1 as u32)
                .map(|s| (p.outgoing_of(s).count(), s))
                .collect();
            sender_load.sort_unstable_by(|a, b| b.cmp(a));
            for &(_, s) in sender_load.iter().take(f1) {
                for t in p.outgoing_of(s) {
                    lost[t.chunk as usize] = true;
                }
            }
            let mut recv_gain: Vec<(usize, u32)> = (0..n2 as u32)
                .map(|r| {
                    (
                        p.incoming_of(r).filter(|t| !lost[t.chunk as usize]).count(),
                        r,
                    )
                })
                .collect();
            recv_gain.sort_unstable_by(|a, b| b.cmp(a));
            for &(_, r) in recv_gain.iter().take(f2) {
                for t in p.incoming_of(r) {
                    lost[t.chunk as usize] = true;
                }
            }
            let survived = lost.iter().filter(|&&l| !l).count();
            assert!(
                survived >= p.n_data,
                "({n1},{n2}): survived {survived} < n_data {}",
                p.n_data
            );
        }
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 7), 28);
        assert_eq!(lcm(6, 4), 12);
        assert_eq!(lcm(5, 5), 5);
        assert_eq!(lcm(1, 9), 9);
    }

    #[test]
    fn amplification_decreases_with_group_size() {
        // Bigger equal-size groups carry relatively less parity:
        // n=4 → 4/(4-2)=2.0 ; n=7 → 7/3≈2.33 ; n=10 → 10/(10-6)=2.5?
        // Actually parity = 2f per equal pair; check the trend holds for
        // the paper's ratio target at n=40.
        let p40 = TransferPlan::generate(40, 40).unwrap();
        assert_eq!(p40.n_total, 40);
        assert_eq!(p40.n_parity, 26);
        assert_eq!(p40.n_data, 14);
        // vs Baseline: leader ships f+1 = 14 copies. EBR ships ~2.86.
        assert!(p40.amplification() < 3.0);
    }
}

//! Round-based synchronous ordering — the strategy of GeoBFT, Canopus and
//! Baseline (paper §II-A): in each round every group proposes exactly one
//! entry; a node executes round `r` only after receiving *all* groups'
//! round-`r` entries, ordered by group id.
//!
//! This is the foil for MassBFT's asynchronous ordering: a slow group
//! stalls everyone (Fig. 2), which the Fig. 12 experiment quantifies.

use crate::entry::EntryId;
use std::collections::BTreeSet;

/// Round-based ordering engine (one per node).
#[derive(Debug)]
pub struct RoundOrdering {
    ng: usize,
    /// Highest contiguous seq received per group.
    received: Vec<u64>,
    /// Out-of-order receipts per group.
    early: Vec<BTreeSet<u64>>,
    /// The round currently being released (1-based).
    round: u64,
    /// Position within the current round (next gid to release).
    cursor: usize,
}

impl RoundOrdering {
    /// Creates an engine for `ng` groups.
    pub fn new(ng: usize) -> Self {
        RoundOrdering {
            ng,
            received: vec![0; ng],
            early: vec![BTreeSet::new(); ng],
            round: 1,
            cursor: 0,
        }
    }

    /// Current round (entries `e_{*, round}`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Records that entry `id` has completed replication at this node.
    pub fn on_entry(&mut self, id: EntryId) {
        let g = id.gid as usize;
        debug_assert!(g < self.ng);
        if id.seq <= self.received[g] {
            return; // duplicate
        }
        self.early[g].insert(id.seq);
        while self.early[g].remove(&(self.received[g] + 1)) {
            self.received[g] += 1;
        }
    }

    /// Pops the next entry in round order, if the round is complete up to
    /// it: entries release in `(round, gid)` lexicographic order, and
    /// entry `(g, r)` releases only when every group has delivered its
    /// round-`r` entry.
    pub fn pop_ready(&mut self) -> Option<EntryId> {
        // The whole round must be present before any of it executes.
        if self.cursor == 0 && !(0..self.ng).all(|g| self.received[g] >= self.round) {
            return None;
        }
        let id = EntryId::new(self.cursor as u32, self.round);
        self.cursor += 1;
        if self.cursor == self.ng {
            self.cursor = 0;
            self.round += 1;
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(r: &mut RoundOrdering) -> Vec<EntryId> {
        let mut out = Vec::new();
        while let Some(e) = r.pop_ready() {
            out.push(e);
        }
        out
    }

    #[test]
    fn releases_nothing_until_round_complete() {
        let mut r = RoundOrdering::new(3);
        r.on_entry(EntryId::new(0, 1));
        r.on_entry(EntryId::new(2, 1));
        assert!(drain(&mut r).is_empty());
        r.on_entry(EntryId::new(1, 1));
        assert_eq!(
            drain(&mut r),
            vec![EntryId::new(0, 1), EntryId::new(1, 1), EntryId::new(2, 1)]
        );
    }

    #[test]
    fn rounds_release_in_order_by_gid() {
        let mut r = RoundOrdering::new(2);
        // Receive round 2 before round 1 completes.
        r.on_entry(EntryId::new(0, 1));
        r.on_entry(EntryId::new(0, 2));
        r.on_entry(EntryId::new(1, 2));
        assert!(drain(&mut r).is_empty());
        r.on_entry(EntryId::new(1, 1));
        assert_eq!(
            drain(&mut r),
            vec![
                EntryId::new(0, 1),
                EntryId::new(1, 1),
                EntryId::new(0, 2),
                EntryId::new(1, 2),
            ]
        );
    }

    #[test]
    fn slow_group_stalls_fast_group() {
        // The Fig. 2 pathology: group 1 proposes twice as fast; its extra
        // entries sit unexecuted until group 0 catches up.
        let mut r = RoundOrdering::new(2);
        for seq in 1..=10 {
            r.on_entry(EntryId::new(1, seq));
        }
        assert!(drain(&mut r).is_empty());
        r.on_entry(EntryId::new(0, 1));
        let out = drain(&mut r);
        assert_eq!(out.len(), 2); // only round 1 released
        assert_eq!(r.round(), 2);
    }

    #[test]
    fn duplicates_ignored() {
        let mut r = RoundOrdering::new(1);
        r.on_entry(EntryId::new(0, 1));
        r.on_entry(EntryId::new(0, 1));
        assert_eq!(drain(&mut r), vec![EntryId::new(0, 1)]);
        assert_eq!(r.round(), 2);
    }

    #[test]
    fn out_of_order_receipt_within_group() {
        let mut r = RoundOrdering::new(1);
        r.on_entry(EntryId::new(0, 3));
        r.on_entry(EntryId::new(0, 2));
        assert!(drain(&mut r).is_empty());
        r.on_entry(EntryId::new(0, 1));
        assert_eq!(drain(&mut r).len(), 3);
    }
}

//! The experiment harness: build a geo-cluster, drive a workload, inject
//! faults, and measure — the programmatic equivalent of the paper's Aliyun
//! deployments (§VI).
//!
//! A [`Cluster`] owns a [`Simulation`] of [`Node`] actors over a
//! [`Topology`]. Throughput and latency are measured in virtual time, so
//! every number is deterministic given the seed.

use crate::{
    adversary::{AdversarySpec, FaultEvent, FaultSchedule, ScheduledFault, Strategy},
    protocol::{Node, Protocol, ProtocolParams},
    stats::Throughput,
};
use massbft_crypto::KeyRegistry;
use massbft_sim_net::{NodeId, Simulation, Time, Topology, TopologyBuilder, SECOND};
use massbft_workloads::WorkloadKind;

/// Which latency/RTT preset to build the topology from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Zhangjiakou / Chengdu / Hangzhou (+ 4 more), RTT 26.7–43.4 ms.
    Nationwide,
    /// Hong Kong / London / Silicon Valley, RTT 156–206 ms.
    Worldwide,
}

/// Everything needed to stand up one experiment.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Protocol parameters (protocol, batching, CPU costs, faults…).
    pub params: ProtocolParams,
    /// Latency preset.
    pub region: Region,
    /// Default per-node WAN uplink, Mbps (paper default 20).
    pub wan_mbps: u64,
    /// Per-node WAN overrides, Mbps (Fig. 14).
    pub node_wan_mbps: Vec<(NodeId, u64)>,
    /// Scripted fault events, applied at their virtual times by
    /// [`Cluster::run_until`].
    pub faults: FaultSchedule,
}

impl ClusterConfig {
    /// Nationwide cluster with the given group sizes.
    pub fn nationwide(group_sizes: &[usize], protocol: Protocol) -> Self {
        ClusterConfig {
            params: ProtocolParams::new(protocol, group_sizes),
            region: Region::Nationwide,
            wan_mbps: 20,
            node_wan_mbps: Vec::new(),
            faults: FaultSchedule::new(),
        }
    }

    /// Worldwide cluster with the given group sizes.
    pub fn worldwide(group_sizes: &[usize], protocol: Protocol) -> Self {
        ClusterConfig {
            region: Region::Worldwide,
            ..Self::nationwide(group_sizes, protocol)
        }
    }

    /// Sets the workload.
    pub fn workload(mut self, w: WorkloadKind) -> Self {
        self.params.workload = w;
        self
    }

    /// Sets the RNG/key seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Sets the per-group client arrival rate (transactions/second).
    pub fn arrival_tps(mut self, tps: f64) -> Self {
        self.params.arrival_tps = tps;
        self
    }

    /// Sets the maximum batch size.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.params.max_batch = n;
        self
    }

    /// Sets the pipeline window (in-flight entries per group).
    pub fn pipeline_window(mut self, n: usize) -> Self {
        self.params.pipeline_window = n;
        self
    }

    /// Sets the Aria worker lanes per node (1 = serial). Any width
    /// produces bit-identical runs; see `tests/determinism.rs`.
    pub fn exec_workers(mut self, n: usize) -> Self {
        self.params.exec_workers = n;
        self
    }

    /// Re-queues conflict-aborted transactions at the front of the next
    /// entry's batch (off by default).
    pub fn retry_aborts(mut self, on: bool) -> Self {
        self.params.retry_aborts = on;
        self
    }

    /// Forces Aria's deterministic same-batch abort fallback on or off,
    /// overriding the `MASSBFT_EXEC_FALLBACK` environment default.
    pub fn exec_fallback(mut self, on: bool) -> Self {
        self.params.exec_fallback = on;
        self
    }

    /// Sets the default WAN uplink bandwidth in Mbps.
    pub fn wan_mbps(mut self, mbps: u64) -> Self {
        self.wan_mbps = mbps;
        self
    }

    /// Overrides one node's WAN bandwidth (Fig. 14).
    pub fn node_wan_mbps(mut self, id: NodeId, mbps: u64) -> Self {
        self.node_wan_mbps.push((id, mbps));
        self
    }

    /// Sets the per-transaction signature verification CPU cost.
    pub fn sig_verify_us(mut self, us: Time) -> Self {
        self.params.sig_verify_us = us;
        self
    }

    /// Marks nodes Byzantine from `from_us` on (chunk tampering, §VI-E).
    /// Shorthand for assigning each a [`Strategy::TamperChunks`] spec.
    pub fn byzantine(mut self, nodes: &[NodeId], from_us: Time) -> Self {
        for &n in nodes {
            self.params
                .adversaries
                .push(AdversarySpec::new(n, Strategy::TamperChunks).from_us(from_us));
        }
        self
    }

    /// Assigns one adversary strategy spec (activation window included).
    pub fn adversary(mut self, spec: AdversarySpec) -> Self {
        self.params.adversaries.push(spec);
        self
    }

    /// Schedules one fault event at a virtual time.
    pub fn fault_at(mut self, at: Time, event: FaultEvent) -> Self {
        self.faults.push(at, event);
        self
    }

    /// Replaces the whole fault schedule.
    pub fn fault_schedule(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the ISS epoch length.
    pub fn epoch_us(mut self, us: Time) -> Self {
        self.params.epoch_us = us;
        self
    }

    fn build_topology(&self) -> Topology {
        let sizes = &self.params.group_sizes;
        let mut b = match self.region {
            Region::Nationwide => TopologyBuilder::nationwide(sizes),
            Region::Worldwide => TopologyBuilder::worldwide(sizes),
        };
        b = b.wan_bandwidth_mbps(self.wan_mbps);
        for &(id, mbps) in &self.node_wan_mbps {
            b = b.node_bandwidth_mbps(id, mbps);
        }
        b.build()
    }
}

/// What one measurement produced.
#[derive(Debug, Clone)]
pub struct Report {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Workload driven.
    pub workload: WorkloadKind,
    /// Global committed-transaction throughput over the window, measured
    /// at the observer node.
    pub throughput: Throughput,
    /// Per-origin-group throughput (Fig. 12).
    pub per_group_tps: Vec<f64>,
    /// Mean end-to-end entry latency (batch creation → execution at the
    /// origin representative), milliseconds.
    pub mean_latency_ms: f64,
    /// p99 latency, milliseconds.
    pub p99_latency_ms: f64,
    /// Total WAN bytes sent during the window.
    pub wan_bytes: u64,
    /// WAN bytes of the heaviest single sender (leader-bottleneck probe).
    pub max_node_wan_bytes: u64,
    /// Total LAN bytes during the window.
    pub lan_bytes: u64,
    /// Whether all nodes' execution logs are prefix-consistent and their
    /// stores agree at equal prefixes.
    pub all_nodes_consistent: bool,
    /// Entries executed at the observer.
    pub entries_executed: u64,
}

/// A running cluster experiment.
pub struct Cluster {
    sim: Simulation<Node>,
    cfg: ClusterConfig,
    /// Scripted fault events sorted by time, with the apply cursor.
    schedule: Vec<ScheduledFault>,
    next_fault: usize,
    /// Snapshot of executed txns at the start of the current window.
    window_start_txns: u64,
    window_start_time: Time,
}

impl Cluster {
    /// Builds the cluster (nodes start idle; time starts at 0).
    pub fn new(cfg: ClusterConfig) -> Self {
        let topology = cfg.build_topology();
        let registry = KeyRegistry::generate(cfg.params.seed, &cfg.params.group_sizes);
        let params = cfg.params.clone();
        let mut sim = Simulation::new(topology, move |id| {
            Node::new(id, params.clone(), registry.clone())
        });
        sim.set_fault_seed(cfg.params.seed);
        // `DelayAll` is a simulator-level behavior: translate each spec's
        // activation window into scheduled send-delay events.
        let mut schedule = cfg.faults.clone();
        for spec in &cfg.params.adversaries {
            if let Strategy::DelayAll { delay_us } = spec.strategy {
                schedule.push(spec.from_us, FaultEvent::SetSendDelay(spec.node, delay_us));
                if let Some(until) = spec.until_us {
                    schedule.push(until, FaultEvent::SetSendDelay(spec.node, 0));
                }
            }
        }
        Cluster {
            sim,
            cfg,
            schedule: schedule.events().to_vec(),
            next_fault: 0,
            window_start_txns: 0,
            window_start_time: 0,
        }
    }

    /// Applies one scripted fault to the simulation.
    fn apply_fault(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Crash(n) => self.sim.crash(n),
            FaultEvent::Recover(n) => self.sim.recover(n),
            FaultEvent::CrashGroup(g) => self.sim.crash_group(g),
            FaultEvent::RecoverGroup(g) => {
                for i in 0..self.cfg.params.group_sizes[g as usize] as u32 {
                    self.sim.recover(NodeId::new(g, i));
                }
            }
            FaultEvent::PartitionGroups(a, b) => self.sim.partition(a, b),
            FaultEvent::HealGroups(a, b) => self.sim.heal(a, b),
            FaultEvent::PartitionNodes(a, b) => self.sim.partition_nodes(a, b),
            FaultEvent::HealNodes(a, b) => self.sim.heal_nodes(a, b),
            FaultEvent::SetLinkFault(src, dst, f) => self.sim.set_link_fault(src, dst, f),
            FaultEvent::SetWanFault(f) => self.sim.set_wan_fault(f),
            FaultEvent::SetSendDelay(n, d) => self.sim.set_send_delay(n, d),
        }
    }

    /// The observer node used for throughput accounting: a non-
    /// representative member of group 0 when one exists (representatives
    /// also batch and lead, but execution is identical everywhere).
    pub fn observer(&self) -> NodeId {
        if self.cfg.params.group_sizes[0] > 1 {
            NodeId::new(0, 1)
        } else {
            NodeId::new(0, 0)
        }
    }

    /// Direct access to the simulation (fault injection, metrics).
    pub fn sim_mut(&mut self) -> &mut Simulation<Node> {
        &mut self.sim
    }

    /// Reference to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        self.sim.actor(id)
    }

    /// Advances virtual time to `t` (absolute), applying every scripted
    /// fault whose instant falls inside the interval, in schedule order.
    pub fn run_until(&mut self, t: Time) {
        while self.next_fault < self.schedule.len() && self.schedule[self.next_fault].at <= t {
            let ScheduledFault { at, event } = self.schedule[self.next_fault];
            self.next_fault += 1;
            self.sim.run_until(at.max(self.sim.now()));
            self.apply_fault(event);
        }
        self.sim.run_until(t);
    }

    /// Crashes every node of group `g` (paper §VI-E).
    pub fn crash_group(&mut self, g: u32) {
        self.sim.crash_group(g);
    }

    /// Opens a measurement window at the current instant: traffic counters
    /// reset, the observer's executed-transaction count is snapshotted.
    pub fn open_window(&mut self) {
        self.sim.metrics_mut().reset_traffic();
        self.window_start_txns = self.node(self.observer()).executed_txns();
        self.window_start_time = self.sim.now();
    }

    /// Closes the window and produces a [`Report`].
    pub fn close_window(&mut self) -> Report {
        let now = self.sim.now();
        let window_us = now - self.window_start_time;
        let obs = self.observer();
        let txns = self.node(obs).executed_txns() - self.window_start_txns;
        let throughput = Throughput { txns, window_us };

        // Latency from every representative's samples (origin latency).
        let ng = self.cfg.params.ng();
        let mut all_lat: Vec<Time> = Vec::new();
        for g in 0..ng as u32 {
            let rep = self.cfg.params.leader_of(g);
            // Skip crashed reps (their samples froze).
            if self.sim.is_crashed(rep) {
                continue;
            }
            // Cheap clone of samples via percentile API is awkward; gather
            // through the public latency() accessor.
            let l = self.node(rep).latency();
            // mean over all samples so far — acceptable because windows in
            // the harness start after a warmup reset is not supported for
            // latency; experiments use fresh clusters per data point.
            if l.count() > 0 {
                all_lat.push(l.mean_us() as Time);
            }
        }
        let mean_latency_ms = if all_lat.is_empty() {
            0.0
        } else {
            all_lat.iter().sum::<u64>() as f64 / all_lat.len() as f64 / 1000.0
        };
        // p99 from group 0's representative (needs mutable access to
        // sort the sample reservoir).
        let mut p99 = 0u64;
        let obs_rep = self.cfg.params.leader_of(0);
        if !self.sim.is_crashed(obs_rep) {
            p99 = self
                .sim
                .actor_mut(obs_rep)
                .latency_mut()
                .percentile_us(99.0);
        }

        let metrics = self.sim.metrics();
        // Mirror the run's network totals into the telemetry registry so a
        // single snapshot carries them alongside the core.* / db.* series.
        metrics.publish();
        let wan_bytes = metrics.total_wan_bytes();
        let max_node_wan_bytes = metrics.max_wan_sender().map(|(_, b)| b).unwrap_or(0);
        let lan_bytes = metrics.total_lan_bytes();

        let per_group_tps: Vec<f64> = {
            let by_group = self.node(obs).executed_by_group();
            by_group
                .iter()
                .map(|&t| t as f64 * 1_000_000.0 / window_us.max(1) as f64)
                .collect()
        };

        Report {
            protocol: self.cfg.params.protocol,
            workload: self.cfg.params.workload,
            throughput,
            per_group_tps,
            mean_latency_ms,
            p99_latency_ms: p99 as f64 / 1000.0,
            wan_bytes,
            max_node_wan_bytes,
            lan_bytes,
            all_nodes_consistent: self.check_consistency(),
            entries_executed: self.node(obs).executed_entries(),
        }
    }

    /// Convenience: 1 s warmup, then measure for `secs` seconds.
    pub fn run_secs(&mut self, secs: u64) -> Report {
        self.run_until(SECOND);
        self.open_window();
        let end = self.sim.now() + secs * SECOND;
        self.run_until(end);
        self.close_window()
    }

    /// Prefix-consistency across every pair of nodes: one execution log
    /// must be a prefix of the other (Agreement, Theorem V.6).
    pub fn check_consistency(&self) -> bool {
        let logs: Vec<&[crate::entry::EntryId]> = self
            .sim
            .actors()
            .filter(|(id, _)| !self.sim.is_crashed(**id))
            .map(|(_, n)| n.exec_log())
            .collect();
        for i in 0..logs.len() {
            for j in (i + 1)..logs.len() {
                let (a, b) = (logs[i], logs[j]);
                let k = a.len().min(b.len());
                if a[..k] != b[..k] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(protocol: Protocol) -> ClusterConfig {
        ClusterConfig::nationwide(&[4, 4, 4], protocol)
            .workload(WorkloadKind::YcsbA)
            .seed(42)
            .arrival_tps(3000.0)
            .max_batch(60)
    }

    fn smoke(protocol: Protocol) -> Report {
        let mut c = Cluster::new(small(protocol));
        let r = c.run_secs(3);
        assert!(
            r.throughput.tps() > 100.0,
            "{}: no throughput ({:.1} tps)",
            protocol.name(),
            r.throughput.tps()
        );
        assert!(
            r.all_nodes_consistent,
            "{}: replicas diverged",
            protocol.name()
        );
        assert!(
            r.mean_latency_ms > 1.0,
            "{}: implausible latency",
            protocol.name()
        );
        r
    }

    #[test]
    fn massbft_smoke() {
        let r = smoke(Protocol::MassBft);
        assert!(r.wan_bytes > 0);
    }

    #[test]
    fn baseline_smoke() {
        smoke(Protocol::Baseline);
    }

    #[test]
    fn geobft_smoke() {
        smoke(Protocol::GeoBft);
    }

    #[test]
    fn steward_smoke() {
        smoke(Protocol::Steward);
    }

    #[test]
    fn iss_smoke() {
        smoke(Protocol::Iss);
    }

    #[test]
    fn br_smoke() {
        smoke(Protocol::BijectiveOnly);
    }

    #[test]
    fn ebr_smoke() {
        smoke(Protocol::EncodedBijective);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let mut c = Cluster::new(small(Protocol::MassBft));
            let r = c.run_secs(2);
            (r.throughput.txns, r.wan_bytes, r.entries_executed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn massbft_beats_baseline_under_saturation() {
        // The headline claim, in miniature: with saturating arrivals and
        // the paper's 20 Mbps uplinks, encoded bijective replication
        // commits far more than leader-based replication. 7-node groups,
        // as in the paper — at n=4 the erasure amplification (2.0×)
        // coincides with Baseline's f+1 = 2 copies and the gap narrows.
        let saturated = |p: Protocol| {
            let mut c = Cluster::new(
                ClusterConfig::nationwide(&[7, 7, 7], p)
                    .workload(WorkloadKind::YcsbA)
                    .seed(7)
                    .arrival_tps(50_000.0)
                    .max_batch(300),
            );
            c.run_secs(3).throughput.tps()
        };
        let mass = saturated(Protocol::MassBft);
        let base = saturated(Protocol::Baseline);
        assert!(
            mass > base * 2.0,
            "MassBFT {mass:.0} tps should dominate Baseline {base:.0} tps"
        );
    }

    #[test]
    fn massbft_flattens_wan_load_across_nodes() {
        let mut c = Cluster::new(small(Protocol::MassBft));
        let r = c.run_secs(2);
        // Bijective replication: the heaviest sender carries roughly
        // 1/n of the traffic of its group, not all of it.
        let total = r.wan_bytes as f64;
        let max = r.max_node_wan_bytes as f64;
        assert!(
            max < total * 0.25,
            "load skew too high: max {max} of {total}"
        );

        let mut c = Cluster::new(small(Protocol::Baseline));
        let r = c.run_secs(2);
        let total = r.wan_bytes as f64;
        let max = r.max_node_wan_bytes as f64;
        // Leader-based: one node per group carries nearly everything
        // (≥ ~1/3 of the whole cluster's WAN traffic).
        assert!(
            max > total * 0.25,
            "baseline leader not loaded: {max} of {total}"
        );
    }

    #[test]
    fn group_crash_then_takeover_keeps_massbft_alive() {
        let mut c = Cluster::new(small(Protocol::MassBft));
        c.run_until(2 * SECOND);
        let before = c.node(c.observer()).executed_txns();
        assert!(before > 0);
        // Kill group 2 (not the observer's group).
        c.crash_group(2);
        c.run_until(6 * SECOND);
        let after = c.node(c.observer()).executed_txns();
        assert!(
            after > before,
            "no progress after group crash: {before} → {after}"
        );
        assert!(c.check_consistency());
    }

    #[test]
    fn byzantine_chunk_tampering_does_not_stop_massbft() {
        // Two Byzantine nodes per 4-node group (f=1 exceeded? no — f=1
        // for n=4, so use ONE per group as the paper uses 2 of 7).
        let byz: Vec<NodeId> = (0..3).map(|g| NodeId::new(g, 3)).collect();
        let cfg = small(Protocol::MassBft).byzantine(&byz, SECOND);
        let mut c = Cluster::new(cfg);
        let r = c.run_secs(4);
        assert!(r.throughput.tps() > 100.0, "tampering halted progress");
        assert!(r.all_nodes_consistent);
    }
}

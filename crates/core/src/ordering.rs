//! Deterministic asynchronous ordering by vector timestamps —
//! Algorithm 2 of the paper (§V-D).
//!
//! Every entry `e_{i,n}` receives a vector timestamp (VTS) with one element
//! per group: `vts[i] = n` is implicit (the proposer's own clock), and each
//! other group `j` contributes `vts[j]` — the value of its local clock
//! `clk_j` when it received the entry — replicated through group `j`'s
//! Raft instance. Entries execute in lexicographic `(vts, seq, gid)` order
//! (Lemma V.4: a strict total order).
//!
//! The engine is *streaming*: timestamps arrive out of order across
//! instances (but in order within one instance), and the next entry to
//! execute is found by comparing only the per-group *heads* (Lemma V.5:
//! VTSs of one group's entries are monotone in `seq`). Elements not yet
//! received are *inferred* as lower bounds — legal because each group
//! stamps entries with a non-decreasing clock, so an element can only ever
//! resolve to a value ≥ the inferred bound. `Prec` (the paper's
//! `Prec(e1, e2)`) only declares an order when it holds for every possible
//! resolution of the inferred elements.
//!
//! The engine emits the execution order as a stream of [`EntryId`]s; the
//! caller supplies entry *content* separately (replication and ordering
//! are decoupled — that is the point of the protocol).

use crate::entry::EntryId;
use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

/// Process-wide count of ordering decisions (`core.ordering.entries_ordered`
/// in the telemetry registry; sums over every node hosted in the process).
fn ordered_counter() -> &'static massbft_telemetry::registry::Counter {
    static C: OnceLock<massbft_telemetry::registry::Counter> = OnceLock::new();
    C.get_or_init(|| massbft_telemetry::registry::counter("core.ordering.entries_ordered"))
}

/// Per-entry VTS state tracked by the engine.
#[derive(Debug, Clone)]
struct EntryState {
    id: EntryId,
    vts: Vec<u64>,
    set: Vec<bool>,
}

impl EntryState {
    fn new_head(id: EntryId, ng: usize) -> Self {
        let mut s = EntryState {
            id,
            vts: vec![0; ng],
            set: vec![false; ng],
        };
        // The proposer's element is deterministic: vts[gid] = seq.
        s.vts[id.gid as usize] = id.seq;
        s.set[id.gid as usize] = true;
        s
    }
}

/// The streaming ordering engine (one per node).
#[derive(Debug)]
pub struct OrderingEngine {
    ng: usize,
    /// `heads[i]`: the unexecuted entry of group `i` with smallest seq.
    heads: Vec<EntryState>,
    /// Stamps received for entries beyond their group's head:
    /// `(stamper, value)` per entry.
    future_stamps: HashMap<EntryId, Vec<(u32, u64)>>,
    /// Latest timestamp seen from each stamping group's instance
    /// (non-decreasing), used for lower-bound inference. Entry commits also
    /// advance this: committing `e_{i,n}` advances `clk_i` to `n`
    /// (paper §V-B, overlapped assignment).
    last_ts: Vec<u64>,
    /// Highest committed seq per group: an entry may only be *emitted*
    /// once its global replication committed (heads for entries that do
    /// not exist yet still participate in comparisons via inference).
    committed: Vec<u64>,
    /// Entries whose position in the total order is decided, in order.
    ready: VecDeque<EntryId>,
    /// Total entries ordered so far.
    ordered_count: u64,
}

impl OrderingEngine {
    /// Creates an engine for `ng` groups. Heads start at `e_{i,1}`.
    pub fn new(ng: usize) -> Self {
        let heads = (0..ng)
            .map(|g| EntryState::new_head(EntryId::new(g as u32, 1), ng))
            .collect();
        OrderingEngine {
            ng,
            heads,
            future_stamps: HashMap::new(),
            last_ts: vec![0; ng],
            committed: vec![0; ng],
            ready: VecDeque::new(),
            ordered_count: 0,
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.ng
    }

    /// Entries ordered so far.
    pub fn ordered_count(&self) -> u64 {
        self.ordered_count
    }

    /// The seq of the next unordered entry of group `g`.
    pub fn head_seq(&self, g: u32) -> u64 {
        self.heads[g as usize].id.seq
    }

    /// Diagnostic view of group `g`'s head: `(seq, vts, set, committed)`.
    pub fn head_state(&self, g: u32) -> (u64, Vec<u64>, Vec<bool>, bool) {
        let h = &self.heads[g as usize];
        (
            h.id.seq,
            h.vts.clone(),
            h.set.clone(),
            h.id.seq <= self.committed[g as usize],
        )
    }

    /// Records that entry `id` achieved global Raft consensus, unlocking
    /// its emission.
    ///
    /// Note: a commit does *not* feed the inference bounds. Although the
    /// proposer's clock advances to `seq` at this commit (paper §V-B), a
    /// stamp assigned *before* the commit with the older clock value may
    /// replicate *after* it in the same instance log; treating the commit
    /// as a clock observation would let two nodes resolve a tie
    /// differently. Only received stamps — which are non-decreasing in
    /// instance-log order — are safe inference sources (paper §V-D).
    pub fn on_entry_committed(&mut self, id: EntryId) {
        let g = id.gid as usize;
        debug_assert!(g < self.ng);
        if id.seq > self.committed[g] {
            self.committed[g] = id.seq;
        }
        self.drain();
    }

    /// Feeds one replicated timestamp: group `stamper`'s clock value `ts`
    /// assigned to entry `(gid, seq)`. Timestamps from one `stamper` must
    /// arrive in its Raft-instance log order (the engine tolerates
    /// duplicates and stale deliveries).
    ///
    /// Newly ordered entries surface via [`Self::pop_ready`].
    pub fn on_timestamp(&mut self, stamper: u32, target: EntryId, ts: u64) {
        let s = stamper as usize;
        debug_assert!(s < self.ng);

        let head_seq = self.heads[target.gid as usize].id.seq;
        if target.seq == head_seq {
            let head = &mut self.heads[target.gid as usize];
            if !head.set[s] {
                head.vts[s] = ts;
                head.set[s] = true;
            }
        } else if target.seq > head_seq {
            self.future_stamps
                .entry(target)
                .or_default()
                .push((stamper, ts));
        }
        // else: already ordered — the stamp still advances the clock bound.

        // Inference (Algorithm 2 lines 6–7): the stamper's clock is at
        // least `ts` now, so every head element it has not yet stamped is
        // at least `ts`.
        self.bump_clock(s, ts);
        self.drain();
    }

    /// Advances the known lower bound of group `s`'s clock and propagates
    /// it to every head element that group has not stamped yet.
    fn bump_clock(&mut self, s: usize, ts: u64) {
        if ts > self.last_ts[s] {
            self.last_ts[s] = ts;
        }
        let bound = self.last_ts[s];
        for head in &mut self.heads {
            if !head.set[s] && bound > head.vts[s] {
                head.vts[s] = bound;
            }
        }
    }

    /// Pops the next entry in the decided total order, if any.
    pub fn pop_ready(&mut self) -> Option<EntryId> {
        self.ready.pop_front()
    }

    /// Lines 8–15: repeatedly extract the global minimum head.
    fn drain(&mut self) {
        while let Some(g) = self.global_minimum() {
            let pre = self.heads[g].clone();
            self.ready.push_back(pre.id);
            self.ordered_count += 1;
            ordered_counter().inc();

            // Replace the head with its successor.
            let nxt_id = pre.id.successor();
            let mut nxt = EntryState::new_head(nxt_id, self.ng);
            for j in 0..self.ng {
                if nxt.set[j] {
                    continue;
                }
                // Infer from the predecessor (monotonicity, Lemma V.5) and
                // from the stamper's latest clock.
                nxt.vts[j] = pre.vts[j].max(self.last_ts[j]);
            }
            // Apply any stamps that arrived early.
            if let Some(stamps) = self.future_stamps.remove(&nxt_id) {
                for (stamper, ts) in stamps {
                    let s = stamper as usize;
                    if !nxt.set[s] {
                        nxt.vts[s] = ts;
                        nxt.set[s] = true;
                    }
                }
            }
            self.heads[g] = nxt;
        }
    }

    /// Lines 16–20: the committed head that provably precedes every other
    /// head.
    fn global_minimum(&self) -> Option<usize> {
        'outer: for (i, e1) in self.heads.iter().enumerate() {
            if e1.id.seq > self.committed[i] {
                continue; // entry has not completed replication yet
            }
            for (j, e2) in self.heads.iter().enumerate() {
                if i != j && !prec(e1, e2) {
                    continue 'outer;
                }
            }
            return Some(i);
        }
        None
    }
}

/// Lines 21–30: `true` iff `e1` must precede `e2` under every possible
/// resolution of inferred (unset) elements.
fn prec(e1: &EntryState, e2: &EntryState) -> bool {
    for j in 0..e1.vts.len() {
        if e1.set[j] {
            if e1.vts[j] < e2.vts[j] {
                // e2's element only grows; the order is already decided.
                return true;
            }
            if e2.set[j] && e1.vts[j] == e2.vts[j] {
                continue; // tie on a fully known element: compare the next
            }
        }
        // e1's element is inferred (could grow), or e1 > e2 on a known
        // element, or e2's equal element is still inferred: undecidable or
        // e2 first.
        return false;
    }
    // Identical, fully set VTSs: deterministic (seq, gid) tiebreak.
    if e1.id.seq != e2.id.seq {
        return e1.id.seq < e2.id.seq;
    }
    e1.id.gid < e2.id.gid
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// One ordering-relevant event as it would be delivered by the Raft
    /// instances: either an entry commit (instance `id.gid`) or a stamp
    /// (instance `stamper`).
    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Commit(EntryId),
        Stamp(u32, EntryId, u64),
    }

    impl Ev {
        /// The Raft instance this event is delivered through; events of one
        /// instance must stay in order when interleavings are shuffled.
        fn instance(&self) -> u32 {
            match self {
                Ev::Commit(id) => id.gid,
                Ev::Stamp(s, _, _) => *s,
            }
        }
    }

    /// Feed events and collect the emitted order.
    fn order_of(ng: usize, events: &[Ev]) -> Vec<EntryId> {
        let mut eng = OrderingEngine::new(ng);
        let mut out = Vec::new();
        for &ev in events {
            match ev {
                Ev::Commit(id) => eng.on_entry_committed(id),
                Ev::Stamp(s, id, ts) => eng.on_timestamp(s, id, ts),
            }
            while let Some(e) = eng.pop_ready() {
                out.push(e);
            }
        }
        out
    }

    #[test]
    fn paper_figure_6_example() {
        // Entries from Fig. 6: e2,6 has VTS <6,6,4>, e3,5 has <6,6,5>;
        // e2,6 orders before e3,5 on the third element. We replay a
        // consistent stamp history for 3 groups producing heads e1,7
        // (VTS <7,6,5>), e2,6 <6,6,4>, e3,5 <6,6,5> and check e2,6 first.
        let eng = OrderingEngine::new(3);
        // Advance heads to (1,7), (2,6), (3,5) by ordering the earlier
        // entries; simplest is to stamp everything for seqs below in a
        // fully-synchronized pattern.
        // Instead of replaying 15 entries we verify the Prec relation
        // directly on constructed states:
        let mk = |gid: u32, seq: u64, vts: [u64; 3]| EntryState {
            id: EntryId::new(gid, seq),
            vts: vts.to_vec(),
            set: vec![true; 3],
        };
        let e26 = mk(2, 6, [6, 6, 4]);
        let e35 = mk(3, 5, [6, 6, 5]);
        assert!(prec(&e26, &e35));
        assert!(!prec(&e35, &e26));
        assert_eq!(eng.group_count(), 3);
    }

    #[test]
    fn identical_vts_break_ties_by_seq_then_gid() {
        let mk = |gid: u32, seq: u64| EntryState {
            id: EntryId::new(gid, seq),
            vts: vec![6, 6, 5],
            set: vec![true; 3],
        };
        // Fig. 6's e2,5 and e3,4 have identical VTSs.
        let e25 = mk(2, 5);
        let e34 = mk(3, 4);
        assert!(prec(&e34, &e25), "smaller seq first");
        assert!(!prec(&e25, &e34));
        let a = mk(1, 5);
        let b = mk(2, 5);
        assert!(prec(&a, &b), "equal seq: smaller gid first");
    }

    #[test]
    fn inferred_element_blocks_ordering() {
        // e1 has an inferred element equal to e2's set element: not
        // decidable (e1's actual value may be larger).
        let e1 = EntryState {
            id: EntryId::new(0, 1),
            vts: vec![1, 5],
            set: vec![true, false],
        };
        let e2 = EntryState {
            id: EntryId::new(1, 1),
            vts: vec![1, 5],
            set: vec![true, true],
        };
        assert!(!prec(&e1, &e2));
        assert!(!prec(&e2, &e1)); // e1's inferred 5 could exceed 5
    }

    #[test]
    fn strictly_smaller_set_element_decides_even_with_inferred_rest() {
        let e1 = EntryState {
            id: EntryId::new(0, 1),
            vts: vec![3, 0],
            set: vec![true, false],
        };
        let e2 = EntryState {
            id: EntryId::new(1, 1),
            vts: vec![4, 0],
            set: vec![true, false],
        };
        // e1.vts[0]=3 < e2.vts[0]=4 (both bounds only grow for e2): decided.
        assert!(prec(&e1, &e2));
    }

    #[test]
    fn single_group_orders_committed_entries_only() {
        let mut eng = OrderingEngine::new(1);
        eng.on_entry_committed(EntryId::new(0, 1));
        eng.on_entry_committed(EntryId::new(0, 2));
        let mut got = Vec::new();
        while let Some(e) = eng.pop_ready() {
            got.push(e);
        }
        // Exactly the two committed entries order — the gate stops the
        // head from running ahead of replication.
        assert_eq!(got, vec![EntryId::new(0, 1), EntryId::new(0, 2)]);
    }

    /// Build a consistent event history for `ng` groups × `per_group`
    /// entries: a seeded global interleaving decides the wall-clock commit
    /// order; each commit advances the proposer's clock, and every other
    /// group stamps the entry with its current clock. Two deterministic
    /// *flush rounds* follow, so every clock ends strictly above every
    /// stamp of the body — releasing the whole body (the paper's
    /// Theorem V.6 liveness needs ongoing proposals; a finite history
    /// without a flush legitimately stalls its tail).
    fn consistent_history(ng: usize, per_group: u64, seed: u64) -> Vec<Ev> {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next = vec![1u64; ng];
        let mut order: Vec<EntryId> = Vec::new();
        loop {
            let remaining: Vec<(u32, u64)> = (0..ng)
                .filter(|&g| next[g] <= per_group)
                .map(|g| (g as u32, next[g]))
                .collect();
            if remaining.is_empty() {
                break;
            }
            let &(g, s) = remaining.choose(&mut rng).expect("nonempty");
            order.push(EntryId::new(g, s));
            next[g as usize] = s + 1;
        }
        // Flush rounds commit strictly after the body, one group at a time.
        for r in 1..=2u64 {
            for g in 0..ng as u32 {
                order.push(EntryId::new(g, per_group + r));
            }
        }
        let mut clk = vec![0u64; ng];
        let mut events = Vec::new();
        for id in &order {
            clk[id.gid as usize] = id.seq; // proposer's clock advances
            events.push(Ev::Commit(*id));
            for j in 0..ng as u32 {
                if j != id.gid {
                    events.push(Ev::Stamp(j, *id, clk[j as usize]));
                }
            }
        }
        events
    }

    /// Shuffle events across instances while preserving each instance's
    /// internal order (what real Raft delivery allows).
    fn shuffle_preserving_instances(ng: usize, events: &[Ev], seed: u64) -> Vec<Ev> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut per: Vec<VecDeque<Ev>> = vec![VecDeque::new(); ng];
        for &e in events {
            per[e.instance() as usize].push_back(e);
        }
        let mut merged = Vec::new();
        while per.iter().any(|q| !q.is_empty()) {
            let nonempty: Vec<usize> = (0..ng).filter(|&i| !per[i].is_empty()).collect();
            let pick = nonempty[rng.gen_range(0..nonempty.len())];
            merged.push(per[pick].pop_front().expect("nonempty"));
        }
        merged
    }

    /// The engine's liveness matches the paper's Theorem V.6: the tail of
    /// a *finite* history can stall because no later proposal raises the
    /// inference bounds. Histories therefore append two flush rounds
    /// (enough to push every clock strictly past every earlier stamp) and
    /// assertions cover the first `per_group` seqs.
    fn ordered_below(order: &[EntryId], per_group: u64) -> Vec<EntryId> {
        order
            .iter()
            .copied()
            .filter(|e| e.seq <= per_group)
            .collect()
    }

    #[test]
    fn all_entries_eventually_ordered() {
        let events = consistent_history(3, 10, 1);
        let order = ordered_below(&order_of(3, &events), 10);
        assert_eq!(order.len() as u64, 3 * 10);
        // Per-group seq order must be preserved (Lemma V.5).
        for g in 0..3u32 {
            let seqs: Vec<u64> = order.iter().filter(|e| e.gid == g).map(|e| e.seq).collect();
            assert_eq!(seqs, (1..=10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn agreement_under_cross_instance_reordering() {
        // Same history delivered with different interleavings across
        // instances (within-instance order preserved) must produce the
        // same total order — the paper's Agreement property.
        let events = consistent_history(3, 8, 2);
        let baseline = ordered_below(&order_of(3, &events), 8);
        assert_eq!(baseline.len(), 24);
        for seed in 0..10u64 {
            let merged = shuffle_preserving_instances(3, &events, seed);
            assert_eq!(
                ordered_below(&order_of(3, &merged), 8),
                baseline,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fast_group_not_blocked_by_slow_group() {
        // Group 0 proposes 10 entries for every entry of slow group 1.
        // Group 0's entries must keep ordering between group 1's commits —
        // the asynchronous-ordering claim (paper Fig. 2 versus §V).
        let mut eng = OrderingEngine::new(2);
        let mut executed = Vec::new();
        let drain = |eng: &mut OrderingEngine, executed: &mut Vec<EntryId>| {
            while let Some(e) = eng.pop_ready() {
                executed.push(e);
            }
        };
        let mut clk1 = 0u64;
        for burst in 0..3u64 {
            for k in 1..=10u64 {
                let id = EntryId::new(0, burst * 10 + k);
                eng.on_entry_committed(id);
                eng.on_timestamp(1, id, clk1);
                drain(&mut eng, &mut executed);
            }
            // Slow group finally commits one entry, stamped by group 0.
            let slow = EntryId::new(1, burst + 1);
            eng.on_entry_committed(slow);
            eng.on_timestamp(0, slow, (burst + 1) * 10);
            clk1 = burst + 1;
            drain(&mut eng, &mut executed);
            // After each burst, most of group 0's entries are already out:
            // at minimum everything strictly below the burst boundary.
            let g0_done = executed.iter().filter(|e| e.gid == 0).count() as u64;
            assert!(
                g0_done >= burst * 10 + 9,
                "burst {burst}: only {g0_done} of group 0 ordered"
            );
        }
        assert_eq!(executed.iter().filter(|e| e.gid == 1).count(), 3);
    }

    #[test]
    fn duplicate_and_stale_events_are_harmless() {
        let events = consistent_history(2, 5, 3);
        let mut doubled = Vec::new();
        for &e in &events {
            doubled.push(e);
            doubled.push(e); // duplicate delivery
        }
        let order = ordered_below(&order_of(2, &doubled), 5);
        assert_eq!(order.len(), 10);
        assert_eq!(order, ordered_below(&order_of(2, &events), 5));
    }

    #[test]
    fn future_stamps_apply_when_head_advances() {
        let mut eng = OrderingEngine::new(2);
        // Stamp e0,2 before e0,1 is ordered.
        eng.on_timestamp(1, EntryId::new(0, 2), 1);
        assert!(eng.future_stamps.contains_key(&EntryId::new(0, 2)));
        eng.on_entry_committed(EntryId::new(0, 1));
        eng.on_timestamp(1, EntryId::new(0, 1), 0);
        // Give group 1 visible progress so the ordering of e0,1 against
        // group 1's (nonexistent) head resolves.
        eng.on_entry_committed(EntryId::new(1, 1));
        eng.on_timestamp(0, EntryId::new(1, 1), 2);
        // Draining e0,1 must consume the stored stamp for e0,2.
        let mut got = Vec::new();
        while let Some(e) = eng.pop_ready() {
            got.push(e);
        }
        assert!(got.contains(&EntryId::new(0, 1)), "{got:?}");
        assert!(!eng.future_stamps.contains_key(&EntryId::new(0, 2)));
    }

    #[test]
    fn uncommitted_entry_never_emitted() {
        let mut eng = OrderingEngine::new(2);
        // Fully stamp e0,1 but never commit it.
        eng.on_timestamp(1, EntryId::new(0, 1), 0);
        assert!(eng.pop_ready().is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_total_order_is_agreement_stable(
            ng in 2usize..5,
            per_group in 1u64..12,
            seed in any::<u64>(),
            shuffle_seed in any::<u64>(),
        ) {
            let events = consistent_history(ng, per_group, seed);
            let baseline = ordered_below(&order_of(ng, &events), per_group);
            prop_assert_eq!(baseline.len() as u64, ng as u64 * per_group);
            let merged = shuffle_preserving_instances(ng, &events, shuffle_seed);
            prop_assert_eq!(
                ordered_below(&order_of(ng, &merged), per_group),
                baseline
            );
        }

        #[test]
        fn prop_per_group_monotonicity(
            ng in 2usize..5,
            per_group in 1u64..10,
            seed in any::<u64>(),
        ) {
            let events = consistent_history(ng, per_group, seed);
            let order = ordered_below(&order_of(ng, &events), per_group);
            for g in 0..ng as u32 {
                let seqs: Vec<u64> =
                    order.iter().filter(|e| e.gid == g).map(|e| e.seq).collect();
                let mut sorted = seqs.clone();
                sorted.sort_unstable();
                prop_assert_eq!(seqs, sorted, "group {} out of order", g);
            }
        }
    }
}

//! The unified protocol node: MassBFT and all competitor protocols in one
//! configurable actor.
//!
//! The paper implements Steward, GeoBFT, ISS and Baseline "under the same
//! codebase with MassBFT" for a fair comparison (§VI, Table II). This
//! module mirrors that methodology: a single [`Node`] actor whose
//! behaviour is switched by [`Protocol`]:
//!
//! | preset | replication | global consensus | ordering |
//! |---|---|---|---|
//! | `MassBft` | erasure-coded bijective | per-group Raft | async VTS |
//! | `EncodedBijective` (EBR) | erasure-coded bijective | per-group Raft | round-based |
//! | `BijectiveOnly` (BR) | full-copy bijective | per-group Raft | round-based |
//! | `Baseline` | leader → f+1 copies | per-group Raft | round-based |
//! | `GeoBft` | leader → f+1 copies | none (direct broadcast) | round-based |
//! | `Iss` | leader → f+1 copies | per-group Raft | round-based + epochs |
//! | `Steward` | single leader → f+1 copies | single Raft instance | Raft log order |
//!
//! Structure of one node (group `g`, index `i`):
//!
//! - a local [`PbftReplica`] certifying the group's own entries;
//! - per-origin-group [`ChunkAssembler`]s (chunked modes) or copy buffers;
//! - the group representative (node 0) additionally runs the global Raft
//!   endpoints, the client batcher, and broadcasts committed ordering
//!   events to its group over LAN ([`Msg::Feed`]);
//! - an ordering engine (VTS / round / log) feeding the deterministic
//!   Aria executor.
//!
//! Modelling notes (see DESIGN.md §5): the intra-group agreement on
//! global-consensus decisions (the paper's skip-prepare accept PBFT) is
//! modelled as a fixed LAN-round delay on `accept` replies; transaction
//! signature verification and execution charge per-transaction virtual CPU
//! time, which produces the paper's CPU plateau (Fig. 13a).

use crate::{
    adversary::{AdversarySpec, Strategy},
    entry::{decode_batch, encode_batch, entry_digest, peek_entry_id, EntryId},
    exec::{ExecutionPipeline, PreparedEntry},
    ledger::Ledger,
    ordering::OrderingEngine,
    plan::TransferPlan,
    replication::{ChunkAssembler, ChunkMsg, ChunkOutcome, ChunkSender},
    round::RoundOrdering,
    stats::LatencyStats,
};
use bytes::Bytes;
use massbft_consensus::{
    pbft::{PbftConfig, PbftMsg, PbftOutput, PbftReplica},
    raft::{RaftConfig, RaftMsg, RaftNode, RaftOutput},
};
use massbft_crypto::{cert::quorum, Digest, KeyRegistry, QuorumCert};
use massbft_db::WorkerPool;
use massbft_sim_net::{Actor, Ctx, NodeId, SimMessage, Time, MILLISECOND};
use massbft_telemetry as telemetry;
use massbft_workloads::{Request, WorkloadGen, WorkloadKind};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::OnceLock;

/// Process-wide commit-latency histogram (`core.entry.commit_latency_us`):
/// submitted → executed at the originating group's representative. Windowed
/// reads (the scale bench) use `Histogram::window` + `percentile_since`.
fn commit_latency_histogram() -> &'static telemetry::registry::Histogram {
    static H: OnceLock<telemetry::registry::Histogram> = OnceLock::new();
    H.get_or_init(|| telemetry::registry::histogram("core.entry.commit_latency_us"))
}

/// Protocol selector (Table II of the paper + the Fig. 12 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The paper's contribution: encoded bijective replication +
    /// asynchronous VTS ordering.
    MassBft,
    /// EBR: encoded bijective replication, round-based ordering (Fig. 12).
    EncodedBijective,
    /// BR: full-copy bijective replication, round-based ordering (Fig. 12).
    BijectiveOnly,
    /// Baseline of §II-A: leader one-way replication + Raft + rounds.
    Baseline,
    /// GeoBFT: leader one-way replication, no global consensus.
    GeoBft,
    /// ISS with a Steward-like SB layer: Baseline + epoch barriers.
    Iss,
    /// Steward: single-master global consensus.
    Steward,
}

impl Protocol {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::MassBft => "MassBFT",
            Protocol::EncodedBijective => "EBR",
            Protocol::BijectiveOnly => "BR",
            Protocol::Baseline => "Baseline",
            Protocol::GeoBft => "GeoBFT",
            Protocol::Iss => "ISS",
            Protocol::Steward => "Steward",
        }
    }

    fn uses_chunks(&self) -> bool {
        matches!(self, Protocol::MassBft | Protocol::EncodedBijective)
    }

    fn uses_raft(&self) -> bool {
        !matches!(self, Protocol::GeoBft)
    }

    fn single_master(&self) -> bool {
        matches!(self, Protocol::Steward)
    }
}

/// Per-run protocol parameters.
#[derive(Debug, Clone)]
pub struct ProtocolParams {
    /// Which protocol preset to run.
    pub protocol: Protocol,
    /// Nodes per group.
    pub group_sizes: Vec<usize>,
    /// Batch timeout (paper: fixed 20 ms for all competitors).
    pub batch_timeout_us: Time,
    /// Maximum transactions per entry.
    pub max_batch: usize,
    /// In-flight (proposed but unexecuted) entries a group allows —
    /// the pipelining window.
    pub pipeline_window: usize,
    /// Client request arrival rate per group, transactions/second
    /// (open-loop; the pending pool is capped so saturation sheds load).
    pub arrival_tps: f64,
    /// Per-transaction signature verification CPU (local consensus).
    pub sig_verify_us: Time,
    /// Per-transaction execution CPU.
    pub exec_us: Time,
    /// ISS epoch length.
    pub epoch_us: Time,
    /// Raft election timeout (global instances).
    pub election_timeout_us: Time,
    /// Raft heartbeat period.
    pub heartbeat_us: Time,
    /// Overlapped VTS assignment (Fig. 7b, 2 RTT) when true; serial
    /// assignment after consensus (Fig. 7a, 3 RTT) when false. Ablation
    /// knob only — MassBFT proper overlaps.
    pub overlap_vts: bool,
    /// Workload to generate.
    pub workload: WorkloadKind,
    /// Adversarial node behaviours with activation windows (§III threat
    /// model). Interpreted per strategy by the node; `DelayAll` is applied
    /// at the simulator level by the cluster harness.
    pub adversaries: Vec<AdversarySpec>,
    /// Base PBFT progress timeout: a backup that sees no progress for this
    /// long votes to change the view.
    pub view_timeout_us: Time,
    /// Cap for the exponential view-timeout backoff.
    pub view_timeout_max_us: Time,
    /// Period of the pull-repair scan for stalled executions (Lemma V.1).
    pub repair_interval_us: Time,
    /// RNG / key derivation seed.
    pub seed: u64,
    /// Aria worker lanes for the execution pipeline (1 = serial).
    /// Results are bit-identical at any width; this only changes how
    /// fast the host chews through a batch.
    pub exec_workers: usize,
    /// Re-queue conflict-aborted transactions at the front of the next
    /// entry's batch. Off by default to preserve the paper's
    /// drop-on-conflict abort accounting (Fig. 8d).
    pub retry_aborts: bool,
    /// Aria's deterministic abort fallback: re-run conflict-aborted
    /// transactions serially, in txn-id order, within the same batch.
    /// Deterministic at any worker width. Defaults to the
    /// `MASSBFT_EXEC_FALLBACK` environment knob (off when unset).
    pub exec_fallback: bool,
}

impl ProtocolParams {
    /// Sensible defaults matching the paper's setup (§VI).
    pub fn new(protocol: Protocol, group_sizes: &[usize]) -> Self {
        ProtocolParams {
            protocol,
            group_sizes: group_sizes.to_vec(),
            batch_timeout_us: 20 * MILLISECOND,
            max_batch: 500,
            // Deep pipelining (paper §VI: "we also leverage pipelining
            // and batching to enhance performance"). The window is tuned
            // per protocol to its bandwidth-delay product: too shallow
            // and the window (Little's law), not the network, caps
            // throughput; too deep and over-admission clogs the local-
            // consensus CPU pipeline with entries that only queue.
            pipeline_window: match protocol {
                Protocol::MassBft => 32,
                Protocol::EncodedBijective | Protocol::BijectiveOnly => 16,
                Protocol::Baseline | Protocol::GeoBft | Protocol::Iss | Protocol::Steward => 8,
            },
            arrival_tps: 100_000.0,
            sig_verify_us: 50,
            exec_us: 2,
            epoch_us: 100 * MILLISECOND,
            election_timeout_us: 600 * MILLISECOND,
            heartbeat_us: 100 * MILLISECOND,
            overlap_vts: true,
            workload: WorkloadKind::YcsbA,
            adversaries: Vec::new(),
            // The progress timeout must comfortably exceed a loaded
            // LAN PBFT round; backoff doubles it up to 4x so repeated
            // view changes across overlapping failures still converge.
            view_timeout_us: 500 * MILLISECOND,
            view_timeout_max_us: 2000 * MILLISECOND,
            repair_interval_us: 500 * MILLISECOND,
            seed: 1,
            // `MASSBFT_EXEC_WORKERS` lets check.sh force the whole test
            // suite through the parallel executor.
            exec_workers: WorkerPool::from_env().workers(),
            retry_aborts: false,
            // `MASSBFT_EXEC_FALLBACK=1` likewise forces the deterministic
            // abort fallback on for the whole suite.
            exec_fallback: massbft_db::fallback_from_env(),
        }
    }

    /// Number of groups.
    pub fn ng(&self) -> usize {
        self.group_sizes.len()
    }

    /// The representative (leader) node of a group. The paper routes all
    /// inter-group consensus traffic through group leaders; local PBFT
    /// view 0 makes that node 0.
    pub fn leader_of(&self, g: u32) -> NodeId {
        NodeId::new(g, 0)
    }

    /// Approximate certificate wire size for group `g` (2f+1 signatures à
    /// 72 bytes + header).
    pub fn cert_size(&self, g: u32) -> usize {
        quorum(self.group_sizes[g as usize]) * 72 + 40
    }
}

/// One command in a global Raft log (instance = the group leading it).
#[derive(Debug, Clone)]
pub struct GlobalCmd {
    /// Entry commitment carried by this command (instance == entry.gid),
    /// with its digest; `None` for stamp-only flushes.
    pub entry: Option<(EntryId, Digest)>,
    /// Piggybacked VTS assignments by the instance leader's group:
    /// `(target entry, clock value)` (paper §V-A).
    pub stamps: Vec<(EntryId, u64)>,
}

/// Ordering events a group representative feeds to its members over LAN.
#[derive(Debug, Clone)]
pub enum FeedEvent {
    /// Entry achieved global consensus (or, for GeoBFT, arrived).
    Committed(EntryId),
    /// A replicated VTS assignment.
    Stamp {
        /// The group whose clock produced the stamp.
        stamper: u32,
        /// The stamped entry.
        target: EntryId,
        /// Clock value.
        ts: u64,
    },
}

/// Wire messages of the unified protocol.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Local PBFT traffic (within a group). The payload rides inside
    /// pre-prepare messages.
    Pbft(PbftMsg),
    /// An erasure-coded chunk (WAN bijective transfer or LAN re-share),
    /// carrying the origin's certificate for optimistic validation.
    Chunk {
        /// The chunk with its Merkle proof.
        chunk: ChunkMsg,
        /// The entry's PBFT certificate.
        cert: QuorumCert,
    },
    /// A full entry copy (leader-based and BR replication; also the LAN
    /// forward after WAN receipt).
    Entry {
        /// Entry identity.
        id: EntryId,
        /// Entry bytes (refcounted — relaying a copy to the whole group
        /// shares one allocation).
        bytes: Bytes,
        /// The entry's PBFT certificate.
        cert: QuorumCert,
    },
    /// Global Raft traffic between group representatives.
    Raft {
        /// Raft instance id (the owning group).
        instance: u32,
        /// The message.
        rmsg: RaftMsg<GlobalCmd>,
        /// Total certificate bytes carried (size accounting).
        cert_bytes: usize,
    },
    /// Representative → group members: committed ordering events.
    Feed {
        /// Events in commit order.
        events: Vec<FeedEvent>,
    },
    /// Pull-based entry repair (paper Lemma V.1: "it can request the
    /// entry from G_j if group G_i crashes"): a node asks a peer for the
    /// full bytes of a committed entry it cannot obtain otherwise.
    EntryRequest {
        /// The wanted entry.
        id: EntryId,
    },
    /// Direct accept broadcast (§V-C, slow receiver groups): when a group
    /// accepts entries of another instance, it also notifies every group
    /// representative directly, outside Raft. A group that has seen
    /// `f_g + 1` groups hold an entry may assign its vector timestamp and
    /// treat the entry as replicated without waiting for its own copy —
    /// "this approach avoids slowing down entry ordering of other
    /// groups".
    AcceptNotice {
        /// The accepting group.
        from_group: u32,
        /// Entries newly accepted by that group.
        entries: Vec<EntryId>,
    },
    /// ISS: a group announces it sealed `epoch`.
    EpochClose {
        /// Announcing group.
        group: u32,
        /// Sealed epoch number.
        epoch: u64,
    },
}

impl SimMessage for Msg {
    fn wire_size(&self) -> usize {
        // Single source of truth shared with the TCP frame codec, which
        // produces frame bodies of exactly this many bytes per variant.
        crate::wire::msg_wire_size(self)
    }
}

// Timer tokens.
const T_BATCH: u64 = 1;
const T_HEARTBEAT: u64 = 2;
const T_ELECTION: u64 = 3;
const T_STAMP_FLUSH: u64 = 4;
const T_EPOCH: u64 = 5;
const T_REPAIR: u64 = 6;
const T_VIEW: u64 = 7;
const T_PBFT_HB: u64 = 8;

/// State of one received-but-not-yet-executed entry.
#[derive(Debug, Default)]
struct EntryTracking {
    bytes: Option<Bytes>,
    cert: Option<QuorumCert>,
    committed: bool,
    fed_to_round: bool,
    executed: bool,
}

/// How ordering is decided.
enum OrderingState {
    Vts(OrderingEngine),
    Round(RoundOrdering),
    /// Steward: Raft log order (entries queue as they commit).
    Log(VecDeque<EntryId>),
}

/// The unified protocol node.
pub struct Node {
    params: ProtocolParams,
    id: NodeId,
    registry: KeyRegistry,
    pbft: PbftReplica,
    /// Rebuild state per origin group (chunked modes).
    assemblers: HashMap<u32, ChunkAssembler>,
    /// Entry bytes + commit flags per entry (all modes).
    tracking: HashMap<EntryId, EntryTracking>,
    /// Execution.
    ordering: OrderingState,
    exec_queue: VecDeque<EntryId>,
    pipeline: ExecutionPipeline,
    /// Raft appends carrying entries whose content has not arrived yet:
    /// the accept is withheld until the entry is held locally (paper
    /// Lemma V.1), keyed by instance.
    held_appends: HashMap<u32, Vec<(NodeId, RaftMsg<GlobalCmd>)>>,
    /// Recently executed entries kept for pull-based repair, FIFO-bounded.
    archive: HashMap<EntryId, (Bytes, QuorumCert)>,
    archive_order: VecDeque<EntryId>,
    /// The exec-queue front observed at the last repair tick; a repeat
    /// sighting with missing content triggers an EntryRequest.
    last_stalled: Option<EntryId>,
    /// Representative-only state.
    rep: Option<RepState>,
    /// Last instant local PBFT demonstrably made progress (commit, view
    /// entry, or an idle heartbeat from the current primary). Drives the
    /// view-change stall detector.
    last_pbft_progress: Time,
    /// Current (backed-off) view timeout; doubles on every stall up to
    /// `view_timeout_max_us`, resets on entering a view.
    view_timeout_cur: Time,
    /// Highest own-group PBFT entry seq this node has seen proposed or
    /// certified. An acting representative (post view change) continues
    /// the sequence from here instead of colliding with the old primary.
    own_seq_high: u64,
    /// Measurement (read by the cluster harness).
    pub(crate) executed_txns: u64,
    pub(crate) executed_entries: u64,
    pub(crate) latency: LatencyStats,
    /// Per-origin-group executed txns (Fig. 12 per-group throughput).
    pub(crate) executed_by_group: Vec<u64>,
    /// Executed entry ids in execution order (consistency checks).
    pub(crate) exec_log: Vec<EntryId>,
    /// The node's hash-chained ledger over executed entries (§VI: "a
    /// single, globally ordered, ledger").
    ledger: Ledger,
    /// Phase-time accumulators over own executed entries (microseconds):
    /// local consensus, global replication, ordering wait, execution wait.
    phase_sums: [u64; 4],
    phase_count: u64,
    /// PBFT sequence → entry id, learned from pre-prepare payload headers.
    /// Only populated while telemetry spans are enabled (prepare/commit
    /// messages carry digests, not payloads, so attributing PBFT phase
    /// events to entries needs this map); GC'd on local commit.
    pbft_entry_of_seq: HashMap<u64, EntryId>,
}

/// Mean per-entry latency breakdown at a representative (Fig. 11).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    /// Batch creation → local PBFT certificate, ms.
    pub local_consensus_ms: f64,
    /// Certificate → global Raft commit, ms.
    pub global_replication_ms: f64,
    /// Commit → deterministic order decided, ms.
    pub ordering_ms: f64,
    /// Order decided → executed, ms.
    pub execution_ms: f64,
}

/// Extra state carried by each group's representative node.
struct RepState {
    workload: WorkloadGen,
    /// Client requests waiting to be batched (open-loop arrivals).
    pending: VecDeque<Vec<u8>>,
    /// Fractional arrivals carry-over.
    arrival_carry: f64,
    last_arrival_at: Time,
    next_seq: u64,
    /// Entries proposed but not yet executed locally (pipeline window).
    in_flight: BTreeSet<EntryId>,
    /// Entry creation times for latency accounting.
    created_at: HashMap<EntryId, Time>,
    /// Phase marks per own entry (Fig. 11 latency breakdown).
    certified_at: HashMap<EntryId, Time>,
    committed_at: HashMap<EntryId, Time>,
    ordered_at: HashMap<EntryId, Time>,
    /// Global Raft instances this representative participates in.
    rafts: BTreeMap<u32, RaftNode<GlobalCmd>>,
    /// Stamps awaiting replication, keyed by the instance that will carry
    /// them.
    pending_stamps: BTreeMap<u32, Vec<(EntryId, u64)>>,
    /// `(carrying instance, entry)` pairs already stamped — dedup across
    /// Raft retransmissions, and per instance because a takeover leader
    /// stamps the same entry on behalf of multiple clocks.
    stamped: BTreeSet<(u32, EntryId)>,
    /// clk of this group = seq of last own entry committed globally.
    clock: u64,
    /// Frozen clocks of taken-over instances (§V-C, crashed groups).
    frozen_clocks: BTreeMap<u32, u64>,
    /// Last append heard per instance (election monitoring).
    last_append: BTreeMap<u32, Time>,
    /// Entries committed globally but not yet executed locally (stamped on
    /// takeover so ordering can resume; duplicates are harmless).
    unexecuted: BTreeSet<EntryId>,
    /// ISS: current epoch and the set of groups that sealed each epoch.
    epoch: u64,
    epoch_seals: BTreeMap<u64, BTreeSet<u32>>,
    /// Highest committed seq per group (crash takeover: frozen clock).
    committed_high: BTreeMap<u32, u64>,
    /// Direct-accept tallies per entry (§V-C): which groups are known to
    /// hold it. The proposing group counts implicitly.
    accept_tally: HashMap<EntryId, BTreeSet<u32>>,
    /// Foreign entries this representative re-proposed after taking over a
    /// crashed group's entry instance (dedup across content re-arrivals).
    proposed_foreign: BTreeSet<EntryId>,
    /// True for an acting representative installed by a view change. An
    /// acting rep holds no Raft endpoints and may be permanently behind on
    /// execution (stamps feed-broadcast while the group was orphaned are
    /// gone), so its pipeline window drains on global *commit* — learned
    /// via the orphan feed — instead of local execution.
    acting: bool,
}

impl Node {
    /// Creates the node for `id` under `params`. The same `KeyRegistry`
    /// must be shared by all nodes (derived from `params.seed`).
    pub fn new(id: NodeId, params: ProtocolParams, registry: KeyRegistry) -> Self {
        let n = params.group_sizes[id.group as usize];
        let pbft = PbftReplica::new(
            PbftConfig {
                group: id.group,
                n,
                node: id.node,
                skip_prepare: false,
                checkpoint_interval: 64,
            },
            registry.clone(),
        );
        let ng = params.ng();
        let ordering = match params.protocol {
            Protocol::MassBft => OrderingState::Vts(OrderingEngine::new(ng)),
            Protocol::Steward => OrderingState::Log(VecDeque::new()),
            _ => OrderingState::Round(RoundOrdering::new(ng)),
        };
        // Chunk assemblers for every *other* origin group.
        let mut assemblers = HashMap::new();
        if params.protocol.uses_chunks() {
            for origin in 0..ng as u32 {
                if origin == id.group {
                    continue;
                }
                let plan = std::sync::Arc::new(
                    TransferPlan::generate(
                        params.group_sizes[origin as usize],
                        params.group_sizes[id.group as usize],
                    )
                    .expect("valid group sizes"),
                );
                assemblers.insert(origin, ChunkAssembler::new(plan, registry.clone()));
            }
        }
        let is_rep = id.node == 0;
        let rep = is_rep.then(|| {
            let members: Vec<u32> = (0..ng as u32).collect();
            let mut rafts = BTreeMap::new();
            if params.protocol.uses_raft() {
                let mut instances: Vec<u32> = if params.protocol.single_master() {
                    vec![0]
                } else {
                    members.clone()
                };
                // MassBFT: a dedicated lightweight Raft stream per group
                // carries vector timestamps (instance ng+g, led by group
                // g). The paper stresses that "replicating VTS is
                // non-blocking" (§I): stamps must not queue behind entry
                // commands whose accepts are content-gated (Lemma V.1),
                // or ordering inherits the slowest group's bulk backlog.
                if matches!(params.protocol, Protocol::MassBft) {
                    instances.extend(members.iter().map(|&g| ng as u32 + g));
                }
                for inst in instances {
                    let leader = inst % ng as u32;
                    rafts.insert(
                        inst,
                        RaftNode::new(RaftConfig {
                            me: id.group,
                            members: members.clone(),
                            initial_leader: Some(leader),
                        }),
                    );
                }
            }
            RepState {
                workload: WorkloadGen::new(
                    params.workload,
                    params.seed ^ ((id.group as u64) << 32),
                ),
                pending: VecDeque::new(),
                arrival_carry: 0.0,
                last_arrival_at: 0,
                next_seq: 1,
                in_flight: BTreeSet::new(),
                created_at: HashMap::new(),
                certified_at: HashMap::new(),
                committed_at: HashMap::new(),
                ordered_at: HashMap::new(),
                rafts,
                pending_stamps: BTreeMap::new(),
                stamped: BTreeSet::new(),
                clock: 0,
                frozen_clocks: BTreeMap::new(),
                last_append: BTreeMap::new(),
                unexecuted: BTreeSet::new(),
                epoch: 0,
                epoch_seals: BTreeMap::new(),
                committed_high: BTreeMap::new(),
                accept_tally: HashMap::new(),
                proposed_foreign: BTreeSet::new(),
                acting: false,
            }
        });
        Node {
            id,
            registry,
            pbft,
            assemblers,
            tracking: HashMap::new(),
            held_appends: HashMap::new(),
            archive: HashMap::new(),
            archive_order: VecDeque::new(),
            last_stalled: None,
            ordering,
            exec_queue: VecDeque::new(),
            pipeline: ExecutionPipeline::new(
                params.exec_workers,
                params.retry_aborts,
                params.exec_fallback,
            ),
            rep,
            executed_txns: 0,
            executed_entries: 0,
            latency: LatencyStats::new(),
            executed_by_group: vec![0; ng],
            exec_log: Vec::new(),
            ledger: Ledger::new(),
            phase_sums: [0; 4],
            phase_count: 0,
            pbft_entry_of_seq: HashMap::new(),
            last_pbft_progress: 0,
            view_timeout_cur: params.view_timeout_us,
            own_seq_high: 0,
            params,
        }
    }

    /// Emits one entry-lifecycle telemetry event at this node. A single
    /// relaxed atomic load + branch when telemetry is disabled.
    #[inline]
    fn span(&self, at: Time, kind: telemetry::EventKind, id: EntryId, value: u64) {
        if !telemetry::enabled() {
            return;
        }
        telemetry::emit(telemetry::Event {
            at,
            kind,
            node: (self.id.group, self.id.node),
            entry: (id.gid, id.seq),
            value,
        });
    }

    /// Total transactions executed (committed by Aria).
    pub fn executed_txns(&self) -> u64 {
        self.executed_txns
    }

    /// Entries executed.
    pub fn executed_entries(&self) -> u64 {
        self.executed_entries
    }

    /// Latency samples recorded at this node (origin entries only).
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// Mutable latency access (percentiles sort lazily).
    pub fn latency_mut(&mut self) -> &mut LatencyStats {
        &mut self.latency
    }

    /// Per-origin-group executed transaction counts.
    pub fn executed_by_group(&self) -> &[u64] {
        &self.executed_by_group
    }

    /// Content hash of the node's database (replica-consistency checks).
    pub fn state_hash(&self) -> u64 {
        self.pipeline.store().content_hash()
    }

    /// The executed entry ids, in execution order.
    pub fn exec_log(&self) -> &[EntryId] {
        &self.exec_log
    }

    /// The node's hash-chained ledger (block per executed entry).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// One-line diagnostic snapshot (test/debug use).
    pub fn debug_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "{}:", self.id);
        let _ = write!(out, " exec_q={}", self.exec_queue.len());
        let held: usize = self.held_appends.values().map(|v| v.len()).sum();
        let _ = write!(out, " held={held}");
        if let Some(front) = self.exec_queue.front() {
            let has = self
                .tracking
                .get(front)
                .map(|t| t.bytes.is_some())
                .unwrap_or(false);
            let _ = write!(out, " front={front}(bytes={has})");
        }
        if let OrderingState::Vts(eng) = &self.ordering {
            let heads: Vec<String> = (0..self.ng() as u32)
                .map(|g| {
                    let (seq, vts, set, committed) = eng.head_state(g);
                    let elems: Vec<String> = vts
                        .iter()
                        .zip(&set)
                        .map(|(v, s)| format!("{v}{}", if *s { "" } else { "?" }))
                        .collect();
                    format!(
                        "e{g},{seq}<{}>{}",
                        elems.join(","),
                        if committed { "C" } else { "" }
                    )
                })
                .collect();
            let _ = write!(out, " heads={heads:?} ordered={}", eng.ordered_count());
        }
        if let Some(rep) = &self.rep {
            let leads: Vec<u32> = rep
                .rafts
                .iter()
                .filter(|(_, r)| r.is_leader())
                .map(|(&i, _)| i)
                .collect();
            let pend: Vec<(u32, usize)> = rep
                .pending_stamps
                .iter()
                .map(|(&i, v)| (i, v.len()))
                .collect();
            let rafts: Vec<String> = rep
                .rafts
                .iter()
                .map(|(&i, r)| {
                    format!(
                        "i{}:{:?}@t{} la={}",
                        i,
                        r.role(),
                        r.term(),
                        rep.last_append.get(&i).copied().unwrap_or(0) / 1_000_000
                    )
                })
                .collect();
            let _ = write!(out, " rafts={rafts:?}");
            let _ = write!(
                out,
                " leads={leads:?} clock={} frozen={:?} pending_stamps={pend:?} inflight={} unexec={}",
                rep.clock, rep.frozen_clocks, rep.in_flight.len(), rep.unexecuted.len()
            );
        }
        out
    }

    /// Mean latency breakdown over this representative's own entries
    /// (Fig. 11). `None` when no entries completed or on non-reps.
    pub fn phase_breakdown(&self) -> Option<PhaseBreakdown> {
        if self.phase_count == 0 {
            return None;
        }
        let c = self.phase_count as f64 * 1000.0;
        Some(PhaseBreakdown {
            local_consensus_ms: self.phase_sums[0] as f64 / c,
            global_replication_ms: self.phase_sums[1] as f64 / c,
            ordering_ms: self.phase_sums[2] as f64 / c,
            execution_ms: self.phase_sums[3] as f64 / c,
        })
    }

    fn ng(&self) -> usize {
        self.params.ng()
    }

    fn group_nodes(&self, g: u32) -> impl Iterator<Item = NodeId> {
        let n = self.params.group_sizes[g as usize];
        (0..n as u32).map(move |i| NodeId::new(g, i))
    }

    fn other_group_members(&self) -> Vec<NodeId> {
        self.group_nodes(self.id.group)
            .filter(|&n| n != self.id)
            .collect()
    }

    fn is_rep(&self) -> bool {
        self.rep.is_some()
    }

    /// The node's current local PBFT view (liveness assertions in tests).
    pub fn pbft_view(&self) -> u64 {
        self.pbft.view()
    }

    /// Whether any adversary spec matching `pred` is assigned to this node
    /// and active at `now`.
    fn strategy_active(&self, now: Time, pred: impl Fn(Strategy) -> bool) -> bool {
        self.params
            .adversaries
            .iter()
            .any(|s| s.node == self.id && s.active_at(now) && pred(s.strategy))
    }

    /// Chunk-tampering collusion (§VI-E) — the historical default
    /// Byzantine behavior.
    fn is_byzantine(&self, now: Time) -> bool {
        self.strategy_active(now, |s| matches!(s, Strategy::TamperChunks))
    }

    /// Mute fault: all outbound PBFT traffic is suppressed.
    fn silenced(&self, now: Time) -> bool {
        self.strategy_active(now, |s| matches!(s, Strategy::SilentPrimary))
    }

    /// WAN-share withholding: certify locally, never replicate out.
    fn withholds_shares(&self, now: Time) -> bool {
        self.strategy_active(now, |s| matches!(s, Strategy::WithholdChunks))
    }

    // --- client batching --------------------------------------------------

    /// Accrues open-loop arrivals since the last call (capped pool).
    fn accrue_arrivals(&mut self, now: Time) {
        let max_batch = self.params.max_batch;
        let tps = self.params.arrival_tps;
        let Some(rep) = self.rep.as_mut() else { return };
        let dt = now.saturating_sub(rep.last_arrival_at);
        rep.last_arrival_at = now;
        let exact = tps * dt as f64 / 1_000_000.0 + rep.arrival_carry;
        let mut n = exact as u64;
        rep.arrival_carry = exact - n as f64;
        // Pool cap: ~4 max batches of headroom; beyond that, shed load.
        let cap = (max_batch * 4) as u64;
        let room = cap.saturating_sub(rep.pending.len() as u64);
        n = n.min(room);
        for _ in 0..n {
            let req = rep.workload.next_request().encode();
            rep.pending.push_back(req);
        }
    }

    fn try_batch(&mut self, ctx: &mut Ctx<Msg>) {
        self.accrue_arrivals(ctx.now());
        let ng = self.ng();
        let (protocol, epoch_us, max_batch, window) = (
            self.params.protocol,
            self.params.epoch_us,
            self.params.max_batch,
            self.params.pipeline_window,
        );
        let group = self.id.group;
        let own_high = self.own_seq_high;
        // Only an active primary can drive a batch through PBFT. Proposing
        // as a backup or mid-view-change would consume the entry id and
        // occupy a pipeline-window slot for a batch `Pbft::propose`
        // silently refuses to sequence — wedging the window for good.
        if !self.pbft.is_primary() || self.pbft.in_view_change() {
            return;
        }
        let Some(rep) = self.rep.as_mut() else { return };
        if rep.pending.is_empty() || rep.in_flight.len() >= window {
            return;
        }
        // An acting representative (elected by view change) continues the
        // group's sequence past everything already seen on the wire.
        rep.next_seq = rep.next_seq.max(own_high + 1);
        // ISS epoch barrier: cannot open a new epoch until all groups
        // sealed the previous one.
        if matches!(protocol, Protocol::Iss) {
            let entry_epoch = ctx.now() / epoch_us;
            if entry_epoch > rep.epoch {
                let sealed = rep
                    .epoch_seals
                    .get(&rep.epoch)
                    .map(|s| s.len())
                    .unwrap_or(0);
                if sealed < ng {
                    return; // stall at the barrier
                }
                rep.epoch = entry_epoch;
            }
        }
        let take = rep.pending.len().min(max_batch);
        let requests: Vec<Vec<u8>> = rep.pending.drain(..take).collect();
        let id = EntryId::new(group, rep.next_seq);
        rep.next_seq += 1;
        rep.in_flight.insert(id);
        rep.created_at.insert(id, ctx.now());
        self.span(
            ctx.now(),
            telemetry::EventKind::Submitted,
            id,
            requests.len() as u64,
        );
        let bytes = encode_batch(id, &requests);
        let outputs = self.pbft.propose(bytes);
        self.handle_pbft_outputs(ctx, outputs);
    }

    // --- local PBFT ---------------------------------------------------------

    fn handle_pbft_outputs(&mut self, ctx: &mut Ctx<Msg>, outputs: Vec<PbftOutput>) {
        for out in outputs {
            match out {
                PbftOutput::Send { to, msg } => {
                    if self.silenced(ctx.now()) {
                        continue; // mute fault: nothing leaves this node
                    }
                    ctx.send(NodeId::new(self.id.group, to), Msg::Pbft(msg));
                }
                PbftOutput::Broadcast(msg) => {
                    if self.silenced(ctx.now()) {
                        continue;
                    }
                    self.note_pbft_phase(ctx.now(), &msg);
                    if let PbftMsg::PrePrepare { payload, .. } = &msg {
                        if let Some(id) = peek_entry_id(payload) {
                            if id.gid == self.id.group {
                                self.own_seq_high = self.own_seq_high.max(id.seq);
                            }
                        }
                        if self.strategy_active(ctx.now(), |s| {
                            matches!(s, Strategy::EquivocatingPrimary)
                        }) {
                            self.send_equivocating(ctx, msg);
                            continue;
                        }
                    }
                    let peers = self.other_group_members();
                    ctx.send_many(peers, Msg::Pbft(msg));
                }
                PbftOutput::Committed { seq, payload, cert } => {
                    self.pbft_entry_of_seq.remove(&seq);
                    self.last_pbft_progress = ctx.now();
                    self.on_local_entry_certified(ctx, payload, cert);
                }
                PbftOutput::EnteredView(v) => self.on_entered_view(ctx, v),
                // View timing is driven by the T_VIEW progress timer.
                PbftOutput::ArmViewTimer => {}
            }
        }
    }

    /// Equivocation attack: replace the primary's pre-prepare broadcast
    /// with two conflicting branches sent to disjoint halves of the group
    /// (same view/seq, different payload+digest). With `n = 3f + 1`,
    /// neither branch can gather a `2f + 1` quorum, so the group stalls
    /// until the view-change driver evicts us and the new primary
    /// re-proposes exactly one branch.
    fn send_equivocating(&mut self, ctx: &mut Ctx<Msg>, msg: PbftMsg) {
        let PbftMsg::PrePrepare {
            view,
            seq,
            ref payload,
            ..
        } = msg
        else {
            return;
        };
        let Some(id) = peek_entry_id(payload) else {
            let peers = self.other_group_members();
            ctx.send_many(peers, Msg::Pbft(msg));
            return;
        };
        let alt_payload = encode_batch(id, &[b"equivocating-branch".to_vec()]);
        let alt = PbftMsg::PrePrepare {
            view,
            seq,
            digest: Digest::of(&alt_payload),
            payload: alt_payload.into(),
        };
        let peers = self.other_group_members();
        let f = (self.params.group_sizes[self.id.group as usize] - 1) / 3;
        for (i, peer) in peers.into_iter().enumerate() {
            let branch = if i < 2 * f { alt.clone() } else { msg.clone() };
            ctx.send(peer, Msg::Pbft(branch));
        }
    }

    /// The local replica installed a new view. Reset the stall detector
    /// and backoff, and — if this node is now the primary of a group whose
    /// original representative is gone — take over client batching as the
    /// acting representative so the group keeps proposing entries.
    fn on_entered_view(&mut self, ctx: &mut Ctx<Msg>, view: u64) {
        self.last_pbft_progress = ctx.now();
        self.view_timeout_cur = self.params.view_timeout_us;
        self.span(
            ctx.now(),
            telemetry::EventKind::NewViewAdopted,
            EntryId::new(self.id.group, 0),
            view,
        );
        if self.pbft.is_primary() && self.rep.is_none() {
            self.become_acting_rep(ctx);
        }
    }

    /// Promote this node to acting representative: same deterministic
    /// client stream as the original (shared workload seed), sequence
    /// continued from `own_seq_high`. Global Raft endpoints stay with the
    /// original representative (or its cross-group takeover); the acting
    /// rep only batches, proposes, and certifies.
    fn become_acting_rep(&mut self, ctx: &mut Ctx<Msg>) {
        let params = &self.params;
        self.rep = Some(RepState {
            workload: WorkloadGen::new(
                params.workload,
                params.seed ^ ((self.id.group as u64) << 32),
            ),
            pending: VecDeque::new(),
            arrival_carry: 0.0,
            last_arrival_at: ctx.now(),
            next_seq: self.own_seq_high + 1,
            in_flight: BTreeSet::new(),
            created_at: HashMap::new(),
            certified_at: HashMap::new(),
            committed_at: HashMap::new(),
            ordered_at: HashMap::new(),
            rafts: BTreeMap::new(),
            pending_stamps: BTreeMap::new(),
            stamped: BTreeSet::new(),
            clock: 0,
            frozen_clocks: BTreeMap::new(),
            last_append: BTreeMap::new(),
            unexecuted: BTreeSet::new(),
            epoch: 0,
            epoch_seals: BTreeMap::new(),
            committed_high: BTreeMap::new(),
            accept_tally: HashMap::new(),
            proposed_foreign: BTreeSet::new(),
            acting: true,
        });
        ctx.set_timer(self.params.batch_timeout_us, T_BATCH);
    }

    /// Attributes an outgoing PBFT phase message to its entry and emits the
    /// matching lifecycle event. Pre-prepares carry the payload (whose
    /// header names the entry); prepares and commits carry only digests, so
    /// the `seq → entry` map learned from pre-prepares bridges them.
    fn note_pbft_phase(&mut self, at: Time, msg: &PbftMsg) {
        if !telemetry::enabled() {
            return;
        }
        match msg {
            PbftMsg::PrePrepare { seq, payload, .. } => {
                if let Some(id) = peek_entry_id(payload) {
                    self.pbft_entry_of_seq.insert(*seq, id);
                    self.span(at, telemetry::EventKind::PbftPrePrepare, id, *seq);
                }
            }
            PbftMsg::Prepare { seq, .. } => {
                if let Some(&id) = self.pbft_entry_of_seq.get(seq) {
                    self.span(at, telemetry::EventKind::PbftPrepare, id, *seq);
                }
            }
            PbftMsg::Commit { seq, .. } => {
                if let Some(&id) = self.pbft_entry_of_seq.get(seq) {
                    self.span(at, telemetry::EventKind::PbftCommit, id, *seq);
                }
            }
            _ => {}
        }
    }

    /// A local entry finished PBFT: start global replication.
    fn on_local_entry_certified(&mut self, ctx: &mut Ctx<Msg>, bytes: Bytes, cert: QuorumCert) {
        let Some((id, reqs)) = decode_batch(&bytes) else {
            return;
        };
        debug_assert_eq!(id.gid, self.id.group);
        self.own_seq_high = self.own_seq_high.max(id.seq);
        // Charge verification of every client transaction's signature —
        // the local-consensus CPU cost the paper identifies (§VI-B).
        ctx.spend_cpu(reqs.len() as Time * self.params.sig_verify_us);
        {
            let t = self.tracking.entry(id).or_default();
            t.bytes = Some(bytes.clone());
            t.cert = Some(cert.clone());
        }
        if let Some(rep) = self.rep.as_mut() {
            rep.certified_at.insert(id, ctx.now());
        }
        self.span(
            ctx.now(),
            telemetry::EventKind::Certified,
            id,
            reqs.len() as u64,
        );

        // A withholding adversary certifies but never ships its WAN
        // shares; erasure-coded parity (or the remaining copy senders)
        // must absorb the gap.
        let withhold = self.withholds_shares(ctx.now());
        match self.params.protocol {
            Protocol::MassBft | Protocol::EncodedBijective => {
                if !withhold {
                    self.send_chunks(ctx, id, &bytes, &cert);
                }
            }
            Protocol::BijectiveOnly => {
                if !withhold {
                    self.send_bijective_copy(ctx, id, &bytes, &cert);
                }
            }
            Protocol::Baseline | Protocol::GeoBft | Protocol::Iss => {
                if self.is_rep() && !withhold {
                    self.send_leader_copies(ctx, id, &bytes, &cert);
                }
            }
            Protocol::Steward => {
                if self.is_rep() {
                    if self.id.group == 0 {
                        // The master group replicates directly.
                        self.send_leader_copies(ctx, id, &bytes, &cert);
                        self.steward_propose(ctx, id);
                    } else {
                        // Forward to the master for sequencing + fan-out.
                        ctx.send(
                            self.params.leader_of(0),
                            Msg::Entry {
                                id,
                                bytes: bytes.clone(),
                                cert: cert.clone(),
                            },
                        );
                    }
                }
            }
        }

        // GeoBFT has no global consensus: local certification == commit.
        if !self.params.protocol.uses_raft() {
            self.mark_committed(id);
        } else if self.is_rep() && !self.params.protocol.single_master() {
            // Propose the entry commitment in our own Raft instance,
            // carrying any pending stamps (paper §V-A piggybacking).
            self.propose_global(ctx, id);
        }
        self.drain_ordering(ctx.now());
        self.try_execute(ctx);
    }

    fn send_chunks(&mut self, ctx: &mut Ctx<Msg>, id: EntryId, bytes: &[u8], cert: &QuorumCert) {
        // Byzantine senders encode a tampered entry instead (§VI-E).
        let tampered;
        let payload: &[u8] = if self.is_byzantine(ctx.now()) {
            tampered = encode_batch(id, &[b"tampered-by-byzantine-collusion".to_vec()]);
            &tampered
        } else {
            bytes
        };
        self.span(
            ctx.now(),
            telemetry::EventKind::Encoded,
            id,
            payload.len() as u64,
        );
        // Destination groups of equal size share one encoding geometry;
        // encode once per geometry and slice per transfer plan (a real
        // implementation caches exactly the same way).
        let mut encoded: HashMap<(usize, usize), Vec<crate::replication::ChunkMsg>> =
            HashMap::new();
        let mut wan_bytes: u64 = 0;
        for dst_group in 0..self.ng() as u32 {
            if dst_group == self.id.group {
                continue;
            }
            let plan = TransferPlan::generate(
                self.params.group_sizes[self.id.group as usize],
                self.params.group_sizes[dst_group as usize],
            )
            .expect("valid sizes");
            let key = (plan.n_data, plan.n_total);
            let all = encoded.entry(key).or_insert_with(|| {
                ChunkSender::encode_all(&plan, id, payload).expect("encodable entry")
            });
            for t in plan.outgoing_of(self.id.node) {
                let chunk = all[t.chunk as usize].clone();
                wan_bytes += chunk.wire_size() as u64;
                ctx.send(
                    NodeId::new(dst_group, t.receiver),
                    Msg::Chunk {
                        chunk,
                        cert: cert.clone(),
                    },
                );
            }
        }
        if wan_bytes > 0 {
            self.span(
                ctx.now(),
                telemetry::EventKind::WanTransferStart,
                id,
                wan_bytes,
            );
        }
    }

    fn send_bijective_copy(
        &mut self,
        ctx: &mut Ctx<Msg>,
        id: EntryId,
        bytes: &Bytes,
        cert: &QuorumCert,
    ) {
        // BR (§IV-A): f1 + f2 + 1 nodes each send a complete copy to a
        // distinct receiver.
        let mut sent = false;
        for dst_group in 0..self.ng() as u32 {
            if dst_group == self.id.group {
                continue;
            }
            let n1 = self.params.group_sizes[self.id.group as usize];
            let n2 = self.params.group_sizes[dst_group as usize];
            let f1 = massbft_crypto::cert::max_faulty(n1);
            let f2 = massbft_crypto::cert::max_faulty(n2);
            let senders = (f1 + f2 + 1).min(n1).min(n2);
            if (self.id.node as usize) < senders {
                sent = true;
                ctx.send(
                    NodeId::new(dst_group, self.id.node),
                    Msg::Entry {
                        id,
                        bytes: bytes.clone(),
                        cert: cert.clone(),
                    },
                );
            }
        }
        if sent {
            self.span(
                ctx.now(),
                telemetry::EventKind::WanTransferStart,
                id,
                bytes.len() as u64,
            );
        }
    }

    fn send_leader_copies(
        &mut self,
        ctx: &mut Ctx<Msg>,
        id: EntryId,
        bytes: &Bytes,
        cert: &QuorumCert,
    ) {
        // Leader one-way replication with the GeoBFT optimization: send to
        // f+1 nodes of each remote group (§VI, Competitors).
        let mut sent = false;
        for dst_group in 0..self.ng() as u32 {
            if dst_group == self.id.group || dst_group == id.gid {
                continue;
            }
            let f = massbft_crypto::cert::max_faulty(self.params.group_sizes[dst_group as usize]);
            for i in 0..(f + 1) as u32 {
                sent = true;
                ctx.send(
                    NodeId::new(dst_group, i),
                    Msg::Entry {
                        id,
                        bytes: bytes.clone(),
                        cert: cert.clone(),
                    },
                );
            }
        }
        if sent {
            self.span(
                ctx.now(),
                telemetry::EventKind::WanTransferStart,
                id,
                bytes.len() as u64,
            );
        }
    }

    // --- global Raft --------------------------------------------------------

    /// Proposes an entry commitment into the entry's own Raft instance
    /// (`instance = id.gid`). Normally the proposer *is* the entry's
    /// group; after a crash takeover the elected cross-group leader
    /// re-proposes rebuilt foreign entries here too (§V-C).
    fn propose_global(&mut self, ctx: &mut Ctx<Msg>, id: EntryId) {
        let digest = {
            let Some(t) = self.tracking.get(&id) else {
                return;
            };
            let Some(bytes) = t.bytes.as_ref() else {
                return;
            };
            entry_digest(bytes)
        };
        let instance = id.gid;
        let my_group = self.id.group;
        let stream = self.params.ng() as u32 + my_group;
        let outputs = {
            let Some(rep) = self.rep.as_mut() else { return };
            if id.gid != my_group {
                if !rep.proposed_foreign.insert(id) {
                    return;
                }
                // Takeover self-stamp: the proposer's own append never
                // loops back through `on_raft_msg`, so without this the
                // entry's timestamp vector would miss our component.
                if rep.stamped.insert((my_group, id)) {
                    let ts = rep.clock;
                    rep.pending_stamps.entry(stream).or_default().push((id, ts));
                }
            }
            // Stamps travel on the dedicated stamp stream (see new()),
            // never on entry instances.
            let cmd = GlobalCmd {
                entry: Some((id, digest)),
                stamps: Vec::new(),
            };
            let Some(raft) = rep.rafts.get_mut(&instance) else {
                return;
            };
            match raft.propose(cmd) {
                Some((_, o)) => o,
                None => return,
            }
        };
        self.handle_raft_outputs(ctx, instance, outputs);
    }

    /// Re-proposes a crashed group's certified-but-uncommitted entries
    /// whose content we hold, if we are the elected takeover leader of
    /// that group's entry instance. Called on takeover election and on
    /// each foreign content arrival; `proposed_foreign` dedups.
    fn propose_foreign_ready(&mut self, ctx: &mut Ctx<Msg>, instance: u32) {
        if instance as usize >= self.ng() || instance == self.id.group {
            return;
        }
        let leads = self
            .rep
            .as_ref()
            .and_then(|r| r.rafts.get(&instance))
            .is_some_and(|r| r.is_leader());
        if !leads {
            return;
        }
        let mut ready: Vec<EntryId> = self
            .tracking
            .iter()
            .filter(|(eid, t)| {
                eid.gid == instance && t.bytes.is_some() && !t.committed && !t.executed
            })
            .map(|(&eid, _)| eid)
            .collect();
        ready.sort(); // HashMap order is not deterministic
        for eid in ready {
            self.propose_global(ctx, eid);
        }
    }

    fn steward_propose(&mut self, ctx: &mut Ctx<Msg>, id: EntryId) {
        let digest = {
            let t = self.tracking.get(&id).expect("known entry");
            entry_digest(t.bytes.as_ref().expect("bytes present"))
        };
        let outputs = {
            let Some(rep) = self.rep.as_mut() else { return };
            let Some(raft) = rep.rafts.get_mut(&0) else {
                return;
            };
            let cmd = GlobalCmd {
                entry: Some((id, digest)),
                stamps: Vec::new(),
            };
            match raft.propose(cmd) {
                Some((_, o)) => o,
                None => return,
            }
        };
        self.handle_raft_outputs(ctx, 0, outputs);
    }

    /// Flush pending stamps on instances we lead but have nothing to
    /// propose on (stamp-only commands).
    fn flush_stamps(&mut self, ctx: &mut Ctx<Msg>) {
        let instances: Vec<u32> = match self.rep.as_ref() {
            Some(rep) => rep
                .pending_stamps
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(&k, _)| k)
                .collect(),
            None => return,
        };
        for inst in instances {
            let outputs = {
                let Some(rep) = self.rep.as_mut() else { return };
                let leads = rep.rafts.get(&inst).map(|r| r.is_leader()).unwrap_or(false);
                if !leads {
                    continue;
                }
                let stamps = rep.pending_stamps.remove(&inst).unwrap_or_default();
                if stamps.is_empty() {
                    continue;
                }
                let cmd = GlobalCmd {
                    entry: None,
                    stamps,
                };
                match rep.rafts.get_mut(&inst).and_then(|r| r.propose(cmd)) {
                    Some((_, o)) => o,
                    None => continue,
                }
            };
            self.handle_raft_outputs(ctx, inst, outputs);
        }
    }

    fn handle_raft_outputs(
        &mut self,
        ctx: &mut Ctx<Msg>,
        instance: u32,
        outputs: Vec<RaftOutput<GlobalCmd>>,
    ) {
        let mut feed: Vec<FeedEvent> = Vec::new();
        for out in outputs {
            match out {
                RaftOutput::Send { to, msg } => {
                    let cert_bytes = match &msg {
                        RaftMsg::AppendEntries { entries, .. } => {
                            let g = instance % self.params.ng() as u32;
                            entries.iter().filter(|e| e.data.entry.is_some()).count()
                                * self.params.cert_size(g)
                        }
                        _ => 0,
                    };
                    // The accept (AppendResp) implies an intra-group
                    // skip-prepare PBFT round (paper §II-A): model it as a
                    // LAN round-trip delay before the reply leaves.
                    let is_resp = matches!(msg, RaftMsg::AppendResp { .. });
                    let dst = self.params.leader_of(to);
                    let m = Msg::Raft {
                        instance,
                        rmsg: msg,
                        cert_bytes,
                    };
                    if is_resp {
                        ctx.send_after(600, dst, m);
                    } else {
                        ctx.send(dst, m);
                    }
                }
                RaftOutput::Committed { data, .. } => {
                    self.on_global_commit(ctx.now(), instance, data, &mut feed);
                }
                RaftOutput::BecameLeader(_) => {
                    self.on_became_instance_leader(ctx, instance);
                }
                RaftOutput::SteppedDown => {}
            }
        }
        if !feed.is_empty() {
            self.broadcast_feed(ctx, feed);
        }
    }

    /// A command committed in `instance`'s Raft log: translate to ordering
    /// feed events (identical at every group, since the log is identical).
    fn on_global_commit(
        &mut self,
        now: Time,
        instance: u32,
        cmd: GlobalCmd,
        feed: &mut Vec<FeedEvent>,
    ) {
        let ng = self.params.ng() as u32;
        if let Some((id, _digest)) = cmd.entry {
            self.span(now, telemetry::EventKind::GlobalCommit, id, instance as u64);
            feed.push(FeedEvent::Committed(id));
            let my_group = self.id.group;
            let overlap = self.params.overlap_vts;
            let mut own_stamp = None;
            if let Some(rep) = self.rep.as_mut() {
                let high = rep.committed_high.entry(id.gid).or_insert(0);
                *high = (*high).max(id.seq);
                rep.unexecuted.insert(id);
                let my_stream = ng + my_group;
                if id.gid == my_group {
                    // Our own entry committed: advance our clock (§V-B).
                    rep.clock = rep.clock.max(id.seq);
                    rep.committed_at.insert(id, now);
                } else if !overlap {
                    // Serial VTS assignment (Fig. 7a): stamp only after the
                    // entry achieves consensus, costing an extra round.
                    if rep.stamped.insert((my_group, id)) {
                        let ts = rep.clock;
                        rep.pending_stamps
                            .entry(my_stream)
                            .or_default()
                            .push((id, ts));
                        own_stamp = Some(ts);
                    }
                }
                // Takeover stamping (§V-C, crashed groups): if we lead
                // foreign stamp streams, stamp every committed entry on
                // their behalf with their frozen clocks — including our
                // own entries, which nobody else will stamp for them.
                let frozen: Vec<(u32, u64)> = rep
                    .frozen_clocks
                    .iter()
                    .filter(|(&g, _)| g != id.gid)
                    .map(|(&g, &clk)| (g, clk))
                    .collect();
                for (g, clk) in frozen {
                    if rep.stamped.insert((g, id)) {
                        rep.pending_stamps
                            .entry(ng + g)
                            .or_default()
                            .push((id, clk));
                    }
                }
            }
            if let Some(ts) = own_stamp {
                self.span(now, telemetry::EventKind::VtsAssigned, id, ts);
            }
        }
        // Stamp commands only travel on stamp streams; the stamping group
        // is the stream owner.
        let stamper = if instance >= ng {
            instance - ng
        } else {
            instance
        };
        for (target, ts) in cmd.stamps {
            feed.push(FeedEvent::Stamp {
                stamper,
                target,
                ts,
            });
        }
    }

    /// Representative learned entries were proposed (Raft append): assign
    /// our clock to them (overlapped VTS assignment, Fig. 7b).
    fn stamp_appended_entries(&mut self, now: Time, appended: Vec<EntryId>) {
        if !matches!(self.params.protocol, Protocol::MassBft) || !self.params.overlap_vts {
            return;
        }
        let my_group = self.id.group;
        let mut stamped: Vec<(EntryId, u64)> = Vec::new();
        {
            let Some(rep) = self.rep.as_mut() else { return };
            for id in appended {
                if id.gid == my_group || !rep.stamped.insert((my_group, id)) {
                    continue; // own entries implicit; dedup retransmissions
                }
                // Stamp with our clock, replicated via our stamp stream.
                // Frozen-clock stamps for taken-over instances are handled at
                // commit time (on_global_commit), which also covers our own
                // entries and entries appended before the takeover.
                let ts = rep.clock;
                let stream = self.params.ng() as u32 + my_group;
                rep.pending_stamps.entry(stream).or_default().push((id, ts));
                if telemetry::enabled() {
                    stamped.push((id, ts));
                }
            }
        }
        for (id, ts) in stamped {
            self.span(now, telemetry::EventKind::VtsAssigned, id, ts);
        }
    }

    /// Crash takeover (§V-C, Crashed Groups): on becoming leader of a
    /// foreign group's *stamp stream*, freeze that group's clock at its
    /// last committed seq and stamp all known-unexecuted entries on its
    /// behalf. (Taking over the entry instance keeps its commit index
    /// advancing but needs no extra action.)
    fn on_became_instance_leader(&mut self, ctx: &mut Ctx<Msg>, instance: u32) {
        let ng = self.params.ng() as u32;
        if instance < ng {
            // Entry-instance takeover: re-propose the crashed group's
            // certified entries we already rebuilt, so their commitment
            // (and hence ordering) keeps progressing.
            self.propose_foreign_ready(ctx, instance);
            return;
        }
        let owner = instance - ng;
        if owner == self.id.group {
            return;
        }
        let Some(rep) = self.rep.as_mut() else { return };
        let frozen = rep.committed_high.get(&owner).copied().unwrap_or(0);
        rep.frozen_clocks.insert(owner, frozen);
        let targets: Vec<EntryId> = rep
            .unexecuted
            .iter()
            .copied()
            .filter(|e| e.gid != owner)
            .collect();
        for id in targets {
            if rep.stamped.insert((owner, id)) {
                rep.pending_stamps
                    .entry(instance)
                    .or_default()
                    .push((id, frozen));
            }
        }
    }

    fn broadcast_feed(&mut self, ctx: &mut Ctx<Msg>, events: Vec<FeedEvent>) {
        // Apply locally first, then LAN-broadcast to the group.
        let peers = self.other_group_members();
        ctx.send_many(
            peers,
            Msg::Feed {
                events: events.clone(),
            },
        );
        // Orphan feed (§V-C): having taken over a crashed group's stamp
        // stream, we are the closest thing that group's survivors have to
        // a representative — feed them commit events, or their acting
        // representative never drains its pipeline window and the group
        // stops proposing. Commits only: applying a commit is monotone
        // (it merely unlocks emission), but stamps are only sound when
        // delivered in stream-log order, which the group's own replay
        // guarantees and a skip-ahead feed would violate — the jumped
        // inference bounds would let survivors order entries differently
        // and fork the execution log.
        if let Some(rep) = self.rep.as_ref() {
            let orphans: Vec<u32> = rep
                .frozen_clocks
                .keys()
                .copied()
                .filter(|&g| g != self.id.group)
                .collect();
            if !orphans.is_empty() {
                let commits: Vec<FeedEvent> = events
                    .iter()
                    .filter(|e| matches!(e, FeedEvent::Committed(_)))
                    .cloned()
                    .collect();
                if !commits.is_empty() {
                    let mut orphan_peers = Vec::new();
                    for g in orphans {
                        orphan_peers.extend(self.group_nodes(g));
                    }
                    ctx.send_many(orphan_peers, Msg::Feed { events: commits });
                }
            }
        }
        self.apply_feed(ctx, events);
    }

    fn apply_feed(&mut self, ctx: &mut Ctx<Msg>, events: Vec<FeedEvent>) {
        for ev in events {
            match ev {
                FeedEvent::Committed(id) => self.mark_committed(id),
                FeedEvent::Stamp {
                    stamper,
                    target,
                    ts,
                } => {
                    if let OrderingState::Vts(eng) = &mut self.ordering {
                        eng.on_timestamp(stamper, target, ts);
                    }
                }
            }
        }
        self.drain_ordering(ctx.now());
        self.try_execute(ctx);
    }

    fn mark_committed(&mut self, id: EntryId) {
        let t = self.tracking.entry(id).or_default();
        if t.committed {
            return;
        }
        t.committed = true;
        // An acting representative drains its pipeline window on commit:
        // it cannot count on ever executing (stamps fed out while the
        // group had no representative are unrecoverable), and the window
        // must not wedge the whole group's proposal stream.
        if let Some(rep) = self.rep.as_mut() {
            if rep.acting && id.gid == self.id.group {
                rep.in_flight.remove(&id);
            }
        }
        match &mut self.ordering {
            OrderingState::Vts(eng) => eng.on_entry_committed(id),
            OrderingState::Round(_) => {} // fed when content also present
            OrderingState::Log(q) => q.push_back(id),
        }
        self.feed_round_if_complete(id);
    }

    /// Round ordering needs both the commit and the content.
    fn feed_round_if_complete(&mut self, id: EntryId) {
        let OrderingState::Round(r) = &mut self.ordering else {
            return;
        };
        let Some(t) = self.tracking.get_mut(&id) else {
            return;
        };
        if t.committed && t.bytes.is_some() && !t.fed_to_round {
            t.fed_to_round = true;
            r.on_entry(id);
        }
    }

    fn drain_ordering(&mut self, now: Time) {
        loop {
            let next = match &mut self.ordering {
                OrderingState::Vts(eng) => eng.pop_ready(),
                OrderingState::Round(r) => r.pop_ready(),
                OrderingState::Log(q) => q.pop_front(),
            };
            let Some(id) = next else { break };
            if id.gid == self.id.group {
                let mut first = false;
                if let Some(rep) = self.rep.as_mut() {
                    first = !rep.ordered_at.contains_key(&id);
                    rep.ordered_at.entry(id).or_insert(now);
                }
                if first {
                    self.span(now, telemetry::EventKind::Ordered, id, 0);
                }
            }
            self.exec_queue.push_back(id);
        }
    }

    // --- execution ----------------------------------------------------------

    /// Drains every execution-ready entry off the queue front in one
    /// pass (pop-and-take, no rescans) and hands the whole run to the
    /// pipeline in a single batched call. The drain stops at the first
    /// entry whose content hasn't arrived — order must be preserved.
    fn try_execute(&mut self, ctx: &mut Ctx<Msg>) {
        let mut ready: Vec<(EntryId, Bytes)> = Vec::new();
        while let Some(&id) = self.exec_queue.front() {
            let runnable = self
                .tracking
                .get(&id)
                .is_some_and(|t| t.bytes.is_some() && !t.executed);
            if !runnable {
                // Already-executed duplicates are dropped; missing content
                // stalls the queue (order must be preserved).
                if self.tracking.get(&id).is_some_and(|t| t.executed) {
                    self.exec_queue.pop_front();
                    continue;
                }
                break;
            }
            self.exec_queue.pop_front();
            let bytes = self
                .tracking
                .get_mut(&id)
                .and_then(|t| t.bytes.take())
                .expect("checked above");
            ready.push((id, bytes));
        }
        if !ready.is_empty() {
            self.execute_ready(ctx, ready);
        }
    }

    /// Executes a drained run of entries: one pipeline call for the
    /// whole run (decoded up front), then per-entry ledger/latency/
    /// archive bookkeeping. Replication-state cleanup that used to
    /// rescan per entry (`stamped.retain`) now does a single pass over
    /// the whole executed set.
    fn execute_ready(&mut self, ctx: &mut Ctx<Msg>, ready: Vec<(EntryId, Bytes)>) {
        let mut prepared: Vec<PreparedEntry> = Vec::with_capacity(ready.len());
        let mut contents: Vec<(EntryId, Bytes)> = Vec::with_capacity(ready.len());
        for (id, bytes) in ready {
            let Some((decoded_id, requests)) = decode_batch(&bytes) else {
                continue;
            };
            debug_assert_eq!(decoded_id, id);
            let txns: Vec<Request> = requests
                .iter()
                .filter_map(|r| Request::decode(r).ok())
                .collect();
            prepared.push(PreparedEntry { id, txns });
            contents.push((id, bytes));
        }
        if prepared.is_empty() {
            return;
        }
        let results = self.pipeline.execute_entries(prepared);

        // Replication-state cleanup, one pass for the whole run.
        if let Some(rep) = self.rep.as_mut() {
            for (id, _) in &contents {
                rep.unexecuted.remove(id);
                rep.accept_tally.remove(id);
            }
            if contents.len() == 1 {
                let id = contents[0].0;
                rep.stamped.retain(|&(_, e)| e != id);
            } else {
                let executed: BTreeSet<EntryId> = contents.iter().map(|(id, _)| *id).collect();
                rep.stamped.retain(|&(_, e)| !executed.contains(&e));
            }
        }

        for (result, (id, bytes)) in results.into_iter().zip(&contents) {
            self.record_executed(ctx, *id, bytes, result);
        }
    }

    /// Per-entry bookkeeping after the pipeline has run an entry's batch.
    fn record_executed(
        &mut self,
        ctx: &mut Ctx<Msg>,
        id: EntryId,
        bytes: &Bytes,
        result: crate::exec::EntryResult,
    ) {
        ctx.spend_cpu(result.executed as Time * self.params.exec_us);
        self.executed_txns += result.committed as u64;
        self.executed_entries += 1;
        self.executed_by_group[id.gid as usize] += result.committed as u64;
        self.exec_log.push(id);
        self.ledger
            .append(id, entry_digest(bytes), result.state_fingerprint);
        self.span(
            ctx.now(),
            telemetry::EventKind::Executed,
            id,
            result.committed as u64,
        );

        let my_group = self.id.group;
        let mut latency_sample = None;
        let mut phases = None;
        if let Some(rep) = self.rep.as_mut() {
            if id.gid == my_group {
                rep.in_flight.remove(&id);
                let created = rep.created_at.remove(&id);
                let certified = rep.certified_at.remove(&id);
                let committed = rep.committed_at.remove(&id);
                let ordered = rep.ordered_at.remove(&id);
                if let Some(created) = created {
                    latency_sample = Some(ctx.now().saturating_sub(created));
                }
                if let (Some(cr), Some(ce)) = (created, certified) {
                    let co = committed.unwrap_or(ce);
                    let or = ordered.unwrap_or(co).max(co);
                    phases = Some([
                        ce.saturating_sub(cr),
                        co.saturating_sub(ce),
                        or.saturating_sub(co),
                        ctx.now().saturating_sub(or),
                    ]);
                }
            }
        }
        if let Some(l) = latency_sample {
            self.latency.record(l);
            commit_latency_histogram().record(l);
        }
        if let Some(p) = phases {
            for (acc, v) in self.phase_sums.iter_mut().zip(p) {
                *acc += v;
            }
            self.phase_count += 1;
        }
        // GC replication state; keep a small executed marker so late
        // chunks/copies don't resurrect the entry.
        if let Some(asm) = self.assemblers.get_mut(&id.gid) {
            asm.gc(id);
        }
        let cert = {
            let t = self.tracking.entry(id).or_default();
            let cert = t.cert.take();
            t.bytes = None;
            t.committed = true;
            t.fed_to_round = true;
            t.executed = true;
            cert
        };
        // Keep recent entries for pull-based repair (Lemma V.1): a node
        // that committed an entry it cannot rebuild (origin crashed
        // mid-replication) fetches it from a peer that executed it.
        if let Some(cert) = cert {
            const ARCHIVE_DEPTH: usize = 2048;
            self.archive.insert(id, (bytes.clone(), cert));
            self.archive_order.push_back(id);
            while self.archive_order.len() > ARCHIVE_DEPTH {
                if let Some(old) = self.archive_order.pop_front() {
                    self.archive.remove(&old);
                }
            }
        }
    }

    // --- message handlers -----------------------------------------------------

    fn on_chunk(&mut self, ctx: &mut Ctx<Msg>, from: NodeId, chunk: ChunkMsg, cert: QuorumCert) {
        let origin_entry = chunk.entry;
        let origin = chunk.entry.gid;
        if origin == self.id.group {
            return; // we hold our own entries
        }
        if self
            .tracking
            .get(&chunk.entry)
            .is_some_and(|t| t.bytes.is_some() || t.executed)
        {
            return; // already have it / executed
        }
        let from_wan = from.group == origin;
        // Byzantine receivers suppress honest re-shares (§VI-E); the
        // tampered chunks they would inject already come from Byzantine
        // senders' encodings.
        let byzantine = self.is_byzantine(ctx.now());
        let outcome = {
            let Some(asm) = self.assemblers.get_mut(&origin) else {
                return;
            };
            asm.on_chunk(chunk.clone(), &cert)
        };
        match outcome {
            ChunkOutcome::Accepted => {
                if from_wan && !byzantine {
                    // LAN re-share so every member can rebuild (§IV-B).
                    let peers = self.other_group_members();
                    ctx.send_many(peers, Msg::Chunk { chunk, cert });
                }
            }
            ChunkOutcome::Rebuilt(bytes) => {
                if from_wan && !byzantine {
                    let peers = self.other_group_members();
                    ctx.send_many(
                        peers,
                        Msg::Chunk {
                            chunk,
                            cert: cert.clone(),
                        },
                    );
                }
                self.tracking.entry(origin_entry).or_default().cert = Some(cert);
                self.span(
                    ctx.now(),
                    telemetry::EventKind::WanTransferDone,
                    origin_entry,
                    bytes.len() as u64,
                );
                self.span(
                    ctx.now(),
                    telemetry::EventKind::ChunkRebuilt,
                    origin_entry,
                    bytes.len() as u64,
                );
                self.on_entry_content(ctx, bytes.into());
            }
            ChunkOutcome::Rejected(_) => {}
        }
    }

    fn on_entry_copy(
        &mut self,
        ctx: &mut Ctx<Msg>,
        from: NodeId,
        id: EntryId,
        bytes: Bytes,
        cert: QuorumCert,
    ) {
        // Steward master: a forwarded entry from another group's leader.
        if self.params.protocol.single_master()
            && self.id == self.params.leader_of(0)
            && id.gid != 0
            && from == self.params.leader_of(id.gid)
        {
            let fresh = {
                let t = self.tracking.entry(id).or_default();
                let fresh = t.bytes.is_none() && !t.executed;
                if fresh {
                    t.bytes = Some(bytes.clone());
                }
                fresh
            };
            if fresh {
                self.send_leader_copies(ctx, id, &bytes, &cert);
                // The master's own group also needs the content.
                let peers = self.other_group_members();
                ctx.send_many(
                    peers,
                    Msg::Entry {
                        id,
                        bytes: bytes.clone(),
                        cert: cert.clone(),
                    },
                );
                self.steward_propose(ctx, id);
                self.try_execute(ctx);
            }
            return;
        }
        if id.gid == self.id.group {
            return; // own-group entries arrive via local PBFT
        }
        if cert
            .validate_for(&entry_digest(&bytes), &self.registry)
            .is_err()
        {
            return; // tampered copy
        }
        let already = {
            let t = self.tracking.entry(id).or_default();
            let had = t.bytes.is_some() || t.executed;
            if !had {
                t.bytes = Some(bytes.clone());
            }
            if t.cert.is_none() {
                t.cert = Some(cert.clone());
            }
            had
        };
        if already {
            return;
        }
        // First receipt from WAN: forward over LAN to the whole group.
        if from.group != self.id.group {
            self.span(
                ctx.now(),
                telemetry::EventKind::WanTransferDone,
                id,
                bytes.len() as u64,
            );
            let peers = self.other_group_members();
            ctx.send_many(
                peers,
                Msg::Entry {
                    id,
                    bytes: bytes.clone(),
                    cert,
                },
            );
        }
        self.on_entry_content(ctx, bytes);
    }

    /// Entry content became available (rebuilt or copied).
    fn on_entry_content(&mut self, ctx: &mut Ctx<Msg>, bytes: Bytes) {
        let Some((id, _)) = decode_batch(&bytes) else {
            return;
        };
        {
            let t = self.tracking.entry(id).or_default();
            if t.bytes.is_none() && !t.executed {
                t.bytes = Some(bytes);
            }
        }
        // Replay Raft appends that were held awaiting this content.
        self.replay_held_appends(ctx);
        // If we lead this group's entry instance (crash takeover), the
        // freshly rebuilt entry may be waiting on us to propose it.
        if id.gid != self.id.group {
            self.propose_foreign_ready(ctx, id.gid);
        }
        if !self.params.protocol.uses_raft() {
            // GeoBFT: content arrival is commitment.
            self.mark_committed(id);
        }
        self.feed_round_if_complete(id);
        self.drain_ordering(ctx.now());
        self.try_execute(ctx);
    }

    fn on_raft_msg(
        &mut self,
        ctx: &mut Ctx<Msg>,
        from: NodeId,
        instance: u32,
        rmsg: RaftMsg<GlobalCmd>,
    ) {
        if !self.is_rep() {
            return;
        }
        // Track appended entries to stamp (overlapped VTS) and monitor
        // liveness of the instance leader.
        let appended: Vec<EntryId> = match &rmsg {
            RaftMsg::AppendEntries { entries, .. } => entries
                .iter()
                .filter_map(|e| e.data.entry.map(|(id, _)| id))
                .collect(),
            _ => Vec::new(),
        };
        if matches!(rmsg, RaftMsg::AppendEntries { .. }) {
            if let Some(rep) = self.rep.as_mut() {
                rep.last_append.insert(instance, ctx.now());
            }
            // Accept gating (Lemma V.1): a group must not accept an entry
            // that is not safely replicated. "Safely" means either we hold
            // the content, or `f_g + 1` groups provably do (the §V-C
            // direct-accept tally plus pull repair make the entry
            // recoverable) — otherwise a commit could reference an entry
            // nobody can supply after the origin crashes. Held appends
            // replay when content or the tally arrives; holding the whole
            // append (not just the accept) also keeps stamps from
            // committing ahead of an unsafe entry in the same log.
            let missing = appended.iter().any(|id| !self.entry_safely_replicated(*id));
            if missing {
                self.held_appends
                    .entry(instance)
                    .or_default()
                    .push((from, rmsg));
                return;
            }
        }
        let outputs = {
            let Some(rep) = self.rep.as_mut() else { return };
            let Some(raft) = rep.rafts.get_mut(&instance) else {
                return;
            };
            raft.step(from.group, rmsg)
        };
        // Direct accept broadcast (§V-C): we hold these entries (the
        // gating above guarantees it), so tell every representative —
        // slow groups use the tally to stamp and order without waiting
        // for their own copies.
        if matches!(self.params.protocol, Protocol::MassBft) && !appended.is_empty() {
            let notice = Msg::AcceptNotice {
                from_group: self.id.group,
                entries: appended.clone(),
            };
            let reps: Vec<NodeId> = (0..self.ng() as u32)
                .filter(|&g| g != self.id.group)
                .map(|g| self.params.leader_of(g))
                .collect();
            ctx.send_many(reps, notice);
            // Count our own acceptance locally too.
            self.on_accept_notice(ctx, self.id.group, appended.clone());
        }
        self.stamp_appended_entries(ctx.now(), appended);
        self.handle_raft_outputs(ctx, instance, outputs);
    }

    /// Whether `id` is locally held, executed, or known held by a
    /// majority of groups (committed implies a majority accepted under
    /// the gating rule).
    fn entry_safely_replicated(&self, id: EntryId) -> bool {
        if id.gid == self.id.group {
            return true; // own entries arrive via local PBFT
        }
        self.tracking
            .get(&id)
            .is_some_and(|t| t.bytes.is_some() || t.executed || t.committed)
    }

    /// Tallies a direct accept notice; at `f_g + 1` holders (counting the
    /// proposer implicitly) the entry is provably replicated: stamp it
    /// with our clock and mark it committed, without waiting for our own
    /// copy (§V-C, slow receiver groups).
    fn on_accept_notice(&mut self, ctx: &mut Ctx<Msg>, from_group: u32, entries: Vec<EntryId>) {
        if !self.is_rep() || !matches!(self.params.protocol, Protocol::MassBft) {
            return;
        }
        let ng = self.ng();
        let quorum = ng / 2 + 1; // f_g + 1 with n_g >= 2 f_g + 1
        let my_group = self.id.group;
        let mut replicated: Vec<EntryId> = Vec::new();
        {
            let Some(rep) = self.rep.as_mut() else { return };
            for id in entries {
                let tally = rep.accept_tally.entry(id).or_default();
                tally.insert(from_group);
                tally.insert(id.gid); // the proposer holds its own entry
                if tally.len() >= quorum {
                    replicated.push(id);
                }
            }
        }
        let mut feed = Vec::new();
        for id in replicated {
            // Stamp without content (the §V-C fast path).
            let mut fast_stamp = None;
            {
                let my_stream = ng as u32 + my_group;
                let Some(rep) = self.rep.as_mut() else { return };
                rep.accept_tally.remove(&id);
                if id.gid != my_group && rep.stamped.insert((my_group, id)) {
                    let ts = rep.clock;
                    rep.pending_stamps
                        .entry(my_stream)
                        .or_default()
                        .push((id, ts));
                    fast_stamp = Some(ts);
                }
            }
            if let Some(ts) = fast_stamp {
                self.span(ctx.now(), telemetry::EventKind::VtsAssigned, id, ts);
            }
            // Majority-accepted == committed under Raft's election
            // restriction; surface it to the ordering layer now.
            let newly = !self.tracking.get(&id).is_some_and(|t| t.committed);
            if newly {
                feed.push(FeedEvent::Committed(id));
                if let Some(rep) = self.rep.as_mut() {
                    let high = rep.committed_high.entry(id.gid).or_insert(0);
                    *high = (*high).max(id.seq);
                    rep.unexecuted.insert(id);
                }
            }
        }
        if !feed.is_empty() {
            self.broadcast_feed(ctx, feed);
        }
        // Newly safe entries may unblock held appends in any instance.
        self.replay_held_appends(ctx);
        self.flush_stamps(ctx);
    }

    /// Re-dispatches every held append whose carried entries are all safe
    /// now; still-unsafe ones re-hold themselves.
    fn replay_held_appends(&mut self, ctx: &mut Ctx<Msg>) {
        let held: Vec<_> = self.held_appends.drain().collect();
        for (instance, msgs) in held {
            for (from, rmsg) in msgs {
                self.on_raft_msg(ctx, from, instance, rmsg);
            }
        }
    }

    /// Serves a repair request from our archive or live tracking state.
    fn on_entry_request(&mut self, ctx: &mut Ctx<Msg>, from: NodeId, id: EntryId) {
        let reply = self
            .archive
            .get(&id)
            .map(|(b, c)| (b.clone(), c.clone()))
            .or_else(|| {
                let t = self.tracking.get(&id)?;
                Some((t.bytes.clone()?, t.cert.clone()?))
            });
        if let Some((bytes, cert)) = reply {
            ctx.send(from, Msg::Entry { id, bytes, cert });
        }
    }

    /// Repair tick: if the execution queue has been stalled on the same
    /// missing entry across two ticks, pull it from peers (Lemma V.1).
    fn on_repair_timer(&mut self, ctx: &mut Ctx<Msg>) {
        let stalled = self.exec_queue.front().copied().filter(|id| {
            !self
                .tracking
                .get(id)
                .is_some_and(|t| t.bytes.is_some() || t.executed)
        });
        if let Some(id) = stalled {
            if self.last_stalled == Some(id) {
                // Ask our own representative first (LAN), then one node of
                // every other group (WAN) — whoever has it replies.
                let mut targets = vec![self.params.leader_of(self.id.group)];
                for g in 0..self.ng() as u32 {
                    if g != self.id.group {
                        targets.push(self.params.leader_of(g));
                    }
                }
                for t in targets {
                    if t != self.id {
                        ctx.send(t, Msg::EntryRequest { id });
                    }
                }
            }
        }
        self.last_stalled = stalled;
        ctx.set_timer(self.params.repair_interval_us, T_REPAIR);
    }

    fn on_epoch_close(&mut self, group: u32, epoch: u64) {
        let Some(rep) = self.rep.as_mut() else { return };
        rep.epoch_seals.entry(epoch).or_default().insert(group);
    }

    // --- timers ----------------------------------------------------------

    fn on_batch_timer(&mut self, ctx: &mut Ctx<Msg>) {
        self.try_batch(ctx);
        ctx.set_timer(self.params.batch_timeout_us, T_BATCH);
    }

    fn on_heartbeat_timer(&mut self, ctx: &mut Ctx<Msg>) {
        let instances: Vec<u32> = self
            .rep
            .as_ref()
            .map(|r| r.rafts.keys().copied().collect())
            .unwrap_or_default();
        for inst in instances {
            let outputs = {
                let Some(rep) = self.rep.as_mut() else { return };
                let Some(raft) = rep.rafts.get_mut(&inst) else {
                    continue;
                };
                // Bound log memory: applied entries live in the tracking/
                // archive layers, so the Raft log only needs a
                // retransmission margin (stragglers use entry repair).
                raft.compact_to_applied(256);
                if !raft.is_leader() {
                    continue;
                }
                raft.on_heartbeat_timeout()
            };
            self.handle_raft_outputs(ctx, inst, outputs);
        }
        self.flush_stamps(ctx);
        ctx.set_timer(self.params.heartbeat_us, T_HEARTBEAT);
    }

    fn on_election_timer(&mut self, ctx: &mut Ctx<Msg>) {
        let now = ctx.now();
        let timeout = self.params.election_timeout_us;
        // Stagger by group id so two survivors never cross the timeout
        // threshold within the same check period and split votes forever
        // (the stagger must exceed the check period, timeout/2).
        let my_stagger = (self.id.group as u64) * (self.params.election_timeout_us * 3 / 4);
        let instances: Vec<u32> = self
            .rep
            .as_ref()
            .map(|r| r.rafts.keys().copied().collect())
            .unwrap_or_default();
        for inst in instances {
            let should_elect = {
                let Some(rep) = self.rep.as_ref() else { return };
                let Some(raft) = rep.rafts.get(&inst) else {
                    continue;
                };
                let last = rep.last_append.get(&inst).copied().unwrap_or(0);
                !raft.is_leader() && now.saturating_sub(last) > timeout + my_stagger
            };
            if should_elect {
                let outputs = {
                    let Some(rep) = self.rep.as_mut() else { return };
                    let Some(raft) = rep.rafts.get_mut(&inst) else {
                        continue;
                    };
                    raft.on_election_timeout()
                };
                if let Some(rep) = self.rep.as_mut() {
                    rep.last_append.insert(inst, now);
                }
                self.handle_raft_outputs(ctx, inst, outputs);
            }
        }
        ctx.set_timer(self.params.election_timeout_us / 2, T_ELECTION);
    }

    fn on_stamp_flush_timer(&mut self, ctx: &mut Ctx<Msg>) {
        self.flush_stamps(ctx);
        ctx.set_timer(10 * MILLISECOND, T_STAMP_FLUSH);
    }

    /// Primary liveness beacon: lets backups distinguish "idle group"
    /// from "dead or mute primary". Routed through `handle_pbft_outputs`
    /// so a silenced primary's heartbeats are suppressed like everything
    /// else — exactly the failure the stall detector must catch.
    fn on_pbft_heartbeat_timer(&mut self, ctx: &mut Ctx<Msg>) {
        if let Some(hb) = self.pbft.heartbeat() {
            self.handle_pbft_outputs(ctx, vec![PbftOutput::Broadcast(hb)]);
        }
        ctx.set_timer(self.params.view_timeout_us / 4, T_PBFT_HB);
    }

    /// View-change stall detector. A backup that has seen no PBFT
    /// progress — no commit, no view entry, no idle heartbeat from the
    /// current primary — for a full (backed-off) view timeout votes to
    /// evict the primary. The primary itself is exempt: it cannot vote
    /// itself out, and a lone faulty backup cannot force a view change
    /// (`f + 1` view-change votes are required to join).
    fn on_view_timer(&mut self, ctx: &mut Ctx<Msg>) {
        let now = ctx.now();
        if !self.pbft.is_primary()
            && now.saturating_sub(self.last_pbft_progress) > self.view_timeout_cur
        {
            let marker = EntryId::new(self.id.group, 0);
            let view = self.pbft.view();
            self.span(now, telemetry::EventKind::ViewStallDetected, marker, view);
            self.span(now, telemetry::EventKind::ViewChangeStarted, marker, view);
            let outputs = self.pbft.on_view_timeout();
            self.handle_pbft_outputs(ctx, outputs);
            // Exponential backoff (capped): overlapping faults may need
            // several escalations before landing on a live primary, and
            // each must leave room for the previous round to complete.
            self.view_timeout_cur =
                (self.view_timeout_cur * 2).min(self.params.view_timeout_max_us);
            self.last_pbft_progress = now;
        }
        ctx.set_timer(self.view_timeout_cur / 2, T_VIEW);
    }

    fn on_epoch_timer(&mut self, ctx: &mut Ctx<Msg>) {
        if matches!(self.params.protocol, Protocol::Iss) {
            let sealed_epoch = ctx.now() / self.params.epoch_us;
            if sealed_epoch > 0 {
                let msg = Msg::EpochClose {
                    group: self.id.group,
                    epoch: sealed_epoch - 1,
                };
                let leaders: Vec<NodeId> = (0..self.ng() as u32)
                    .filter(|&g| g != self.id.group)
                    .map(|g| self.params.leader_of(g))
                    .collect();
                ctx.send_many(leaders, msg);
                self.on_epoch_close(self.id.group, sealed_epoch - 1);
            }
        }
        ctx.set_timer(self.params.epoch_us, T_EPOCH);
    }
}

impl Actor for Node {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        ctx.set_timer(self.params.repair_interval_us, T_REPAIR);
        // Every node of a multi-node group runs the view-change driver;
        // the primary additionally beacons liveness heartbeats.
        if self.params.group_sizes[self.id.group as usize] > 1 {
            ctx.set_timer(self.view_timeout_cur / 2, T_VIEW);
            ctx.set_timer(self.params.view_timeout_us / 4, T_PBFT_HB);
        }
        if self.is_rep() {
            // Stagger the first batch slightly per group to avoid
            // artificial phase-lock between groups.
            let stagger = (self.id.group as u64) * 777;
            ctx.set_timer(self.params.batch_timeout_us + stagger, T_BATCH);
            if self.params.protocol.uses_raft() {
                ctx.set_timer(self.params.heartbeat_us, T_HEARTBEAT);
                ctx.set_timer(self.params.election_timeout_us, T_ELECTION);
                if matches!(self.params.protocol, Protocol::MassBft) {
                    ctx.set_timer(10 * MILLISECOND, T_STAMP_FLUSH);
                }
            }
            if matches!(self.params.protocol, Protocol::Iss) {
                ctx.set_timer(self.params.epoch_us, T_EPOCH);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Pbft(m) => {
                // Learn the seq → entry mapping from incoming pre-prepares
                // so this replica's own prepare/commit broadcasts can be
                // attributed (see note_pbft_phase), and track the group's
                // sequence high-water mark for acting-rep continuation.
                if let PbftMsg::PrePrepare { seq, payload, .. } = &m {
                    if let Some(id) = peek_entry_id(payload) {
                        if telemetry::enabled() {
                            self.pbft_entry_of_seq.insert(*seq, id);
                        }
                        if id.gid == self.id.group {
                            self.own_seq_high = self.own_seq_high.max(id.seq);
                        }
                    }
                }
                // An idle heartbeat from the current view's primary counts
                // as progress — but only while nothing is pending. A
                // primary that heartbeats while its proposals cannot
                // commit (equivocation) must still be evicted.
                if let PbftMsg::Heartbeat { view } = &m {
                    if *view == self.pbft.view()
                        && from.node == self.pbft.primary()
                        && !self.pbft.has_pending()
                    {
                        self.last_pbft_progress = ctx.now();
                    }
                }
                let outputs = self.pbft.on_message(from.node, m);
                self.handle_pbft_outputs(ctx, outputs);
            }
            Msg::Chunk { chunk, cert } => self.on_chunk(ctx, from, chunk, cert),
            Msg::Entry { id, bytes, cert } => self.on_entry_copy(ctx, from, id, bytes, cert),
            Msg::Raft { instance, rmsg, .. } => self.on_raft_msg(ctx, from, instance, rmsg),
            Msg::Feed { events } => self.apply_feed(ctx, events),
            Msg::EntryRequest { id } => self.on_entry_request(ctx, from, id),
            Msg::AcceptNotice {
                from_group,
                entries,
            } => self.on_accept_notice(ctx, from_group, entries),
            Msg::EpochClose { group, epoch } => self.on_epoch_close(group, epoch),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, token: u64) {
        match token {
            T_BATCH => self.on_batch_timer(ctx),
            T_HEARTBEAT => self.on_heartbeat_timer(ctx),
            T_ELECTION => self.on_election_timer(ctx),
            T_STAMP_FLUSH => self.on_stamp_flush_timer(ctx),
            T_EPOCH => self.on_epoch_timer(ctx),
            T_REPAIR => self.on_repair_timer(ctx),
            T_VIEW => self.on_view_timer(ctx),
            T_PBFT_HB => self.on_pbft_heartbeat_timer(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names_and_capabilities() {
        assert_eq!(Protocol::MassBft.name(), "MassBFT");
        assert_eq!(Protocol::EncodedBijective.name(), "EBR");
        assert_eq!(Protocol::BijectiveOnly.name(), "BR");
        assert!(Protocol::MassBft.uses_chunks());
        assert!(Protocol::EncodedBijective.uses_chunks());
        assert!(!Protocol::Baseline.uses_chunks());
        assert!(!Protocol::GeoBft.uses_raft());
        assert!(Protocol::Baseline.uses_raft());
        assert!(Protocol::Steward.single_master());
        assert!(!Protocol::MassBft.single_master());
    }

    #[test]
    fn params_defaults_match_paper_setup() {
        let p = ProtocolParams::new(Protocol::MassBft, &[7, 7, 7]);
        assert_eq!(p.batch_timeout_us, 20 * MILLISECOND); // §VI: fixed 20 ms
        assert_eq!(p.ng(), 3);
        assert_eq!(p.leader_of(2), NodeId::new(2, 0));
        assert!(p.overlap_vts);
        // cert for n=7: 2f+1 = 5 signatures.
        assert_eq!(p.cert_size(0), 5 * 72 + 40);
    }

    #[test]
    fn msg_wire_sizes_scale_with_content() {
        let registry = KeyRegistry::generate(1, &[4]);
        let id = EntryId::new(0, 1);
        let bytes = encode_batch(id, &[vec![0u8; 1000]]);
        let cert = QuorumCert::assemble(
            entry_digest(&bytes),
            0,
            &registry,
            (0..3).map(|i| massbft_crypto::keys::NodeId::new(0, i)),
        );
        let entry_msg = Msg::Entry {
            id,
            bytes: bytes.clone().into(),
            cert: cert.clone(),
        };
        assert!(
            entry_msg.wire_size() > 1000,
            "entry copy carries the payload"
        );

        let small = Msg::EntryRequest { id };
        assert!(small.wire_size() <= 64, "requests are control-sized");

        let feed = Msg::Feed {
            events: vec![
                FeedEvent::Committed(id),
                FeedEvent::Stamp {
                    stamper: 1,
                    target: id,
                    ts: 3,
                },
            ],
        };
        assert!(feed.wire_size() < 200);

        // Raft append with one entry command: dominated by cert bytes.
        let cmd = GlobalCmd {
            entry: Some((id, entry_digest(&bytes))),
            stamps: vec![(id, 5)],
        };
        let append = Msg::Raft {
            instance: 0,
            rmsg: RaftMsg::AppendEntries {
                term: 1,
                prev_index: 0,
                prev_term: 0,
                entries: vec![massbft_consensus::raft::LogEntry { term: 1, data: cmd }],
                leader_commit: 0,
            },
            cert_bytes: 256,
        };
        let size = append.wire_size();
        assert!(
            size > 256 && size < 1500,
            "append is control-lane sized: {size}"
        );
    }

    #[test]
    fn global_cmd_wire_size() {
        let id = EntryId::new(0, 1);
        let digest = Digest::of(b"x");
        let with_entry = GlobalCmd {
            entry: Some((id, digest)),
            stamps: vec![],
        };
        let stamps_only = GlobalCmd {
            entry: None,
            stamps: vec![(id, 1), (id, 2)],
        };
        assert!(
            crate::wire::global_cmd_wire(&with_entry)
                > crate::wire::global_cmd_wire(&stamps_only) - 40
        );
        assert_eq!(crate::wire::global_cmd_wire(&stamps_only), 2 * 20 + 24);
    }

    #[test]
    fn node_construction_shapes() {
        let params = ProtocolParams::new(Protocol::MassBft, &[4, 7]);
        let registry = KeyRegistry::generate(params.seed, &params.group_sizes);
        let rep = Node::new(NodeId::new(0, 0), params.clone(), registry.clone());
        assert!(rep.is_rep());
        assert_eq!(rep.executed_txns(), 0);
        assert_eq!(rep.exec_log().len(), 0);
        assert_eq!(rep.ledger().height(), 0);
        // Chunk assembler exists exactly for the other group.
        assert_eq!(rep.assemblers.len(), 1);
        assert!(rep.assemblers.contains_key(&1));

        let follower = Node::new(NodeId::new(1, 3), params, registry);
        assert!(!follower.is_rep());
        assert_eq!(follower.assemblers.len(), 1);
        assert!(follower.assemblers.contains_key(&0));
    }

    #[test]
    fn byzantine_flag_respects_activation_time() {
        let mut params = ProtocolParams::new(Protocol::MassBft, &[4]);
        params
            .adversaries
            .push(AdversarySpec::new(NodeId::new(0, 3), Strategy::TamperChunks).from_us(1000));
        let registry = KeyRegistry::generate(params.seed, &params.group_sizes);
        let node = Node::new(NodeId::new(0, 3), params.clone(), registry.clone());
        assert!(!node.is_byzantine(999));
        assert!(node.is_byzantine(1000));
        let honest = Node::new(NodeId::new(0, 1), params, registry);
        assert!(!honest.is_byzantine(5000));
    }

    #[test]
    fn strategy_predicates_are_per_strategy() {
        let mut params = ProtocolParams::new(Protocol::MassBft, &[4]);
        params
            .adversaries
            .push(AdversarySpec::new(NodeId::new(0, 0), Strategy::SilentPrimary).until_us(500));
        params
            .adversaries
            .push(AdversarySpec::new(NodeId::new(0, 0), Strategy::WithholdChunks).from_us(500));
        let registry = KeyRegistry::generate(params.seed, &params.group_sizes);
        let node = Node::new(NodeId::new(0, 0), params, registry);
        assert!(node.silenced(0));
        assert!(!node.silenced(500));
        assert!(!node.withholds_shares(499));
        assert!(node.withholds_shares(500));
        assert!(!node.is_byzantine(0));
    }

    #[test]
    fn view_timeout_defaults_and_backoff_cap() {
        let p = ProtocolParams::new(Protocol::MassBft, &[4]);
        assert_eq!(p.view_timeout_us, 500 * MILLISECOND);
        assert_eq!(p.view_timeout_max_us, 2000 * MILLISECOND);
        assert_eq!(p.repair_interval_us, 500 * MILLISECOND);
        let registry = KeyRegistry::generate(p.seed, &p.group_sizes);
        let node = Node::new(NodeId::new(0, 1), p, registry);
        assert_eq!(node.view_timeout_cur, node.params.view_timeout_us);
        assert_eq!(node.pbft_view(), 0);
    }
}

//! Encoded bijective log replication — paper §IV-B and §IV-C.
//!
//! **Sender side** ([`ChunkSender`]): every node of the proposing group
//! deterministically Reed-Solomon-encodes the certified entry into
//! `n_total` chunks (per receiver group geometry), builds a Merkle tree
//! over the chunks, and ships only the chunks assigned to it by the
//! transfer plan, each with its Merkle proof.
//!
//! **Receiver side** ([`ChunkAssembler`]): chunks are *bucketed by Merkle
//! root* — chunks sharing a root are provably encoded from the same entry,
//! so tampered chunks land in separate buckets and can never poison a
//! correct rebuild. When a bucket reaches `n_data` chunks the entry is
//! optimistically rebuilt and validated against its PBFT certificate; a
//! failed validation condemns the whole bucket and blacklists its chunk
//! ids (the paper's DoS defence). Correct chunks re-broadcast over LAN so
//! every group member can rebuild.

use crate::{
    entry::{entry_digest, EntryId},
    plan::TransferPlan,
    stats,
};
use bytes::Bytes;
use massbft_codec::chunker::EntryCodec;
use massbft_crypto::{Digest, KeyRegistry, MerkleProof, MerkleTree, QuorumCert};
use massbft_telemetry::registry::{counter, Counter};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

/// Process-wide chunk-path counters, registered once in the telemetry
/// registry (`core.replication.*`).
struct ChunkCounters {
    accepted: Counter,
    rebuilds: Counter,
    rejects: Counter,
    cert_memo_hits: Counter,
}

fn counters() -> &'static ChunkCounters {
    static C: OnceLock<ChunkCounters> = OnceLock::new();
    C.get_or_init(|| ChunkCounters {
        accepted: counter("core.replication.chunks_accepted"),
        rebuilds: counter("core.replication.rebuilds"),
        rejects: counter("core.replication.chunk_rejects"),
        cert_memo_hits: counter("core.replication.cert_memo_hits"),
    })
}

/// One chunk in flight, as shipped over the WAN and re-broadcast on LAN.
///
/// The payload is a [`Bytes`] handle into the encoding's shard storage, so
/// cloning a message for fan-out or LAN re-broadcast bumps a refcount
/// instead of copying chunk bytes.
#[derive(Debug, Clone)]
pub struct ChunkMsg {
    /// The entry this chunk encodes.
    pub entry: EntryId,
    /// Chunk index in `0..n_total`.
    pub chunk_id: u32,
    /// Chunk bytes (shared, immutable).
    pub data: Bytes,
    /// Root of the Merkle tree over all chunks of this encoding.
    pub root: Digest,
    /// Inclusion proof of `data` at `chunk_id`.
    pub proof: MerkleProof,
}

impl ChunkMsg {
    /// Approximate wire size: payload + proof hashes + header. Constants
    /// live in [`crate::wire`], shared with the TCP frame codec.
    pub fn wire_size(&self) -> usize {
        crate::wire::chunk_wire(self.data.len(), self.proof.path.len())
    }
}

/// Sender-side encoding: produces each node's outgoing chunk set.
pub struct ChunkSender;

impl ChunkSender {
    /// Encodes `entry_bytes` for a `plan` and returns the chunks node
    /// `sender` must ship: `(receiver node index, chunk message)` pairs.
    ///
    /// Deterministic: every correct node of the group produces the same
    /// encoding and the same Merkle tree, so their chunks share one root.
    pub fn encode_for(
        plan: &TransferPlan,
        sender: u32,
        entry: EntryId,
        entry_bytes: &[u8],
    ) -> Result<Vec<(u32, ChunkMsg)>, massbft_codec::CodecError> {
        let (chunks, tree) = Self::encode_and_prove(plan, entry_bytes)?;
        let root = tree.root();
        Ok(plan
            .outgoing_of(sender)
            .map(|t| {
                let c = t.chunk as usize;
                (
                    t.receiver,
                    ChunkMsg {
                        entry,
                        chunk_id: t.chunk,
                        data: chunks[c].clone(),
                        root,
                        proof: tree.prove(c),
                    },
                )
            })
            .collect())
    }

    /// Encodes and returns *all* chunks with proofs (used by tests and by
    /// Byzantine-behaviour injection, which needs a full tampered set).
    pub fn encode_all(
        plan: &TransferPlan,
        entry: EntryId,
        entry_bytes: &[u8],
    ) -> Result<Vec<ChunkMsg>, massbft_codec::CodecError> {
        let (chunks, tree) = Self::encode_and_prove(plan, entry_bytes)?;
        let root = tree.root();
        Ok(chunks
            .into_iter()
            .enumerate()
            .map(|(c, data)| ChunkMsg {
                entry,
                chunk_id: c as u32,
                data,
                root,
                proof: tree.prove(c),
            })
            .collect())
    }

    /// Shared encode path: fetch the process-wide codec for the plan's
    /// geometry, encode, and build the Merkle tree over the chunks. The
    /// shards are frozen into [`Bytes`] once; every chunk message holds a
    /// refcounted handle.
    fn encode_and_prove(
        plan: &TransferPlan,
        entry_bytes: &[u8],
    ) -> Result<(Vec<Bytes>, MerkleTree), massbft_codec::CodecError> {
        let codec = EntryCodec::shared(plan.n_data, plan.n_total)?;
        let chunks: Vec<Bytes> = codec
            .encode(entry_bytes)?
            .into_iter()
            .map(Bytes::from)
            .collect();
        // The framed copy of the entry inside `encode` is the only
        // byte-for-byte copy the send path still performs.
        stats::record_copied_bytes(entry_bytes.len());
        let tree = MerkleTree::build(&chunks);
        Ok((chunks, tree))
    }
}

/// Why the assembler rejected a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkReject {
    /// The Merkle proof does not verify against the claimed root.
    BadProof,
    /// The chunk id was condemned by a failed bucket rebuild.
    Blacklisted,
    /// Duplicate of an already-accepted chunk in the same bucket.
    Duplicate,
    /// The entry was already rebuilt; chunk is useless.
    AlreadyRebuilt,
    /// Chunk geometry disagrees with the transfer plan (bad chunk id).
    BadGeometry,
}

/// Outcome of feeding a chunk to the assembler.
#[derive(Debug)]
pub enum ChunkOutcome {
    /// Chunk accepted; entry not yet rebuildable.
    Accepted,
    /// Chunk accepted and the entry rebuilt + certificate-validated.
    Rebuilt(Vec<u8>),
    /// Chunk rejected.
    Rejected(ChunkReject),
}

/// Memory bounds against fake-chunk flooding (§IV-C DoS defence). A
/// Byzantine sender can mint an unlimited supply of *valid-looking*
/// chunks — every fresh fake encoding has a fresh Merkle root whose
/// proofs verify — so without a cap the per-entry bucket map grows with
/// attacker bandwidth. Honest chunks all share one root and accumulate
/// in one bucket; fake roots can at best trickle into many. Capping the
/// bucket count and evicting the smallest non-leading bucket therefore
/// starves the flood while the honest bucket (the largest, or soon to
/// be) is never evicted.
const MAX_BUCKETS_PER_ENTRY: usize = 8;

/// Upper bound on condemned chunk ids kept per entry. Ids are already
/// `< n_total`, so this only binds on degenerate geometries; it makes
/// the bound explicit rather than emergent.
const MAX_BLACKLIST_PER_ENTRY: usize = 256;

/// Upper bound on memoized known-certified entry digests (FIFO-evicted).
const MAX_CERT_MEMO: usize = 1024;

/// Per-entry reassembly state at one receiver node.
struct EntryAssembly {
    /// Buckets keyed by Merkle root: chunk id → data. Chunk payloads stay
    /// in their received [`Bytes`] buffers; bucketing never copies them.
    buckets: HashMap<Digest, BTreeMap<u32, Bytes>>,
    /// Chunk ids condemned by failed rebuilds.
    blacklist: BTreeSet<u32>,
    rebuilt: bool,
}

/// Reassembles entries from chunks at a receiver node (one per origin
/// group, since each origin uses its own transfer-plan geometry).
pub struct ChunkAssembler {
    plan: Arc<TransferPlan>,
    /// Process-wide codec for the plan's geometry — carries the coefficient
    /// tables and the decode-plan cache shared with every other user of the
    /// same `(n_data, n_total)`.
    codec: Arc<EntryCodec>,
    registry: KeyRegistry,
    entries: HashMap<EntryId, EntryAssembly>,
    /// Completed entries, kept until taken by the protocol layer.
    completed: HashMap<EntryId, Vec<u8>>,
    /// Digests whose quorum certificate already validated once, with
    /// FIFO eviction order. A LAN re-shared chunk arriving after the
    /// entry was rebuilt and `gc`'d recreates assembly state and would
    /// re-pay the whole batched-HMAC pass on rebuild; any cert claiming
    /// a digest in this set is known good (the digest is what the quorum
    /// certified — the messenger's cert copy adds nothing).
    cert_memo: BTreeSet<Digest>,
    cert_memo_order: std::collections::VecDeque<Digest>,
}

impl ChunkAssembler {
    /// Creates an assembler for entries of one origin group, whose
    /// encoding geometry is fixed by `plan`. The plan is shared via `Arc`
    /// so the protocol layer, the assembler, and tests reference one
    /// allocation instead of cloning the transfer table around.
    pub fn new(plan: Arc<TransferPlan>, registry: KeyRegistry) -> Self {
        let codec = EntryCodec::shared(plan.n_data, plan.n_total)
            .expect("transfer plans always carry a valid codec geometry");
        ChunkAssembler {
            plan,
            codec,
            registry,
            entries: HashMap::new(),
            completed: HashMap::new(),
            cert_memo: BTreeSet::new(),
            cert_memo_order: std::collections::VecDeque::new(),
        }
    }

    /// The plan this assembler expects.
    pub fn plan(&self) -> &TransferPlan {
        &self.plan
    }

    /// Whether `entry` has been rebuilt (content may have been taken).
    pub fn is_rebuilt(&self, entry: EntryId) -> bool {
        self.completed.contains_key(&entry) || self.entries.get(&entry).is_some_and(|a| a.rebuilt)
    }

    /// Takes the rebuilt bytes of `entry`, if available.
    pub fn take_rebuilt(&mut self, entry: EntryId) -> Option<Vec<u8>> {
        self.completed.remove(&entry)
    }

    /// Feeds one received chunk together with the entry's certificate
    /// (carried alongside chunks per §IV-C). Returns what happened.
    pub fn on_chunk(&mut self, msg: ChunkMsg, cert: &QuorumCert) -> ChunkOutcome {
        let outcome = self.on_chunk_inner(msg, cert);
        match &outcome {
            ChunkOutcome::Accepted => counters().accepted.inc(),
            ChunkOutcome::Rebuilt(_) => counters().rebuilds.inc(),
            ChunkOutcome::Rejected(_) => counters().rejects.inc(),
        }
        outcome
    }

    fn on_chunk_inner(&mut self, msg: ChunkMsg, cert: &QuorumCert) -> ChunkOutcome {
        if msg.chunk_id as usize >= self.plan.n_total
            || msg.proof.leaf_index != msg.chunk_id as usize
            || msg.proof.leaf_count != self.plan.n_total
        {
            return ChunkOutcome::Rejected(ChunkReject::BadGeometry);
        }
        let asm = self
            .entries
            .entry(msg.entry)
            .or_insert_with(|| EntryAssembly {
                buckets: HashMap::new(),
                blacklist: BTreeSet::new(),
                rebuilt: false,
            });
        if asm.rebuilt {
            return ChunkOutcome::Rejected(ChunkReject::AlreadyRebuilt);
        }
        if asm.blacklist.contains(&msg.chunk_id) {
            return ChunkOutcome::Rejected(ChunkReject::Blacklisted);
        }
        if !msg.proof.verify(&msg.root, &msg.data) {
            return ChunkOutcome::Rejected(ChunkReject::BadProof);
        }
        if !asm.buckets.contains_key(&msg.root) && asm.buckets.len() >= MAX_BUCKETS_PER_ENTRY {
            // Bucket-map cap reached by a flood of fake roots: evict the
            // smallest bucket that is not the current leader. Ties break
            // on the root digest, keeping eviction deterministic.
            let leading = asm
                .buckets
                .iter()
                .max_by_key(|(r, b)| (b.len(), **r))
                .map(|(&r, _)| r);
            let victim = asm
                .buckets
                .iter()
                .filter(|(&r, _)| Some(r) != leading)
                .min_by_key(|(r, b)| (b.len(), **r))
                .map(|(&r, _)| r);
            if let Some(v) = victim {
                asm.buckets.remove(&v);
            }
        }
        let bucket = asm.buckets.entry(msg.root).or_default();
        if bucket.contains_key(&msg.chunk_id) {
            return ChunkOutcome::Rejected(ChunkReject::Duplicate);
        }
        bucket.insert(msg.chunk_id, msg.data);

        // Optimistic rebuild once the bucket holds n_data chunks. The
        // decode borrows the bucketed chunk buffers in place — no shard
        // copies — and hits the codec's decode-plan cache whenever the
        // same erasure pattern recurs.
        if bucket.len() >= self.plan.n_data {
            let mut shards: Vec<Option<&[u8]>> = vec![None; self.plan.n_total];
            for (&cid, data) in bucket.iter() {
                shards[cid as usize] = Some(data.as_ref());
            }
            let rebuilt = self.codec.decode_from(&shards);
            let valid = match &rebuilt {
                Ok(bytes) => {
                    // Memoized by entry digest: a rebuild whose bytes hash
                    // to an already-certified digest (e.g. a late LAN
                    // re-share after the first rebuild was consumed and
                    // gc'd) skips the batched-HMAC pass entirely.
                    let digest = entry_digest(bytes);
                    if self.cert_memo.contains(&digest) {
                        counters().cert_memo_hits.inc();
                        true
                    } else {
                        let ok = cert.validate_for(&digest, &self.registry).is_ok();
                        // Direct field accesses keep the borrows disjoint
                        // from the live `asm` borrow of `self.entries`.
                        if ok && self.cert_memo.insert(digest) {
                            self.cert_memo_order.push_back(digest);
                            while self.cert_memo_order.len() > MAX_CERT_MEMO {
                                if let Some(old) = self.cert_memo_order.pop_front() {
                                    self.cert_memo.remove(&old);
                                }
                            }
                        }
                        ok
                    }
                }
                Err(_) => false,
            };
            if valid {
                let bytes = rebuilt.expect("checked");
                // Two copies survive on the rebuild path: reassembling the
                // framed entry out of the shards, and retaining it for
                // take_rebuilt while handing one to the caller.
                stats::record_copied_bytes(bytes.len() * 2);
                asm.rebuilt = true;
                asm.buckets.clear();
                self.completed.insert(msg.entry, bytes.clone());
                return ChunkOutcome::Rebuilt(bytes);
            }
            // The whole bucket is fake (same root ⇒ same encoding):
            // condemn its chunk ids and drop it (paper §IV-C).
            let condemned: Vec<u32> = bucket.keys().copied().collect();
            asm.buckets.remove(&msg.root);
            asm.blacklist.extend(condemned);
            while asm.blacklist.len() > MAX_BLACKLIST_PER_ENTRY {
                asm.blacklist.pop_first();
            }
            return ChunkOutcome::Rejected(ChunkReject::Blacklisted);
        }
        ChunkOutcome::Accepted
    }

    /// Drops per-entry state (after the protocol layer has consumed the
    /// entry and it is no longer needed for LAN re-broadcast).
    pub fn gc(&mut self, entry: EntryId) {
        self.entries.remove(&entry);
        self.completed.remove(&entry);
    }

    /// Number of entries with in-flight reassembly state.
    pub fn pending_entries(&self) -> usize {
        self.entries.iter().filter(|(_, a)| !a.rebuilt).count()
    }

    /// Number of live reassembly buckets for `entry` (memory-bound probes).
    pub fn bucket_count(&self, entry: EntryId) -> usize {
        self.entries
            .get(&entry)
            .map(|a| a.buckets.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massbft_crypto::keys::NodeId;

    fn setup(
        n1: usize,
        n2: usize,
    ) -> (Arc<TransferPlan>, KeyRegistry, Vec<u8>, QuorumCert, EntryId) {
        let plan = Arc::new(TransferPlan::generate(n1, n2).unwrap());
        let registry = KeyRegistry::generate(5, &[n1, n2]);
        let id = EntryId::new(0, 1);
        let entry = crate::entry::encode_batch(id, &[b"tx-a".to_vec(), b"tx-b".to_vec()]);
        let quorum = massbft_crypto::cert::quorum(n1);
        let cert = QuorumCert::assemble(
            entry_digest(&entry),
            0,
            &registry,
            (0..quorum as u32).map(|i| NodeId::new(0, i)),
        );
        (plan, registry, entry, cert, id)
    }

    #[test]
    fn full_honest_path_rebuilds() {
        let (plan, registry, entry, cert, id) = setup(4, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);
        let mut rebuilt = None;
        'outer: for sender in 0..4u32 {
            let outgoing = ChunkSender::encode_for(&plan, sender, id, &entry).unwrap();
            assert_eq!(outgoing.len(), plan.per_sender);
            for (_, msg) in outgoing {
                match asm.on_chunk(msg, &cert) {
                    ChunkOutcome::Rebuilt(bytes) => {
                        rebuilt = Some(bytes);
                        break 'outer;
                    }
                    ChunkOutcome::Accepted => {}
                    ChunkOutcome::Rejected(r) => panic!("honest chunk rejected: {r:?}"),
                }
            }
        }
        assert_eq!(rebuilt.unwrap(), entry);
        assert!(asm.is_rebuilt(id));
        assert_eq!(asm.take_rebuilt(id).unwrap(), entry);
    }

    #[test]
    fn rebuild_with_worst_case_loss() {
        // Drop all chunks of 1 faulty sender and all chunks taken by 2
        // faulty receivers: the remaining n_data must still rebuild.
        let (plan, registry, entry, cert, id) = setup(4, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);
        let all = ChunkSender::encode_all(&plan, id, &entry).unwrap();
        let lost: BTreeSet<u32> = plan
            .transfers
            .iter()
            .filter(|t| t.sender == 3 || t.receiver == 5 || t.receiver == 6)
            .map(|t| t.chunk)
            .collect();
        assert!(all.len() - lost.len() >= plan.n_data);
        let mut got = None;
        for msg in all {
            if lost.contains(&msg.chunk_id) {
                continue;
            }
            if let ChunkOutcome::Rebuilt(bytes) = asm.on_chunk(msg, &cert) {
                got = Some(bytes);
                break;
            }
        }
        assert_eq!(got.unwrap(), entry);
    }

    #[test]
    fn tampered_chunks_bucket_separately_and_get_blacklisted() {
        let (plan, registry, entry, cert, id) = setup(4, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);

        // Byzantine nodes hold a *different* entry (collusion per §VI-E)
        // and encode it consistently: same geometry, different root.
        let tampered_entry =
            crate::entry::encode_batch(id, &[b"EVIL-tx".to_vec(), b"EVIL-tx2".to_vec()]);
        let evil = ChunkSender::encode_all(&plan, id, &tampered_entry).unwrap();

        // Feed n_data tampered chunks: bucket fills, rebuild succeeds
        // byte-wise but fails certificate validation → blacklist.
        let mut blacklisted = false;
        for msg in evil.iter().take(plan.n_data).cloned() {
            match asm.on_chunk(msg, &cert) {
                ChunkOutcome::Rejected(ChunkReject::Blacklisted) => blacklisted = true,
                ChunkOutcome::Rebuilt(_) => panic!("tampered entry passed cert validation"),
                _ => {}
            }
        }
        assert!(blacklisted);

        // Honest chunks with blacklisted ids are now refused (DoS guard)…
        let honest = ChunkSender::encode_all(&plan, id, &entry).unwrap();
        let first_honest = honest[0].clone();
        assert!(matches!(
            asm.on_chunk(first_honest, &cert),
            ChunkOutcome::Rejected(ChunkReject::Blacklisted)
        ));

        // …but enough non-blacklisted honest chunks still rebuild: the
        // blacklist covers n_data ids, leaving n_parity ≥ n_data? Not in
        // general — here 15 parity ≥ 13 data, so ids n_data..n_total
        // suffice.
        let mut got = None;
        for msg in honest.into_iter().skip(plan.n_data) {
            if let ChunkOutcome::Rebuilt(bytes) = asm.on_chunk(msg, &cert) {
                got = Some(bytes);
                break;
            }
        }
        assert_eq!(got.unwrap(), entry);
    }

    #[test]
    fn flipped_byte_fails_merkle_proof() {
        let (plan, registry, entry, cert, id) = setup(4, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);
        let mut all = ChunkSender::encode_all(&plan, id, &entry).unwrap();
        // Chunk payloads are immutable shared buffers; corrupt a copy.
        let mut corrupt = all[0].data.to_vec();
        corrupt[0] ^= 0xff;
        all[0].data = corrupt.into();
        assert!(matches!(
            asm.on_chunk(all[0].clone(), &cert),
            ChunkOutcome::Rejected(ChunkReject::BadProof)
        ));
    }

    #[test]
    fn data_plane_counters_track_encode_and_rebuild() {
        // Counters are process-global and monotonic; assert deltas so the
        // test stays valid when other tests run concurrently.
        let before = crate::stats::data_plane_stats();
        let (plan, registry, entry, cert, id) = setup(4, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);
        let all = ChunkSender::encode_all(&plan, id, &entry).unwrap();

        let after_encode = crate::stats::data_plane_stats();
        assert!(
            after_encode.bytes_copied >= before.bytes_copied + entry.len() as u64,
            "encode frames (copies) the entry once"
        );

        // Withhold the first data chunk so the rebuild must go through the
        // decode matrix (and therefore the decode-plan cache).
        let mut got = None;
        for msg in all.into_iter().skip(1) {
            if let ChunkOutcome::Rebuilt(bytes) = asm.on_chunk(msg, &cert) {
                got = Some(bytes);
                break;
            }
        }
        assert_eq!(got.unwrap(), entry);

        let after = crate::stats::data_plane_stats();
        assert!(
            after.bytes_copied >= after_encode.bytes_copied + 2 * entry.len() as u64,
            "rebuild reassembles and retains the entry"
        );
        let decodes_before = before.decode_cache_hits + before.decode_cache_misses;
        let decodes_after = after.decode_cache_hits + after.decode_cache_misses;
        assert!(
            decodes_after > decodes_before,
            "matrix decode consulted the cache"
        );
    }

    #[test]
    fn duplicate_chunks_rejected() {
        let (plan, registry, entry, cert, id) = setup(7, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);
        let all = ChunkSender::encode_all(&plan, id, &entry).unwrap();
        assert!(matches!(
            asm.on_chunk(all[0].clone(), &cert),
            ChunkOutcome::Accepted
        ));
        assert!(matches!(
            asm.on_chunk(all[0].clone(), &cert),
            ChunkOutcome::Rejected(ChunkReject::Duplicate)
        ));
    }

    #[test]
    fn geometry_violations_rejected() {
        let (plan, registry, entry, cert, id) = setup(4, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);
        let all = ChunkSender::encode_all(&plan, id, &entry).unwrap();
        let mut bad = all[0].clone();
        bad.chunk_id = plan.n_total as u32 + 5;
        assert!(matches!(
            asm.on_chunk(bad, &cert),
            ChunkOutcome::Rejected(ChunkReject::BadGeometry)
        ));
        // Claimed index disagreeing with the proof is also geometry abuse.
        let mut swapped = all[0].clone();
        swapped.chunk_id = 1;
        assert!(matches!(
            asm.on_chunk(swapped, &cert),
            ChunkOutcome::Rejected(ChunkReject::BadGeometry)
        ));
    }

    #[test]
    fn chunks_after_rebuild_are_ignored() {
        let (plan, registry, entry, cert, id) = setup(4, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);
        let all = ChunkSender::encode_all(&plan, id, &entry).unwrap();
        let mut done = false;
        for msg in all.iter().take(plan.n_data).cloned() {
            if matches!(asm.on_chunk(msg, &cert), ChunkOutcome::Rebuilt(_)) {
                done = true;
            }
        }
        assert!(done);
        assert!(matches!(
            asm.on_chunk(all[plan.n_data].clone(), &cert),
            ChunkOutcome::Rejected(ChunkReject::AlreadyRebuilt)
        ));
    }

    #[test]
    fn gc_drops_state() {
        let (plan, registry, entry, cert, id) = setup(4, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);
        let all = ChunkSender::encode_all(&plan, id, &entry).unwrap();
        for msg in all.into_iter().take(plan.n_data) {
            let _ = asm.on_chunk(msg, &cert);
        }
        assert!(asm.is_rebuilt(id));
        asm.gc(id);
        assert_eq!(asm.pending_entries(), 0);
        assert!(asm.take_rebuilt(id).is_none());
    }

    #[test]
    fn fake_root_flood_is_memory_bounded_and_honest_rebuild_survives() {
        // A Byzantine sender mints hundreds of distinct fake encodings of
        // the same entry id — every one carries a fresh Merkle root with
        // proofs that verify, so each opens a new bucket. The bucket map
        // must stay capped, and honest chunks arriving afterwards (worst
        // case for the cap policy) must still rebuild the entry.
        let (plan, registry, entry, cert, id) = setup(4, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);
        for i in 0..300u32 {
            let fake = crate::entry::encode_batch(id, &[format!("flood-{i}").into_bytes()]);
            let msg = ChunkSender::encode_all(&plan, id, &fake).unwrap()[0].clone();
            match asm.on_chunk(msg, &cert) {
                ChunkOutcome::Accepted | ChunkOutcome::Rejected(_) => {}
                ChunkOutcome::Rebuilt(_) => panic!("single fake chunk cannot rebuild"),
            }
            assert!(
                asm.bucket_count(id) <= MAX_BUCKETS_PER_ENTRY,
                "bucket map grew past the cap under flooding"
            );
        }
        // The honest encoding still gets a bucket and wins: its chunks
        // share one root and outgrow the fake singletons.
        let honest = ChunkSender::encode_all(&plan, id, &entry).unwrap();
        let mut got = None;
        for msg in honest {
            if let ChunkOutcome::Rebuilt(bytes) = asm.on_chunk(msg, &cert) {
                got = Some(bytes);
                break;
            }
            assert!(asm.bucket_count(id) <= MAX_BUCKETS_PER_ENTRY);
        }
        assert_eq!(
            got.unwrap(),
            entry,
            "flooding suppressed the honest rebuild"
        );
    }

    #[test]
    fn interleaved_flood_cannot_evict_the_leading_honest_bucket() {
        // Interleave: two honest chunks first (the honest bucket becomes
        // the leader), then a sustained fake flood, then the rest of the
        // honest chunks. The leader must never be evicted.
        let (plan, registry, entry, cert, id) = setup(4, 7);
        let mut asm = ChunkAssembler::new(Arc::clone(&plan), registry);
        let honest = ChunkSender::encode_all(&plan, id, &entry).unwrap();
        for msg in honest.iter().take(2).cloned() {
            assert!(matches!(asm.on_chunk(msg, &cert), ChunkOutcome::Accepted));
        }
        for i in 0..100u32 {
            let fake = crate::entry::encode_batch(id, &[format!("evict-{i}").into_bytes()]);
            let msg = ChunkSender::encode_all(&plan, id, &fake).unwrap()[0].clone();
            let _ = asm.on_chunk(msg, &cert);
        }
        assert!(asm.bucket_count(id) <= MAX_BUCKETS_PER_ENTRY);
        let mut got = None;
        for msg in honest.into_iter().skip(2) {
            if let ChunkOutcome::Rebuilt(bytes) = asm.on_chunk(msg, &cert) {
                got = Some(bytes);
                break;
            }
        }
        // Rebuild needed only n_data - 2 more honest chunks: the two
        // pre-flood chunks must have survived in the leading bucket.
        assert_eq!(got.unwrap(), entry);
    }

    #[test]
    fn sender_chunks_match_plan_assignment() {
        let (plan, _registry, entry, _cert, id) = setup(4, 7);
        for sender in 0..4u32 {
            let outgoing = ChunkSender::encode_for(&plan, sender, id, &entry).unwrap();
            for (receiver, msg) in outgoing {
                let t = plan
                    .transfers
                    .iter()
                    .find(|t| t.chunk == msg.chunk_id)
                    .expect("chunk in plan");
                assert_eq!(t.sender, sender);
                assert_eq!(t.receiver, receiver);
            }
        }
    }
}

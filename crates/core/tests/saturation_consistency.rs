//! Agreement under saturation: the regression test for the tie-resolution
//! bug where commit-derived clock inference let two groups order entries
//! with tying vector timestamps differently (see
//! `OrderingEngine::on_entry_committed`). Full-rate load maximizes VTS
//! ties, which is exactly where unsound inference diverges.

use massbft_core::cluster::{Cluster, ClusterConfig};
use massbft_core::protocol::Protocol;
use massbft_workloads::WorkloadKind;

fn saturated(protocol: Protocol, seed: u64) {
    let cfg = ClusterConfig::nationwide(&[4, 4, 4], protocol)
        .workload(WorkloadKind::YcsbA)
        .seed(seed);
    let mut cluster = Cluster::new(cfg);
    let report = cluster.run_secs(3);
    assert!(
        report.all_nodes_consistent,
        "{} seed {seed}: replicas diverged under saturation",
        protocol.name()
    );
    assert!(
        report.throughput.tps() > 1000.0,
        "{}: underloaded",
        protocol.name()
    );
}

#[test]
fn massbft_consistent_under_saturation_seed7() {
    saturated(Protocol::MassBft, 7);
}

#[test]
fn massbft_consistent_under_saturation_seed21() {
    saturated(Protocol::MassBft, 21);
}

#[test]
fn baseline_consistent_under_saturation() {
    saturated(Protocol::Baseline, 7);
}

#[test]
fn geobft_consistent_under_saturation() {
    saturated(Protocol::GeoBft, 7);
}

//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms behind one process-wide API.
//!
//! The legacy stat surfaces — `massbft-core::stats`,
//! `massbft-db::stats`, and `massbft-sim-net::Metrics` — are facades
//! over this registry: they register their counters here and re-export
//! snapshots through their original types, so no quantity is counted in
//! two places.
//!
//! Updates are relaxed atomics on pre-registered handles; registration
//! (a mutex + hash lookup) happens once per call site, typically behind
//! a `OnceLock`. Counters are monotonic and process-wide: callers that
//! want per-run numbers snapshot-and-subtract, exactly as the legacy
//! surfaces always did.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Sub-bucket resolution bits: 32 sub-buckets per power of two, i.e. a
/// worst-case relative quantization error of 1/32 ≈ 3.1%.
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Major buckets cover values up to 2^40 µs (~13 days of virtual time).
const MAJORS: usize = 40;
const BUCKETS: usize = MAJORS * SUBS;

#[derive(Debug)]
struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log-bucketed histogram: O(1) lock-free recording, percentile
/// queries with ≤ ~3% relative error (exact for values < 32).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let major = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (major - SUB_BITS)) - SUBS as u64) as usize;
    let idx = ((major - SUB_BITS + 1) as usize) * SUBS + sub;
    idx.min(BUCKETS - 1)
}

/// Representative (upper-edge) value of a bucket.
fn bucket_value(idx: usize) -> u64 {
    let major = idx / SUBS;
    let sub = (idx % SUBS) as u64;
    if major == 0 {
        return sub;
    }
    let shift = (major - 1) as u32;
    ((SUBS as u64 + sub) << shift) + ((1u64 << shift) - 1)
}

impl Histogram {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, || AtomicU64::new(0));
        Histogram(Arc::new(HistogramInner {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        self.0.count.fetch_add(1, Relaxed);
        self.0.sum.fetch_add(v, Relaxed);
        self.0.max.fetch_max(v, Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `p`-th percentile (0–100): the bucket-edge value below which
    /// at least `p`% of samples fall. Within ~3% of the exact order
    /// statistic; the true maximum caps the answer.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Relaxed);
            if seen >= rank {
                return bucket_value(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Captures the current bucket contents, so a later
    /// [`Histogram::percentile_since`] can report percentiles over a
    /// measurement window on a process-wide (never reset) histogram.
    pub fn window(&self) -> HistogramWindow {
        HistogramWindow {
            buckets: self.0.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Samples recorded since `base` was captured.
    pub fn count_since(&self, base: &HistogramWindow) -> u64 {
        self.count().saturating_sub(base.count)
    }

    /// Mean of samples recorded since `base` (0 when none).
    pub fn mean_since(&self, base: &HistogramWindow) -> f64 {
        let n = self.count_since(base);
        if n == 0 {
            0.0
        } else {
            self.sum().saturating_sub(base.sum) as f64 / n as f64
        }
    }

    /// The `p`-th percentile over samples recorded since `base` was
    /// captured. Same ≤ ~3% bucket error as [`Histogram::percentile`];
    /// the cap is the window's own largest occupied bucket edge, not the
    /// all-time max.
    pub fn percentile_since(&self, base: &HistogramWindow, p: f64) -> u64 {
        let n = self.count_since(base);
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, b) in self.0.buckets.iter().enumerate() {
            let delta = b.load(Relaxed).saturating_sub(base.buckets[idx]);
            seen += delta;
            if seen >= rank {
                return bucket_value(idx);
            }
        }
        0
    }
}

/// A point-in-time copy of one histogram's buckets, captured with
/// [`Histogram::window`]. Subtracting it from a later reading yields
/// per-window percentiles without resetting the shared histogram.
#[derive(Debug, Clone)]
pub struct HistogramWindow {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

/// A named metric handle, as stored in the registry.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Counter),
    /// Last-write-wins gauge.
    Gauge(Gauge),
    /// Log-bucketed histogram.
    Histogram(Histogram),
}

/// A point-in-time reading of one metric, for reports.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram summary: `(count, mean, p50, p95, p99, max)`.
    Histogram {
        /// Samples recorded.
        count: u64,
        /// Mean sample.
        mean: f64,
        /// Median.
        p50: u64,
        /// 95th percentile.
        p95: u64,
        /// 99th percentile.
        p99: u64,
        /// Largest sample.
        max: u64,
    },
}

/// The process-wide metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// The counter named `name`, registering it on first use. Panics if
    /// the name is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Snapshot of every registered metric, name-sorted.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let m = self.metrics.lock().expect("registry poisoned");
        m.iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram {
                        count: h.count(),
                        mean: h.mean(),
                        p50: h.percentile(50.0),
                        p95: h.percentile(95.0),
                        p99: h.percentile(99.0),
                        max: h.max(),
                    },
                };
                (name.clone(), snap)
            })
            .collect()
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// Shorthand for `registry().counter(name)`.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Shorthand for `registry().gauge(name)`.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// Shorthand for `registry().histogram(name)`.
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_names_by_identity() {
        let r = Registry::default();
        let c1 = r.counter("test.c");
        let c2 = r.counter("test.c");
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), 4);
        let g = r.gauge("test.g");
        g.set(9);
        g.set(5);
        assert_eq!(r.gauge("test.g").get(), 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = Registry::default();
        r.counter("test.x");
        r.gauge("test.x");
    }

    #[test]
    fn histogram_small_values_exact() {
        let r = Registry::default();
        let h = r.histogram("test.h");
        for v in 0..20 {
            h.record(v);
        }
        assert_eq!(h.count(), 20);
        assert_eq!(h.sum(), 190);
        assert_eq!(h.percentile(50.0), 9);
        assert_eq!(h.percentile(100.0), 19);
        assert_eq!(h.max(), 19);
    }

    #[test]
    fn histogram_percentiles_bounded_error() {
        let h = Registry::default().histogram("test.h2");
        // 1..=10_000 uniformly: p50 ≈ 5000, p95 ≈ 9500, p99 ≈ 9900.
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, exact) in [(50.0, 5000.0), (95.0, 9500.0), (99.0, 9900.0)] {
            let got = h.percentile(p) as f64;
            let err = (got - exact).abs() / exact;
            assert!(err < 0.04, "p{p}: got {got}, exact {exact}, err {err}");
        }
        assert_eq!(h.percentile(100.0), 10_000);
    }

    #[test]
    fn bucket_round_trip_is_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 65_536, 1 << 30, 1 << 39] {
            let idx = bucket_of(v);
            let rep = bucket_value(idx);
            assert!(rep >= v, "bucket value {rep} under sample {v}");
            assert!(rep <= v + v / 16 + 1, "bucket value {rep} too far over {v}");
            assert!(idx >= last, "bucket index not monotone at {v}");
            last = idx;
        }
    }

    #[test]
    fn window_percentiles_ignore_prior_samples() {
        let h = Registry::default().histogram("test.win");
        for _ in 0..1000 {
            h.record(5);
        }
        let base = h.window();
        assert_eq!(h.count_since(&base), 0);
        assert_eq!(h.percentile_since(&base, 99.0), 0);
        for v in 1..=100u64 {
            h.record(v * 100);
        }
        assert_eq!(h.count_since(&base), 100);
        // Window median ≈ 5000 even though the all-time median is 5.
        let p50 = h.percentile_since(&base, 50.0) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.05, "p50 {p50}");
        assert_eq!(h.percentile(50.0), 5);
        let mean = h.mean_since(&base);
        assert!((mean - 5050.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn global_registry_is_shared() {
        let c = counter("test.global");
        c.inc();
        assert_eq!(counter("test.global").get(), 1);
        let snap = registry().snapshot();
        assert!(snap.iter().any(|(n, _)| n == "test.global"));
    }

    #[test]
    fn snapshot_summarizes_histograms() {
        let h = histogram("test.snap_h");
        h.record(10);
        h.record(20);
        let snap = registry().snapshot();
        let (_, s) = snap.iter().find(|(n, _)| n == "test.snap_h").unwrap();
        match s {
            MetricSnapshot::Histogram { count, max, .. } => {
                assert_eq!(*count, 2);
                assert_eq!(*max, 20);
            }
            other => panic!("wrong snapshot {other:?}"),
        }
    }
}

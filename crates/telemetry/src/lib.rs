//! Unified telemetry for the MassBFT workspace.
//!
//! Three pieces, one crate (ISSUE 4; DESIGN.md §6):
//!
//! - **Entry-lifecycle spans** ([`emit`], [`Event`], [`EventKind`]): every
//!   entry gets timestamped events at each phase boundary (submitted →
//!   PBFT pre-prepare/prepare/commit → encoded → WAN transfer → chunk
//!   rebuild → global Raft commit → VTS assigned → ordered → executed),
//!   recorded into a process-wide lock-free bounded [`ring::Ring`]. The
//!   hot path pays one relaxed atomic increment plus a handful of relaxed
//!   slot stores when enabled, and a single relaxed load + branch when
//!   disabled (the default). The `off` cargo feature compiles every probe
//!   to nothing.
//! - A **metrics registry** ([`registry`]): named counters, gauges, and
//!   log-bucketed histograms with p50/p95/p99 queries. The legacy stat
//!   surfaces (`massbft-core::stats`, `massbft-db::stats`,
//!   `massbft-sim-net::Metrics`) are thin facades over this registry.
//! - **Exporters** ([`export`]): JSONL event logs and Chrome
//!   `trace_event` JSON loadable in Perfetto / `about://tracing` — one
//!   track per node, one async span per entry — plus the per-phase
//!   latency-breakdown table the `trace` bench binary prints (paper
//!   Fig. 11).
//!
//! # Quickstart
//!
//! ```
//! use massbft_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! telemetry::emit(telemetry::Event {
//!     at: 42,
//!     kind: telemetry::EventKind::Submitted,
//!     node: (0, 0),
//!     entry: (0, 1),
//!     value: 0,
//! });
//! let drained = telemetry::drain();
//! telemetry::set_enabled(false);
//! assert!(drained.events.iter().any(|e| e.at == 42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod registry;
pub mod ring;

use ring::Ring;
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::OnceLock;

/// Virtual time in microseconds (mirrors `massbft_sim_net::Time` without
/// the dependency — telemetry sits below every other workspace crate).
pub type Time = u64;

/// How much the probes record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Verbosity {
    /// Nothing is recorded (the default); probes cost one relaxed load.
    Quiet = 0,
    /// Entry-lifecycle span events and registry metrics.
    Spans = 1,
    /// Spans plus per-message network debug events (deliveries, drops,
    /// WAN/LAN sends, timer fires) — the machine-parseable replacement
    /// for println spelunking in the simulator.
    Debug = 2,
}

/// One phase boundary (or debug occurrence) in an entry's life.
///
/// The first block mirrors the paper's latency decomposition (Fig. 11);
/// the `Net*` kinds are simulator debug events only recorded at
/// [`Verbosity::Debug`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Entry batched and proposed at its origin representative.
    Submitted = 0,
    /// Local PBFT pre-prepare observed for the entry.
    PbftPrePrepare = 1,
    /// Local PBFT prepare phase observed.
    PbftPrepare = 2,
    /// Local PBFT commit phase observed.
    PbftCommit = 3,
    /// Local PBFT certificate assembled (local consensus done).
    Certified = 4,
    /// Entry erasure-encoded into chunks at the origin.
    Encoded = 5,
    /// WAN transfer of the entry started at the origin node.
    WanTransferStart = 6,
    /// Entry content fully received over WAN at this node.
    WanTransferDone = 7,
    /// Entry rebuilt from erasure-coded chunks at this node.
    ChunkRebuilt = 8,
    /// Entry committed by global consensus (Raft / accept quorum).
    GlobalCommit = 9,
    /// This representative assigned its vector-timestamp to the entry.
    VtsAssigned = 10,
    /// Deterministic global order decided for the entry at this node.
    Ordered = 11,
    /// Entry executed by the Aria pipeline at this node.
    Executed = 12,
    /// Debug: message enqueued on a WAN uplink.
    NetWanSend = 13,
    /// Debug: message enqueued on a LAN link.
    NetLanSend = 14,
    /// Debug: message delivered to its destination handler.
    NetDeliver = 15,
    /// Debug: message dropped (crash or partition).
    NetDrop = 16,
    /// Debug: timer fired.
    NetTimer = 17,
    /// View-change driver: local-consensus progress stall detected at a
    /// replica (`value` = the stalled view).
    ViewStallDetected = 18,
    /// View-change driver: replica broadcast its `ViewChange` vote
    /// (`value` = the view being campaigned for).
    ViewChangeStarted = 19,
    /// View-change driver: replica adopted a new view via `NewView`
    /// (`value` = the adopted view).
    NewViewAdopted = 20,
    /// An execution-pipeline environment knob held an unparsable value
    /// and the default was used instead (`value` = which knob, as the
    /// emitting crate defines it).
    ExecConfigInvalid = 21,
}

impl EventKind {
    /// Every lifecycle kind, in pipeline order (no `Net*` debug kinds).
    pub const LIFECYCLE: [EventKind; 13] = [
        EventKind::Submitted,
        EventKind::PbftPrePrepare,
        EventKind::PbftPrepare,
        EventKind::PbftCommit,
        EventKind::Certified,
        EventKind::Encoded,
        EventKind::WanTransferStart,
        EventKind::WanTransferDone,
        EventKind::ChunkRebuilt,
        EventKind::GlobalCommit,
        EventKind::VtsAssigned,
        EventKind::Ordered,
        EventKind::Executed,
    ];

    /// Stable machine name (used by the JSONL exporter).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Submitted => "submitted",
            EventKind::PbftPrePrepare => "pbft_pre_prepare",
            EventKind::PbftPrepare => "pbft_prepare",
            EventKind::PbftCommit => "pbft_commit",
            EventKind::Certified => "certified",
            EventKind::Encoded => "encoded",
            EventKind::WanTransferStart => "wan_transfer_start",
            EventKind::WanTransferDone => "wan_transfer_done",
            EventKind::ChunkRebuilt => "chunk_rebuilt",
            EventKind::GlobalCommit => "global_commit",
            EventKind::VtsAssigned => "vts_assigned",
            EventKind::Ordered => "ordered",
            EventKind::Executed => "executed",
            EventKind::NetWanSend => "net_wan_send",
            EventKind::NetLanSend => "net_lan_send",
            EventKind::NetDeliver => "net_deliver",
            EventKind::NetDrop => "net_drop",
            EventKind::NetTimer => "net_timer",
            EventKind::ViewStallDetected => "view_stall_detected",
            EventKind::ViewChangeStarted => "view_change_started",
            EventKind::NewViewAdopted => "new_view_adopted",
            EventKind::ExecConfigInvalid => "exec_config_invalid",
        }
    }

    /// Whether this is a view-change lifecycle kind (instant events on
    /// the node's track, not tied to an entry).
    pub fn is_view_event(&self) -> bool {
        matches!(
            self,
            EventKind::ViewStallDetected | EventKind::ViewChangeStarted | EventKind::NewViewAdopted
        )
    }

    /// Inverse of [`EventKind::name`].
    pub fn from_name(name: &str) -> Option<EventKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }

    pub(crate) fn from_u8(v: u8) -> Option<EventKind> {
        ALL_KINDS.get(v as usize).copied()
    }
}

const ALL_KINDS: [EventKind; 22] = [
    EventKind::Submitted,
    EventKind::PbftPrePrepare,
    EventKind::PbftPrepare,
    EventKind::PbftCommit,
    EventKind::Certified,
    EventKind::Encoded,
    EventKind::WanTransferStart,
    EventKind::WanTransferDone,
    EventKind::ChunkRebuilt,
    EventKind::GlobalCommit,
    EventKind::VtsAssigned,
    EventKind::Ordered,
    EventKind::Executed,
    EventKind::NetWanSend,
    EventKind::NetLanSend,
    EventKind::NetDeliver,
    EventKind::NetDrop,
    EventKind::NetTimer,
    EventKind::ViewStallDetected,
    EventKind::ViewChangeStarted,
    EventKind::NewViewAdopted,
    EventKind::ExecConfigInvalid,
];

/// One telemetry event: a phase boundary stamped with virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual time, microseconds.
    pub at: Time,
    /// What happened.
    pub kind: EventKind,
    /// The node it happened on, as `(group, index)`.
    pub node: (u32, u32),
    /// The entry it concerns, as `(gid, seq)` — `(0, 0)` for events not
    /// tied to an entry (network debug events use the destination node).
    pub entry: (u32, u64),
    /// Kind-specific payload: bytes for transfers, the clock value for
    /// `VtsAssigned`, committed transactions for `Executed`, 0 otherwise.
    pub value: u64,
}

/// Result of draining the global ring.
#[derive(Debug, Clone, Default)]
pub struct Drained {
    /// Recovered events, ordered by `(at, publication order)`.
    pub events: Vec<Event>,
    /// Events that were overwritten before this drain (ring wrapped).
    pub dropped: u64,
}

static VERBOSITY: AtomicU8 = AtomicU8::new(0);
static RING: OnceLock<Ring> = OnceLock::new();

/// Default global ring capacity (events). Override before first use with
/// [`configure_ring`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 18;

fn global_ring() -> &'static Ring {
    RING.get_or_init(|| Ring::new(DEFAULT_RING_CAPACITY))
}

/// Installs the global ring with a custom capacity. Returns `false` if
/// the ring was already initialized (capacity unchanged).
pub fn configure_ring(capacity: usize) -> bool {
    RING.set(Ring::new(capacity)).is_ok()
}

/// Sets the probe verbosity.
pub fn set_verbosity(v: Verbosity) {
    VERBOSITY.store(v as u8, Relaxed);
}

/// Current verbosity.
pub fn verbosity() -> Verbosity {
    match VERBOSITY.load(Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Spans,
        _ => Verbosity::Debug,
    }
}

/// Convenience: `true` → [`Verbosity::Spans`], `false` → [`Verbosity::Quiet`].
pub fn set_enabled(enabled: bool) {
    set_verbosity(if enabled {
        Verbosity::Spans
    } else {
        Verbosity::Quiet
    });
}

/// Whether span probes record. This is THE hot-path gate: a single
/// relaxed load + branch; instrumented code must do nothing else when it
/// returns `false`.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    VERBOSITY.load(Relaxed) >= Verbosity::Spans as u8
}

/// Whether network debug probes record ([`Verbosity::Debug`] only).
#[inline(always)]
pub fn net_enabled() -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    VERBOSITY.load(Relaxed) >= Verbosity::Debug as u8
}

/// Records a span event into the global ring (no-op unless [`enabled`]).
#[inline]
pub fn emit(ev: Event) {
    if !enabled() {
        return;
    }
    global_ring().push(ev);
}

/// Records a network debug event (no-op unless [`net_enabled`]).
#[inline]
pub fn emit_net(ev: Event) {
    if !net_enabled() {
        return;
    }
    global_ring().push(ev);
}

/// Drains every event currently retained by the global ring, oldest
/// first, and reports how many were lost to wraparound since the last
/// drain. Callers should disable recording first for a consistent cut.
pub fn drain() -> Drained {
    let (events, dropped) = global_ring().drain();
    Drained { events, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in ALL_KINDS {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(EventKind::from_name("bogus"), None);
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn verbosity_ladder() {
        // Global state: this test owns the transitions it asserts on.
        set_verbosity(Verbosity::Quiet);
        assert!(!enabled());
        assert!(!net_enabled());
        set_verbosity(Verbosity::Spans);
        assert!(enabled());
        assert!(!net_enabled());
        set_verbosity(Verbosity::Debug);
        assert!(enabled());
        assert!(net_enabled());
        set_verbosity(Verbosity::Quiet);
    }

    #[test]
    fn lifecycle_covers_no_net_kinds() {
        for k in EventKind::LIFECYCLE {
            assert!(!k.name().starts_with("net_"), "{k:?}");
        }
        assert_eq!(EventKind::LIFECYCLE.len(), 13);
    }
}

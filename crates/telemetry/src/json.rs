//! A minimal JSON parser for exporter self-validation.
//!
//! The workspace is offline (no serde), yet the trace bin and the golden
//! tests must prove the emitted Chrome trace / JSONL actually parses.
//! This is a small recursive-descent parser over the full JSON grammar —
//! enough to validate and inspect our own output; not tuned for speed.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers up to 2^53 are exact).
    Num(f64),
    /// String with escapes decoded.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (key order normalized).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64 if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: decode the low half if present.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(ch.ok_or("invalid \\u escape")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => return Err("control char in string".into()),
                Some(b) => {
                    // Re-take the full UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let s =
                        std::str::from_utf8(self.bytes.get(start..end).ok_or("truncated utf-8")?)
                            .map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or("truncated \\u escape")?;
            v = v * 16
                + (b as char)
                    .to_digit(16)
                    .ok_or_else(|| format!("bad hex digit {:?}", b as char))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(out)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(out)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

/// Escapes `s` as JSON string contents (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn decodes_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\n\t\"\\b""#).unwrap().as_str(),
            Some("a\n\t\"\\b")
        );
        assert_eq!(parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse("\"µs→done\"").unwrap().as_str(), Some("µs→done"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\x\"",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "line1\nline2\t\"quoted\" \\ µ";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }
}

//! Lock-free bounded event ring.
//!
//! Writers claim a slot with one relaxed `fetch_add` on the head counter
//! and store the event's fields with relaxed atomic writes, publishing
//! with a release store of the slot's sequence marker. There are no
//! locks, no allocation, and no waiting anywhere on the write path —
//! a writer preempted mid-slot can at worst cause *that slot* to be
//! skipped by a drain (the marker re-check detects torn slots), never
//! stall another writer.
//!
//! The ring is bounded: when `capacity` events are outstanding, new
//! events overwrite the oldest (eviction is counted, never silent).
//! Drains are expected at quiescent points (end of a simulation run);
//! they are safe concurrently with writers but may skip slots being
//! rewritten at that instant.

use crate::{Event, EventKind, Time};
use std::sync::atomic::{AtomicU64, Ordering};

/// One slot: a sequence marker plus the event packed into four words.
/// `marker == 0` means "never written"; otherwise `marker = seq + 1`
/// where `seq` is the global publication index of the resident event.
#[derive(Debug, Default)]
struct Slot {
    marker: AtomicU64,
    at: AtomicU64,
    /// `kind << 56 | node.0 << 28 | node.1` (28 bits per node field).
    meta: AtomicU64,
    /// `entry.0 << 44 | entry.1` (gid < 2^20, entry seqs < 2^44 — both
    /// orders of magnitude above anything a simulation produces).
    entry: AtomicU64,
    value: AtomicU64,
}

const NODE_BITS: u32 = 28;
const NODE_MASK: u64 = (1 << NODE_BITS) - 1;
const ESEQ_BITS: u32 = 44;
const ESEQ_MASK: u64 = (1 << ESEQ_BITS) - 1;

fn pack_meta(kind: EventKind, node: (u32, u32)) -> u64 {
    ((kind as u64) << 56)
        | (((node.0 as u64) & NODE_MASK) << NODE_BITS)
        | ((node.1 as u64) & NODE_MASK)
}

fn unpack_meta(meta: u64) -> Option<(EventKind, (u32, u32))> {
    let kind = EventKind::from_u8((meta >> 56) as u8)?;
    let g = ((meta >> NODE_BITS) & NODE_MASK) as u32;
    let n = (meta & NODE_MASK) as u32;
    Some((kind, (g, n)))
}

fn pack_entry(entry: (u32, u64)) -> u64 {
    ((entry.0 as u64) << ESEQ_BITS) | (entry.1 & ESEQ_MASK)
}

fn unpack_entry(packed: u64) -> (u32, u64) {
    ((packed >> ESEQ_BITS) as u32, packed & ESEQ_MASK)
}

/// A bounded, lock-free multi-producer event ring.
#[derive(Debug)]
pub struct Ring {
    slots: Vec<Slot>,
    head: AtomicU64,
    /// Publication index up to which a previous drain already consumed
    /// (for eviction accounting across drains).
    drained_to: AtomicU64,
}

impl Ring {
    /// A ring holding up to `capacity` events (rounded up to 1 minimum).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, Slot::default);
        Ring {
            slots,
            head: AtomicU64::new(0),
            drained_to: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever published (evicted ones included).
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Publishes one event. Lock-free: one relaxed `fetch_add` + five
    /// atomic stores.
    #[inline]
    pub fn push(&self, ev: Event) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        slot.at.store(ev.at, Ordering::Relaxed);
        slot.meta
            .store(pack_meta(ev.kind, ev.node), Ordering::Relaxed);
        slot.entry.store(pack_entry(ev.entry), Ordering::Relaxed);
        slot.value.store(ev.value, Ordering::Relaxed);
        // Release: a reader that observes the marker sees the fields.
        slot.marker.store(seq + 1, Ordering::Release);
    }

    /// Collects the retained events in publication order and the number
    /// of events evicted (or torn) since the previous drain.
    pub fn drain(&self) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let from = self.drained_to.swap(head, Ordering::Relaxed);
        let start = from.max(head.saturating_sub(cap));
        let mut out: Vec<(u64, Event)> = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = &self.slots[(seq % cap) as usize];
            let marker = slot.marker.load(Ordering::Acquire);
            if marker != seq + 1 {
                continue; // overwritten by a newer event, or mid-write
            }
            let at: Time = slot.at.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let entry = slot.entry.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            // Re-check: if the marker moved, the fields may be torn.
            if slot.marker.load(Ordering::Acquire) != seq + 1 {
                continue;
            }
            let Some((kind, node)) = unpack_meta(meta) else {
                continue;
            };
            out.push((
                seq,
                Event {
                    at,
                    kind,
                    node,
                    entry: unpack_entry(entry),
                    value,
                },
            ));
        }
        out.sort_by_key(|(seq, ev)| (ev.at, *seq));
        let dropped = (head - from).saturating_sub(out.len() as u64);
        (out.into_iter().map(|(_, ev)| ev).collect(), dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Time, kind: EventKind, seq: u64) -> Event {
        Event {
            at,
            kind,
            node: (1, 2),
            entry: (3, seq),
            value: at * 10,
        }
    }

    #[test]
    fn push_drain_round_trips_fields() {
        let r = Ring::new(16);
        let e = Event {
            at: 123_456,
            kind: EventKind::ChunkRebuilt,
            node: (7, 65_000),
            entry: (1_000_000, 9_999_999),
            value: u64::MAX,
        };
        r.push(e);
        let (got, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(got, vec![e]);
    }

    #[test]
    fn bounded_ring_evicts_oldest_and_counts() {
        let r = Ring::new(4);
        for i in 0..10u64 {
            r.push(ev(i, EventKind::Submitted, i));
        }
        let (got, dropped) = r.drain();
        assert_eq!(dropped, 6);
        let ats: Vec<Time> = got.iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![6, 7, 8, 9]);
        assert_eq!(r.published(), 10);
    }

    #[test]
    fn second_drain_sees_only_new_events() {
        let r = Ring::new(8);
        r.push(ev(1, EventKind::Ordered, 1));
        let (got, _) = r.drain();
        assert_eq!(got.len(), 1);
        let (got, dropped) = r.drain();
        assert!(got.is_empty());
        assert_eq!(dropped, 0);
        r.push(ev(2, EventKind::Executed, 2));
        let (got, _) = r.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, 2);
    }

    #[test]
    fn drain_orders_by_time_then_publication() {
        let r = Ring::new(8);
        r.push(ev(5, EventKind::Submitted, 0));
        r.push(ev(3, EventKind::Submitted, 1));
        r.push(ev(5, EventKind::Certified, 2));
        let (got, _) = r.drain();
        assert_eq!(got[0].at, 3);
        assert_eq!(got[1].kind, EventKind::Submitted);
        assert_eq!(got[2].kind, EventKind::Certified);
    }

    #[test]
    fn concurrent_writers_lose_nothing_within_capacity() {
        use std::sync::Arc;
        let r = Arc::new(Ring::new(4096));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    r.push(ev(t * 1000 + i, EventKind::Executed, i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (got, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(got.len(), 4000);
    }
}

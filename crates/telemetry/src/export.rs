//! Trace exporters: JSONL event logs and Chrome `trace_event` JSON.
//!
//! The Chrome format loads directly in Perfetto (<https://ui.perfetto.dev>)
//! or `about://tracing`: one track (process) per node, one async span per
//! entry per node bracketing its lifecycle, and an instant event per
//! phase boundary. [`validate_chrome_trace`] re-parses our own output
//! and proves it structurally sound (balanced `b`/`e` pairs, monotone
//! timestamps per track) — used by the golden tests and by
//! `scripts/check.sh` via the trace bin.
//!
//! [`breakdown`] reduces a drained event stream to the paper's Fig. 11
//! per-phase latency table using the *same* fallback rules as
//! `Node::phase_breakdown()` in `massbft-core`, so the two agree on the
//! same run.

use crate::json::{self, Value};
use crate::{Event, EventKind, Time};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serializes events as JSONL: one self-describing JSON object per line.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        let _ = writeln!(
            out,
            r#"{{"at":{},"kind":"{}","node":[{},{}],"entry":[{},{}],"value":{}}}"#,
            ev.at,
            ev.kind.name(),
            ev.node.0,
            ev.node.1,
            ev.entry.0,
            ev.entry.1,
            ev.value
        );
    }
    out
}

/// Parses a JSONL event log produced by [`to_jsonl`].
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| format!("line {}: missing {k:?}", lineno + 1))
        };
        let num = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("line {}: {k:?} not a u64", lineno + 1))
        };
        let pair = |k: &str| -> Result<(u64, u64), String> {
            let arr = field(k)?
                .as_arr()
                .ok_or_else(|| format!("line {}: {k:?} not an array", lineno + 1))?;
            match arr {
                [a, b] => Ok((
                    a.as_u64()
                        .ok_or(format!("line {}: bad {k:?}[0]", lineno + 1))?,
                    b.as_u64()
                        .ok_or(format!("line {}: bad {k:?}[1]", lineno + 1))?,
                )),
                _ => Err(format!("line {}: {k:?} not a pair", lineno + 1)),
            }
        };
        let kind_name = field("kind")?
            .as_str()
            .ok_or_else(|| format!("line {}: kind not a string", lineno + 1))?;
        let kind = EventKind::from_name(kind_name)
            .ok_or_else(|| format!("line {}: unknown kind {kind_name:?}", lineno + 1))?;
        let node = pair("node")?;
        let entry = pair("entry")?;
        out.push(Event {
            at: num("at")?,
            kind,
            node: (node.0 as u32, node.1 as u32),
            entry: (entry.0 as u32, entry.1),
            value: num("value")?,
        });
    }
    Ok(out)
}

/// Sequential Chrome pid per node, deterministic (node-sorted).
fn node_pids(events: &[Event]) -> BTreeMap<(u32, u32), u64> {
    let mut pids = BTreeMap::new();
    for ev in events {
        pids.entry(ev.node).or_insert(0);
    }
    for (i, pid) in pids.values_mut().enumerate() {
        *pid = i as u64 + 1;
    }
    pids
}

/// Renders events as Chrome `trace_event` JSON (Perfetto-loadable).
///
/// Layout: one process per node (named `node <g>/<n>`), an async
/// `b`/`e` span per `(node, entry)` bracketing that entry's lifecycle on
/// that node, and an instant event per recorded phase boundary. Network
/// debug events become instant events in the `net` category.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let pids = node_pids(events);

    // First/last lifecycle timestamp per (node, entry) → async span.
    type SpanKey = ((u32, u32), (u32, u64));
    let mut spans: BTreeMap<SpanKey, (Time, Time)> = BTreeMap::new();
    for ev in events {
        if ev.entry == (0, 0) || !EventKind::LIFECYCLE.contains(&ev.kind) {
            continue;
        }
        let span = spans.entry((ev.node, ev.entry)).or_insert((ev.at, ev.at));
        span.0 = span.0.min(ev.at);
        span.1 = span.1.max(ev.at);
    }

    let mut out = String::with_capacity(events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&s);
    };

    for (node, pid) in &pids {
        push(
            format!(
                r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"node {}/{}"}}}}"#,
                node.0, node.1
            ),
            &mut out,
            &mut first,
        );
        push(
            format!(
                r#"{{"name":"process_sort_index","ph":"M","pid":{pid},"tid":0,"args":{{"sort_index":{pid}}}}}"#
            ),
            &mut out,
            &mut first,
        );
    }

    // (ts, serialized) for all timed records, then emit time-sorted so
    // every track's timestamps are monotone.
    let mut timed: Vec<(Time, u8, String)> = Vec::with_capacity(events.len() + spans.len() * 2);
    for (&(node, entry), &(start, end)) in &spans {
        let pid = pids[&node];
        let id = format!("p{pid}-{}.{}", entry.0, entry.1);
        let name = format!("entry {}:{}", entry.0, entry.1);
        timed.push((
            start,
            0, // "b" sorts before same-ts instants
            format!(
                r#"{{"name":"{name}","cat":"entry","ph":"b","id":"{id}","ts":{start},"pid":{pid},"tid":0}}"#
            ),
        ));
        timed.push((
            end,
            2, // "e" sorts after same-ts instants
            format!(
                r#"{{"name":"{name}","cat":"entry","ph":"e","id":"{id}","ts":{end},"pid":{pid},"tid":0}}"#
            ),
        ));
    }
    for ev in events {
        let pid = pids[&ev.node];
        let cat = if EventKind::LIFECYCLE.contains(&ev.kind) {
            "phase"
        } else if ev.kind.is_view_event() {
            "view"
        } else {
            "net"
        };
        timed.push((
            ev.at,
            1,
            format!(
                r#"{{"name":"{}","cat":"{cat}","ph":"i","s":"t","ts":{},"pid":{pid},"tid":0,"args":{{"entry":"{}:{}","value":{}}}}}"#,
                ev.kind.name(), ev.at, ev.entry.0, ev.entry.1, ev.value
            ),
        ));
    }
    timed.sort_by_key(|t| (t.0, t.1));
    for (_, _, s) in timed {
        push(s, &mut out, &mut first);
    }
    out.push_str("\n]}\n");
    out
}

/// What [`validate_chrome_trace`] proves about a trace document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Node tracks (processes) present.
    pub tracks: usize,
    /// Balanced async spans (`b`/`e` pairs).
    pub spans: usize,
    /// Instant events per phase name.
    pub kind_counts: BTreeMap<String, u64>,
}

/// Parses and structurally validates a Chrome `trace_event` document:
/// every async `b` has exactly one matching `e` no earlier than it, and
/// per-track timestamps are monotone non-decreasing.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;

    let mut summary = TraceSummary::default();
    let mut open: BTreeMap<(String, String), Time> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, Time> = BTreeMap::new();
    let mut tracks: BTreeMap<u64, bool> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        if ph == "M" {
            tracks.entry(pid).or_insert(true);
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let last = last_ts.entry(pid).or_insert(0);
        if ts < *last {
            return Err(format!(
                "event {i}: track {pid} timestamp {ts} < previous {last}"
            ));
        }
        *last = ts;
        match ph {
            "b" => {
                let cat = ev.get("cat").and_then(Value::as_str).unwrap_or_default();
                let id = ev
                    .get("id")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: async b without id"))?;
                if open.insert((cat.to_string(), id.to_string()), ts).is_some() {
                    return Err(format!("event {i}: duplicate open span {id:?}"));
                }
            }
            "e" => {
                let cat = ev.get("cat").and_then(Value::as_str).unwrap_or_default();
                let id = ev
                    .get("id")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: async e without id"))?;
                let begin = open
                    .remove(&(cat.to_string(), id.to_string()))
                    .ok_or_else(|| format!("event {i}: e without b for {id:?}"))?;
                if ts < begin {
                    return Err(format!("event {i}: span {id:?} ends before it begins"));
                }
                summary.spans += 1;
            }
            "i" => {
                let name = ev
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: instant without name"))?;
                *summary.kind_counts.entry(name.to_string()).or_insert(0) += 1;
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    if let Some(((_, id), _)) = open.into_iter().next() {
        return Err(format!("span {id:?} never closed"));
    }
    summary.tracks = tracks.len();
    Ok(summary)
}

/// Fig. 11 per-phase latency means, derived from span events.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Submitted → certified (local PBFT), ms.
    pub local_consensus_ms: f64,
    /// Certified → global commit, ms.
    pub global_replication_ms: f64,
    /// Global commit → deterministic order, ms.
    pub ordering_ms: f64,
    /// Ordered → executed, ms.
    pub execution_ms: f64,
    /// Entries contributing to the means.
    pub entries: u64,
}

impl Breakdown {
    /// Sum of the four phase means (≈ end-to-end latency), ms.
    pub fn total_ms(&self) -> f64 {
        self.local_consensus_ms + self.global_replication_ms + self.ordering_ms + self.execution_ms
    }
}

/// Reduces a drained event stream to per-phase means over origin-group
/// entries, mirroring `Node::phase_breakdown()` exactly: phase marks are
/// taken at the entry's origin representative (the node that emitted
/// `Submitted`), with the same fallbacks — a missing `GlobalCommit`
/// falls back to the certificate time and a missing `Ordered` to the
/// commit time, clamped monotone. Returns `None` when no entry has the
/// full `Submitted`/`Certified`/`Executed` triple.
pub fn breakdown(events: &[Event]) -> Option<Breakdown> {
    struct Marks {
        origin: Option<(u32, u32)>,
        created: Option<Time>,
        certified: Option<Time>,
        committed: Option<Time>,
        ordered: Option<Time>,
        executed: Option<Time>,
    }
    let mut marks: BTreeMap<(u32, u64), Marks> = BTreeMap::new();
    for ev in events {
        if ev.entry == (0, 0) {
            continue;
        }
        let m = marks.entry(ev.entry).or_insert(Marks {
            origin: None,
            created: None,
            certified: None,
            committed: None,
            ordered: None,
            executed: None,
        });
        if ev.kind == EventKind::Submitted {
            m.origin = Some(ev.node);
            m.created.get_or_insert(ev.at);
        }
        // Only marks at the origin rep count, as in protocol.rs where
        // the rep's own maps feed phase_sums. Submitted fixes the origin;
        // events arriving before it are matched by group instead.
        let at_origin = match m.origin {
            Some(origin) => ev.node == origin,
            None => ev.node.0 == ev.entry.0,
        };
        if !at_origin {
            continue;
        }
        match ev.kind {
            EventKind::Certified => m.certified.get_or_insert(ev.at),
            EventKind::GlobalCommit => m.committed.get_or_insert(ev.at),
            EventKind::Ordered => m.ordered.get_or_insert(ev.at),
            EventKind::Executed => m.executed.get_or_insert(ev.at),
            _ => continue,
        };
    }

    let mut sums = [0u64; 4];
    let mut count = 0u64;
    for m in marks.values() {
        let (Some(cr), Some(ce), Some(ex)) = (m.created, m.certified, m.executed) else {
            continue;
        };
        let co = m.committed.unwrap_or(ce);
        let or = m.ordered.unwrap_or(co).max(co);
        sums[0] += ce.saturating_sub(cr);
        sums[1] += co.saturating_sub(ce);
        sums[2] += or.saturating_sub(co);
        sums[3] += ex.saturating_sub(or);
        count += 1;
    }
    if count == 0 {
        return None;
    }
    let c = count as f64 * 1000.0;
    Some(Breakdown {
        local_consensus_ms: sums[0] as f64 / c,
        global_replication_ms: sums[1] as f64 / c,
        ordering_ms: sums[2] as f64 / c,
        execution_ms: sums[3] as f64 / c,
        entries: count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lifecycle_events() -> Vec<Event> {
        // One entry (0, 1), origin rep (0, 0), observed remotely at (1, 0).
        let e = (0u32, 1u64);
        let mk = |at, kind, node, value| Event {
            at,
            kind,
            node,
            entry: e,
            value,
        };
        vec![
            mk(100, EventKind::Submitted, (0, 0), 3),
            mk(150, EventKind::PbftPrePrepare, (0, 0), 0),
            mk(220, EventKind::Certified, (0, 0), 0),
            mk(230, EventKind::Encoded, (0, 0), 4096),
            mk(240, EventKind::WanTransferStart, (0, 0), 4096),
            mk(400, EventKind::ChunkRebuilt, (1, 0), 4096),
            mk(520, EventKind::GlobalCommit, (0, 0), 0),
            mk(530, EventKind::GlobalCommit, (1, 0), 0),
            mk(600, EventKind::Ordered, (0, 0), 0),
            mk(700, EventKind::Executed, (0, 0), 3),
            mk(710, EventKind::Executed, (1, 0), 3),
        ]
    }

    #[test]
    fn jsonl_round_trip() {
        let events = lifecycle_events();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(parse_jsonl("{\"at\":1}").is_err());
        assert!(parse_jsonl(
            "{\"at\":1,\"kind\":\"nope\",\"node\":[0,0],\"entry\":[0,0],\"value\":0}"
        )
        .is_err());
        assert!(parse_jsonl("not json").is_err());
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let trace = to_chrome_trace(&lifecycle_events());
        let summary = validate_chrome_trace(&trace).unwrap();
        assert_eq!(summary.tracks, 2); // nodes (0,0) and (1,0)
        assert_eq!(summary.spans, 2); // one async span per (node, entry)
        assert_eq!(summary.kind_counts["submitted"], 1);
        assert_eq!(summary.kind_counts["executed"], 2);
    }

    // Golden-file shape test: the exact serialization of a tiny trace.
    // If the emitter changes representation, this fails loudly so the
    // change is a conscious one (Perfetto compatibility is at stake).
    #[test]
    fn chrome_trace_golden() {
        let events = vec![Event {
            at: 7,
            kind: EventKind::Submitted,
            node: (0, 0),
            entry: (0, 1),
            value: 2,
        }];
        let golden = concat!(
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"node 0/0\"}},\n",
            "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"sort_index\":1}},\n",
            "{\"name\":\"entry 0:1\",\"cat\":\"entry\",\"ph\":\"b\",\"id\":\"p1-0.1\",\"ts\":7,\"pid\":1,\"tid\":0},\n",
            "{\"name\":\"submitted\",\"cat\":\"phase\",\"ph\":\"i\",\"s\":\"t\",\"ts\":7,\"pid\":1,\"tid\":0,\"args\":{\"entry\":\"0:1\",\"value\":2}},\n",
            "{\"name\":\"entry 0:1\",\"cat\":\"entry\",\"ph\":\"e\",\"id\":\"p1-0.1\",\"ts\":7,\"pid\":1,\"tid\":0}\n",
            "]}\n",
        );
        assert_eq!(to_chrome_trace(&events), golden);
        validate_chrome_trace(golden).unwrap();
    }

    #[test]
    fn validator_rejects_unbalanced_and_nonmonotone() {
        let unbalanced = r#"{"traceEvents":[
            {"name":"x","cat":"entry","ph":"b","id":"a","ts":1,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("never closed"));

        let backwards = r#"{"traceEvents":[
            {"name":"a","cat":"phase","ph":"i","s":"t","ts":5,"pid":1,"tid":0},
            {"name":"b","cat":"phase","ph":"i","s":"t","ts":4,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("timestamp"));

        let inverted = r#"{"traceEvents":[
            {"name":"x","cat":"entry","ph":"e","id":"a","ts":3,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(inverted)
            .unwrap_err()
            .contains("e without b"));
    }

    #[test]
    fn breakdown_matches_protocol_fallback_rules() {
        let b = breakdown(&lifecycle_events()).unwrap();
        assert_eq!(b.entries, 1);
        // cr=100 ce=220 co=520 or=600 ex=700 (origin-node marks only).
        assert!((b.local_consensus_ms - 0.120).abs() < 1e-9);
        assert!((b.global_replication_ms - 0.300).abs() < 1e-9);
        assert!((b.ordering_ms - 0.080).abs() < 1e-9);
        assert!((b.execution_ms - 0.100).abs() < 1e-9);
        assert!((b.total_ms() - 0.600).abs() < 1e-9);
    }

    #[test]
    fn breakdown_fallbacks_without_commit_or_order() {
        let e = (2u32, 9u64);
        let mk = |at, kind| Event {
            at,
            kind,
            node: (2, 0),
            entry: e,
            value: 0,
        };
        // No GlobalCommit, no Ordered: co falls back to ce, or to co.
        let events = vec![
            mk(1000, EventKind::Submitted),
            mk(1400, EventKind::Certified),
            mk(2000, EventKind::Executed),
        ];
        let b = breakdown(&events).unwrap();
        assert!((b.local_consensus_ms - 0.4).abs() < 1e-9);
        assert_eq!(b.global_replication_ms, 0.0);
        assert_eq!(b.ordering_ms, 0.0);
        assert!((b.execution_ms - 0.6).abs() < 1e-9);
        // Incomplete entries contribute nothing.
        assert!(breakdown(&[mk(1, EventKind::Submitted)]).is_none());
    }
}

//! In-memory key-value store with batch versioning.

use crate::{Key, Value};
use std::collections::HashMap;

/// An in-memory hash-table store, the paper's execution-state backend.
///
/// The store tracks a monotonically increasing *batch version*: the Aria
/// executor bumps it once per applied batch, which gives tests and the
/// ledger layer a cheap way to assert replica convergence (same version +
/// same content hash ⇒ same state).
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    map: HashMap<Key, Value>,
    version: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a key.
    pub fn get(&self, key: &[u8]) -> Option<&Value> {
        self.map.get(key)
    }

    /// Writes a key (used for loading initial state; transactional writes
    /// go through the executor).
    pub fn put(&mut self, key: Key, value: Value) {
        self.map.insert(key, value);
    }

    /// Deletes a key. Returns the previous value.
    pub fn delete(&mut self, key: &[u8]) -> Option<Value> {
        self.map.remove(key)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The number of batches applied so far.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Bumps the batch version (executor use).
    pub(crate) fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Order-independent content fingerprint: XOR of per-pair hashes.
    /// Two replicas that applied the same batches agree on this.
    pub fn content_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut acc = 0u64;
        for (k, v) in &self.map {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            v.hash(&mut h);
            acc ^= h.finish();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_crud() {
        let mut s = KvStore::new();
        assert!(s.is_empty());
        s.put(b"a".to_vec(), b"1".to_vec());
        assert_eq!(s.get(b"a"), Some(&b"1".to_vec()));
        assert_eq!(s.len(), 1);
        s.put(b"a".to_vec(), b"2".to_vec());
        assert_eq!(s.get(b"a"), Some(&b"2".to_vec()));
        assert_eq!(s.delete(b"a"), Some(b"2".to_vec()));
        assert_eq!(s.get(b"a"), None);
    }

    #[test]
    fn content_hash_is_order_independent() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.put(b"x".to_vec(), b"1".to_vec());
        a.put(b"y".to_vec(), b"2".to_vec());
        b.put(b"y".to_vec(), b"2".to_vec());
        b.put(b"x".to_vec(), b"1".to_vec());
        assert_eq!(a.content_hash(), b.content_hash());
        b.put(b"z".to_vec(), b"3".to_vec());
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn version_starts_at_zero() {
        let s = KvStore::new();
        assert_eq!(s.version(), 0);
    }
}

//! In-memory key-value store with batch versioning, striped into shards.
//!
//! The table is split into [`SHARDS`] independent hash maps keyed by an
//! FNV-1a hash of the key. Reads and single-key writes behave exactly as
//! a flat map would; the striping exists so the Aria commit phase can
//! apply a batch's write set with one worker per shard group — the WAW
//! rule guarantees at most one committed writer per key per batch, so
//! per-shard apply order cannot affect the result.

use crate::pool::WorkerPool;
use crate::{Key, Value};
use std::collections::HashMap;

/// Number of stripes. A power of two well above any realistic worker
/// count, so shard groups stay balanced.
pub const SHARDS: usize = 32;

/// An in-memory hash-table store, the paper's execution-state backend.
///
/// The store tracks a monotonically increasing *batch version*: the Aria
/// executor bumps it once per applied batch, which gives tests and the
/// ledger layer a cheap way to assert replica convergence (same version +
/// same content hash ⇒ same state).
#[derive(Debug, Clone)]
pub struct KvStore {
    shards: Vec<HashMap<Key, Value>>,
    version: u64,
    /// Incrementally maintained XOR of per-pair hashes; see
    /// [`KvStore::content_hash`]. XOR is self-inverting, so every mutation
    /// can fold the old pair out and the new pair in, keeping the
    /// fingerprint O(1) to read instead of O(keys) — the executor reads it
    /// once per entry, which made the full scan the simulator's hot spot.
    content_acc: u64,
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore {
            shards: vec![HashMap::new(); SHARDS],
            version: 0,
            content_acc: 0,
        }
    }
}

/// Hash of one (key, value) pair as folded into the content fingerprint.
/// `Vec<u8>` hashes identically to its `[u8]` slice, so callers may pass
/// either form for the same bytes.
#[inline]
fn pair_hash(k: &[u8], v: &[u8]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    k.hash(&mut h);
    v.hash(&mut h);
    h.finish()
}

/// FNV-1a over the key bytes — the shared key hash for both the store's
/// shard selection and the executor's reservation-table sharding (the two
/// mask different bit counts off the same hash).
#[inline]
pub(crate) fn fnv64(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Shard index for a key: FNV-1a masked to [`SHARDS`].
#[inline]
pub(crate) fn shard_of(key: &[u8]) -> usize {
    (fnv64(key) as usize) & (SHARDS - 1)
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a key.
    pub fn get(&self, key: &[u8]) -> Option<&Value> {
        self.shards[shard_of(key)].get(key)
    }

    /// Writes a key (used for loading initial state; transactional writes
    /// go through the executor).
    pub fn put(&mut self, key: Key, value: Value) {
        use std::collections::hash_map::Entry;
        let shard = &mut self.shards[shard_of(&key)];
        let delta = match shard.entry(key) {
            Entry::Occupied(mut e) => {
                let d = pair_hash(e.key(), e.get()) ^ pair_hash(e.key(), &value);
                e.insert(value);
                d
            }
            Entry::Vacant(e) => {
                let d = pair_hash(e.key(), &value);
                e.insert(value);
                d
            }
        };
        self.content_acc ^= delta;
    }

    /// Deletes a key. Returns the previous value.
    pub fn delete(&mut self, key: &[u8]) -> Option<Value> {
        let old = self.shards[shard_of(key)].remove(key);
        if let Some(v) = &old {
            self.content_acc ^= pair_hash(key, v);
        }
        old
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }

    /// The number of batches applied so far.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Bumps the batch version (executor use).
    pub(crate) fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Applies a batch's committed writes, fanning shard groups out over
    /// `pool`. Within one transaction, writes arrive in program order and
    /// land in the same shard bucket in that order, so repeated writes of
    /// one key keep last-write-wins semantics; across transactions the WAW
    /// check has already ensured disjoint key sets, so the shard-parallel
    /// apply is order-independent. Falls back to serial puts for small
    /// write sets or a serial pool.
    pub(crate) fn apply_writes(&mut self, pool: &WorkerPool, writes: &[(&Key, &Value)]) {
        if pool.is_serial() || writes.len() < crate::pool::MIN_CHUNK * 2 {
            for &(k, v) in writes {
                self.put(k.clone(), v.clone());
            }
            return;
        }
        let mut buckets: Vec<Vec<(&Key, &Value)>> = vec![Vec::new(); SHARDS];
        for &(k, v) in writes {
            buckets[shard_of(k)].push((k, v));
        }
        let lanes = pool.workers().min(SHARDS);
        let group = SHARDS.div_ceil(lanes);
        // Each lane folds its fingerprint delta into its own slot; XOR is
        // commutative, so combining the slots afterwards is lane-order
        // independent and matches what serial puts would have produced.
        let mut deltas = vec![0u64; SHARDS.div_ceil(group)];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self
            .shards
            .chunks_mut(group)
            .zip(buckets.chunks(group))
            .zip(deltas.iter_mut())
            .map(|((shard_group, bucket_group), delta)| {
                Box::new(move || {
                    let mut d = 0u64;
                    for (shard, bucket) in shard_group.iter_mut().zip(bucket_group) {
                        for &(k, v) in bucket {
                            d ^= pair_hash(k, v);
                            if let Some(old) = shard.insert(k.clone(), v.clone()) {
                                d ^= pair_hash(k, &old);
                            }
                        }
                    }
                    *delta = d;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_tasks(tasks);
        self.content_acc ^= deltas.into_iter().fold(0, |a, d| a ^ d);
    }

    /// Applies a batch's committed writes from per-lane, per-shard buckets
    /// (`lane_buckets[lane][shard]`) as produced by the executor's fused
    /// commit pass — the writes arrive pre-sharded, so this skips the
    /// serial re-bucketing scan [`KvStore::apply_writes`] pays. Within one
    /// shard, lanes apply in lane order; lane order is ascending
    /// transaction id and each lane's bucket preserves program order, so
    /// repeated writes of one key keep last-write-wins semantics. Across
    /// transactions the WAW rule has already made committed key sets
    /// disjoint.
    pub(crate) fn apply_sharded(
        &mut self,
        pool: &WorkerPool,
        lane_buckets: &[Vec<Vec<(&Key, &Value)>>],
    ) {
        let total: usize = lane_buckets
            .iter()
            .flat_map(|lane| lane.iter().map(Vec::len))
            .sum();
        if pool.is_serial() || total < crate::pool::MIN_CHUNK * 2 {
            for shard in 0..SHARDS {
                for lane in lane_buckets {
                    for &(k, v) in &lane[shard] {
                        self.put(k.clone(), v.clone());
                    }
                }
            }
            return;
        }
        let lanes = pool.workers().min(SHARDS);
        let group = SHARDS.div_ceil(lanes);
        let mut deltas = vec![0u64; SHARDS.div_ceil(group)];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self
            .shards
            .chunks_mut(group)
            .enumerate()
            .zip(deltas.iter_mut())
            .map(|((gi, shard_group), delta)| {
                Box::new(move || {
                    let mut d = 0u64;
                    for (si, shard) in shard_group.iter_mut().enumerate() {
                        let s = gi * group + si;
                        for lane in lane_buckets {
                            for &(k, v) in &lane[s] {
                                d ^= pair_hash(k, v);
                                if let Some(old) = shard.insert(k.clone(), v.clone()) {
                                    d ^= pair_hash(k, &old);
                                }
                            }
                        }
                    }
                    *delta = d;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_tasks(tasks);
        self.content_acc ^= deltas.into_iter().fold(0, |a, d| a ^ d);
    }

    /// Order-independent content fingerprint: XOR of per-pair hashes.
    /// Two replicas that applied the same batches agree on this, and the
    /// shard layout cannot affect it.
    ///
    /// The value is maintained incrementally by [`put`](KvStore::put),
    /// [`delete`](KvStore::delete), and the batch apply path, so reading
    /// it is O(1). The executor stamps it into every entry's
    /// `state_fingerprint`; recomputing the XOR over a growing table on
    /// each executed entry was the single largest per-event cost in
    /// paper-scale simulations.
    pub fn content_hash(&self) -> u64 {
        debug_assert_eq!(self.content_acc, self.recompute_content_hash());
        self.content_acc
    }

    /// From-scratch recomputation of the fingerprint — the reference
    /// implementation the incremental accumulator must agree with.
    fn recompute_content_hash(&self) -> u64 {
        let mut acc = 0u64;
        for shard in &self.shards {
            for (k, v) in shard {
                acc ^= pair_hash(k, v);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_crud() {
        let mut s = KvStore::new();
        assert!(s.is_empty());
        s.put(b"a".to_vec(), b"1".to_vec());
        assert_eq!(s.get(b"a"), Some(&b"1".to_vec()));
        assert_eq!(s.len(), 1);
        s.put(b"a".to_vec(), b"2".to_vec());
        assert_eq!(s.get(b"a"), Some(&b"2".to_vec()));
        assert_eq!(s.delete(b"a"), Some(b"2".to_vec()));
        assert_eq!(s.get(b"a"), None);
    }

    #[test]
    fn content_hash_is_order_independent() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.put(b"x".to_vec(), b"1".to_vec());
        a.put(b"y".to_vec(), b"2".to_vec());
        b.put(b"y".to_vec(), b"2".to_vec());
        b.put(b"x".to_vec(), b"1".to_vec());
        assert_eq!(a.content_hash(), b.content_hash());
        b.put(b"z".to_vec(), b"3".to_vec());
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn incremental_hash_matches_recomputation() {
        // Inserts, overwrites, deletes of absent and present keys, and the
        // parallel batch-apply path must all keep the O(1) accumulator in
        // lock-step with a from-scratch scan.
        let mut s = KvStore::new();
        assert_eq!(s.content_hash(), s.recompute_content_hash());
        for i in 0..64u32 {
            s.put(i.to_le_bytes().to_vec(), vec![i as u8; 16]);
        }
        s.put(3u32.to_le_bytes().to_vec(), b"overwritten".to_vec());
        s.put(3u32.to_le_bytes().to_vec(), b"overwritten again".to_vec());
        assert_eq!(s.delete(&9u32.to_le_bytes()), Some(vec![9u8; 16]));
        assert_eq!(s.delete(b"never inserted"), None);
        assert_eq!(s.content_hash(), s.recompute_content_hash());

        let keys: Vec<Key> = (32..200u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let vals: Vec<Value> = (32..200u32).map(|i| vec![!i as u8; 8]).collect();
        let writes: Vec<(&Key, &Value)> = keys.iter().zip(vals.iter()).collect();
        s.apply_writes(&WorkerPool::new(4), &writes);
        assert_eq!(s.content_hash(), s.recompute_content_hash());

        // An empty store built by deleting everything matches a fresh one.
        let mut t = KvStore::new();
        t.put(b"k".to_vec(), b"v".to_vec());
        t.delete(b"k");
        assert_eq!(t.content_hash(), KvStore::new().content_hash());
    }

    #[test]
    fn version_starts_at_zero() {
        let s = KvStore::new();
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn keys_spread_over_shards() {
        let hit: std::collections::HashSet<usize> =
            (0..1000u32).map(|i| shard_of(&i.to_le_bytes())).collect();
        assert!(hit.len() > SHARDS / 2, "only {} shards hit", hit.len());
    }

    #[test]
    fn parallel_apply_matches_serial_puts() {
        let keys: Vec<Key> = (0..500u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let vals: Vec<Value> = (0..500u32).map(|i| vec![i as u8; 8]).collect();
        let writes: Vec<(&Key, &Value)> = keys.iter().zip(vals.iter()).collect();

        let mut serial = KvStore::new();
        for &(k, v) in &writes {
            serial.put(k.clone(), v.clone());
        }
        let mut parallel = KvStore::new();
        parallel.apply_writes(&WorkerPool::new(4), &writes);

        assert_eq!(serial.len(), parallel.len());
        assert_eq!(serial.content_hash(), parallel.content_hash());
    }

    #[test]
    fn apply_sharded_matches_serial_puts() {
        // Pre-bucketed lanes (as the fused commit pass produces) must land
        // exactly where a serial put-loop in lane order would, on both the
        // small-batch serial path and the pool path.
        let keys: Vec<Key> = (0..300u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let vals: Vec<Value> = (0..300u32).map(|i| vec![i as u8; 8]).collect();
        let mut serial = KvStore::new();
        for (k, v) in keys.iter().zip(vals.iter()) {
            serial.put(k.clone(), v.clone());
        }
        for (lanes, pool_width) in [(2usize, 1usize), (3, 4)] {
            let mut lane_buckets: Vec<Vec<Vec<(&Key, &Value)>>> =
                vec![vec![Vec::new(); SHARDS]; lanes];
            for (i, (k, v)) in keys.iter().zip(vals.iter()).enumerate() {
                lane_buckets[i % lanes][shard_of(k)].push((k, v));
            }
            let mut s = KvStore::new();
            s.apply_sharded(&WorkerPool::new(pool_width), &lane_buckets);
            assert_eq!(s.len(), serial.len());
            assert_eq!(s.content_hash(), serial.content_hash());
            assert_eq!(s.content_hash(), s.recompute_content_hash());
        }
    }

    #[test]
    fn parallel_apply_keeps_last_write_wins_within_txn_order() {
        // Same key written twice in the slice (as one txn's program order
        // would produce): the later value must win, even on the pool path.
        let key: Key = b"dup".to_vec();
        let v1: Value = b"first".to_vec();
        let v2: Value = b"second".to_vec();
        let filler_keys: Vec<Key> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let filler_val: Value = b"x".to_vec();
        let mut writes: Vec<(&Key, &Value)> = vec![(&key, &v1)];
        writes.extend(filler_keys.iter().map(|k| (k, &filler_val)));
        writes.push((&key, &v2));
        let mut s = KvStore::new();
        s.apply_writes(&WorkerPool::new(8), &writes);
        assert_eq!(s.get(b"dup"), Some(&v2));
    }
}

//! Scoped fork-join worker pool for the execution pipeline.
//!
//! The offline toolchain has no rayon, so this is the minimal primitive
//! the parallel Aria phases need: split a batch into contiguous chunks,
//! run each chunk on its own thread, and join in task order. Workers are
//! `std::thread::scope` threads, which lets tasks borrow the batch and
//! the store snapshot without `Arc` or `'static` bounds — and without
//! `unsafe`, which this crate forbids.
//!
//! Spawning per batch costs a few tens of microseconds; the executor only
//! routes work here when the batch is large enough to amortize it (see
//! [`WorkerPool::effective_workers`]). Task 0 always runs on the calling
//! thread, so a pool of `n` workers spawns `n - 1` threads.

use std::time::Instant;

/// Minimum items each worker should own before fanning out; below this the
/// fork-join overhead dominates and the caller runs serially.
pub const MIN_CHUNK: usize = 16;

/// Environment variable that forces the worker count for pools built with
/// [`WorkerPool::from_env`] (used by `scripts/check.sh` to run the whole
/// test suite under real parallelism).
pub const WORKERS_ENV: &str = "MASSBFT_EXEC_WORKERS";

/// A fixed-width fork-join pool. Cheap to clone (it is only a width); the
/// threads themselves live only for the duration of each call.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    workers: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new(1)
    }
}

impl WorkerPool {
    /// A pool of `workers` lanes (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// Reads the width from [`WORKERS_ENV`], defaulting to 1 (serial).
    /// An unparsable value still defaults to serial, but loudly: one
    /// stderr line plus an `exec_config_invalid` telemetry event, so a
    /// typo'd `MASSBFT_EXEC_WORKERS=eight` can't silently serialize a
    /// benchmark.
    pub fn from_env() -> Self {
        let workers = match std::env::var(WORKERS_ENV) {
            Ok(v) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    crate::stats::warn_invalid_env(WORKERS_ENV, &v, crate::stats::ENV_CODE_WORKERS);
                    1
                }
            },
            Err(_) => 1,
        };
        Self::new(workers)
    }

    /// Configured width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether every call runs inline on the caller thread.
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Width actually worth using for `items` work items: never more lanes
    /// than leave [`MIN_CHUNK`] items each.
    pub fn effective_workers(&self, items: usize) -> usize {
        self.workers.min(items / MIN_CHUNK).max(1)
    }

    /// Runs the tasks across the pool, returning results in task order.
    /// Task 0 executes on the calling thread; the rest are spawned as
    /// scoped threads. Per-task busy time feeds the utilization counters
    /// in [`crate::stats`].
    pub fn run_tasks<'env, R: Send>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> R + Send + 'env>>,
    ) -> Vec<R> {
        if tasks.len() <= 1 {
            return tasks
                .into_iter()
                .map(|task| {
                    let t0 = Instant::now();
                    let r = task();
                    crate::stats::record_busy_ns(t0.elapsed().as_nanos() as u64);
                    r
                })
                .collect();
        }
        std::thread::scope(|scope| {
            let mut iter = tasks.into_iter();
            let first = iter.next().expect("tasks nonempty");
            let handles: Vec<_> = iter
                .map(|task| {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let r = task();
                        (r, t0.elapsed().as_nanos() as u64)
                    })
                })
                .collect();
            let t0 = Instant::now();
            let mut out = Vec::with_capacity(handles.len() + 1);
            out.push(first());
            crate::stats::record_busy_ns(t0.elapsed().as_nanos() as u64);
            for h in handles {
                let (r, busy_ns) = h.join().expect("worker task panicked");
                crate::stats::record_busy_ns(busy_ns);
                out.push(r);
            }
            out
        })
    }

    /// Maps `f` over `items` in parallel contiguous chunks, preserving
    /// item order. `f` receives the item's global index. Falls back to a
    /// plain serial map when the batch is too small to fan out.
    pub fn map_chunks<T, R, F>(&self, items: &[T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let lanes = self.effective_workers(items.len());
        if lanes <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = items.len().div_ceil(lanes);
        let tasks: Vec<Box<dyn FnOnce() -> Vec<R> + Send + '_>> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let base = ci * chunk;
                Box::new(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(off, t)| f(base + off, t))
                        .collect()
                }) as Box<dyn FnOnce() -> Vec<R> + Send + '_>
            })
            .collect();
        self.run_tasks(tasks).into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert!(pool.is_serial());
        let out = pool.map_chunks(&[1, 2, 3], &|i, x: &i32| (i, *x * 10));
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn map_chunks_preserves_order_and_indices() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.map_chunks(&items, &|i, x: &u64| {
            assert_eq!(i as u64, *x);
            *x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_tasks_returns_in_task_order() {
        let pool = WorkerPool::new(3);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..7usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(pool.run_tasks(tasks), vec![0, 1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn tasks_can_borrow_locals() {
        let pool = WorkerPool::new(2);
        let data = vec![5u64; 64];
        let sums = pool.map_chunks(&data, &|_, x: &u64| *x);
        assert_eq!(sums.iter().sum::<u64>(), 320);
    }

    #[test]
    fn effective_workers_caps_small_batches() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.effective_workers(1), 1);
        assert_eq!(pool.effective_workers(MIN_CHUNK - 1), 1);
        assert_eq!(pool.effective_workers(MIN_CHUNK * 2), 2);
        assert_eq!(pool.effective_workers(10_000), 8);
    }

    #[test]
    fn zero_width_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn from_env_warns_on_unparsable_width() {
        let saved = std::env::var(WORKERS_ENV).ok();
        std::env::set_var(WORKERS_ENV, "eight");
        massbft_telemetry::set_enabled(true);
        let _ = massbft_telemetry::drain();
        let pool = WorkerPool::from_env();
        let drained = massbft_telemetry::drain();
        massbft_telemetry::set_enabled(false);
        match saved {
            Some(v) => std::env::set_var(WORKERS_ENV, v),
            None => std::env::remove_var(WORKERS_ENV),
        }
        assert_eq!(pool.workers(), 1, "unparsable width falls back to serial");
        assert!(
            drained.events.iter().any(|e| {
                e.kind == massbft_telemetry::EventKind::ExecConfigInvalid
                    && e.value == crate::stats::ENV_CODE_WORKERS
            }),
            "expected an exec_config_invalid event in the ring"
        );
    }
}

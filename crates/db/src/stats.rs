//! Process-wide execution-pipeline counters.
//!
//! Since the telemetry PR these counters live in the
//! [`massbft_telemetry::registry`] under `db.exec.*`; this module is the
//! facade that keeps the original `record_batch` / `exec_stats` API. The
//! executor records one sample per batch ([`record_batch`]); the worker
//! pool feeds per-task busy time ([`record_busy_ns`]) so utilization can
//! be computed as `busy / (wall × workers)` over the parallel batches.

use massbft_telemetry::registry::{counter, Counter};
use std::sync::OnceLock;

/// The registry handles, resolved once per process.
struct Counters {
    batches: Counter,
    parallel_batches: Counter,
    txns: Counter,
    committed: Counter,
    conflict_aborted: Counter,
    logic_aborted: Counter,
    execute_ns: Counter,
    reserve_ns: Counter,
    commit_ns: Counter,
    busy_ns: Counter,
    capacity_ns: Counter,
}

fn counters() -> &'static Counters {
    static C: OnceLock<Counters> = OnceLock::new();
    C.get_or_init(|| Counters {
        batches: counter("db.exec.batches"),
        parallel_batches: counter("db.exec.parallel_batches"),
        txns: counter("db.exec.txns"),
        committed: counter("db.exec.committed"),
        conflict_aborted: counter("db.exec.conflict_aborted"),
        logic_aborted: counter("db.exec.logic_aborted"),
        execute_ns: counter("db.exec.execute_ns"),
        reserve_ns: counter("db.exec.reserve_ns"),
        commit_ns: counter("db.exec.commit_ns"),
        busy_ns: counter("db.exec.busy_ns"),
        capacity_ns: counter("db.exec.capacity_ns"),
    })
}

/// One executed batch, as recorded by the Aria executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchSample {
    /// Transactions in the batch.
    pub txns: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Conflict (WAW/RAW) aborts.
    pub conflict_aborted: u64,
    /// Logic-level aborts.
    pub logic_aborted: u64,
    /// Wall time of the snapshot-execution phase.
    pub execute_ns: u64,
    /// Wall time of the reservation phase.
    pub reserve_ns: u64,
    /// Wall time of the commit-check + apply phase.
    pub commit_ns: u64,
    /// Worker lanes actually used (1 = serial path).
    pub workers: u64,
}

/// Records one batch's timings and outcome counts.
pub fn record_batch(s: BatchSample) {
    let c = counters();
    c.batches.inc();
    c.txns.add(s.txns);
    c.committed.add(s.committed);
    c.conflict_aborted.add(s.conflict_aborted);
    c.logic_aborted.add(s.logic_aborted);
    c.execute_ns.add(s.execute_ns);
    c.reserve_ns.add(s.reserve_ns);
    c.commit_ns.add(s.commit_ns);
    if s.workers > 1 {
        c.parallel_batches.inc();
        let wall = s.execute_ns + s.reserve_ns + s.commit_ns;
        c.capacity_ns.add(wall.saturating_mul(s.workers));
    }
}

/// Adds per-task busy time measured inside the worker pool.
pub fn record_busy_ns(ns: u64) {
    counters().busy_ns.add(ns);
}

/// Snapshot of the execution counters since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Batches executed.
    pub batches: u64,
    /// Batches that took the parallel path (effective workers > 1).
    pub parallel_batches: u64,
    /// Transactions executed (including aborted ones).
    pub txns: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Conflict (WAW/RAW) aborts.
    pub conflict_aborted: u64,
    /// Logic-level aborts.
    pub logic_aborted: u64,
    /// Cumulative snapshot-execution phase wall time.
    pub execute_ns: u64,
    /// Cumulative reservation phase wall time.
    pub reserve_ns: u64,
    /// Cumulative commit-check + apply phase wall time.
    pub commit_ns: u64,
    /// Cumulative per-worker busy time (pool tasks only).
    pub busy_ns: u64,
    /// Cumulative `wall × workers` over parallel batches.
    pub capacity_ns: u64,
}

impl ExecStats {
    /// Conflict-abort rate over all executed transactions.
    pub fn abort_rate(&self) -> f64 {
        if self.txns == 0 {
            0.0
        } else {
            self.conflict_aborted as f64 / self.txns as f64
        }
    }

    /// Fraction of parallel-batch worker capacity spent busy (0..=1);
    /// 0 when no batch took the parallel path.
    pub fn worker_utilization(&self) -> f64 {
        if self.capacity_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / self.capacity_ns as f64).min(1.0)
        }
    }

    /// Counter deltas since an earlier snapshot (for per-run reporting).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            batches: self.batches - earlier.batches,
            parallel_batches: self.parallel_batches - earlier.parallel_batches,
            txns: self.txns - earlier.txns,
            committed: self.committed - earlier.committed,
            conflict_aborted: self.conflict_aborted - earlier.conflict_aborted,
            logic_aborted: self.logic_aborted - earlier.logic_aborted,
            execute_ns: self.execute_ns - earlier.execute_ns,
            reserve_ns: self.reserve_ns - earlier.reserve_ns,
            commit_ns: self.commit_ns - earlier.commit_ns,
            busy_ns: self.busy_ns - earlier.busy_ns,
            capacity_ns: self.capacity_ns - earlier.capacity_ns,
        }
    }
}

/// Reads the current counter values.
pub fn exec_stats() -> ExecStats {
    let c = counters();
    ExecStats {
        batches: c.batches.get(),
        parallel_batches: c.parallel_batches.get(),
        txns: c.txns.get(),
        committed: c.committed.get(),
        conflict_aborted: c.conflict_aborted.get(),
        logic_aborted: c.logic_aborted.get(),
        execute_ns: c.execute_ns.get(),
        reserve_ns: c.reserve_ns.get(),
        commit_ns: c.commit_ns.get(),
        busy_ns: c.busy_ns.get(),
        capacity_ns: c.capacity_ns.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sample_accumulates() {
        let before = exec_stats();
        record_batch(BatchSample {
            txns: 10,
            committed: 7,
            conflict_aborted: 2,
            logic_aborted: 1,
            execute_ns: 100,
            reserve_ns: 20,
            commit_ns: 30,
            workers: 4,
        });
        let d = exec_stats().since(&before);
        assert_eq!(d.batches, 1);
        assert_eq!(d.parallel_batches, 1);
        assert_eq!(d.txns, 10);
        assert_eq!(d.committed, 7);
        assert_eq!(d.conflict_aborted, 2);
        assert_eq!(d.logic_aborted, 1);
        assert_eq!(d.capacity_ns, 150 * 4);
        assert!((d.abort_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn serial_batches_do_not_add_capacity() {
        let before = exec_stats();
        record_batch(BatchSample {
            txns: 5,
            committed: 5,
            execute_ns: 50,
            workers: 1,
            ..Default::default()
        });
        let d = exec_stats().since(&before);
        assert_eq!(d.parallel_batches, 0);
        assert_eq!(d.capacity_ns, 0);
        assert_eq!(d.worker_utilization(), 0.0);
    }

    // The facade and the registry must read the same counter.
    #[test]
    fn counters_live_in_the_registry() {
        let before = exec_stats();
        record_busy_ns(17);
        assert_eq!(exec_stats().since(&before).busy_ns, 17);
        let reg = massbft_telemetry::registry::counter("db.exec.busy_ns");
        assert_eq!(reg.get(), exec_stats().busy_ns);
    }
}

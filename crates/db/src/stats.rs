//! Process-wide execution-pipeline counters.
//!
//! Since the telemetry PR these counters live in the
//! [`massbft_telemetry::registry`] under `db.exec.*`; this module is the
//! facade that keeps the original `record_batch` / `exec_stats` API. The
//! executor records one sample per batch ([`record_batch`]); the worker
//! pool feeds per-task busy time ([`record_busy_ns`]) so utilization can
//! be computed as `busy / (wall × workers)` over every batch: serial
//! batches count their single inline lane as fully busy (one lane, one
//! wall of work), so workers=1 honestly reports ~1.0 instead of 0.

use massbft_telemetry::registry::{counter, Counter};
use massbft_telemetry::{emit, Event, EventKind};
use std::sync::OnceLock;

/// `value` payload of an [`EventKind::ExecConfigInvalid`] event: which
/// environment knob held the unparsable value.
pub const ENV_CODE_WORKERS: u64 = 0;
/// See [`ENV_CODE_WORKERS`].
pub const ENV_CODE_FALLBACK: u64 = 1;

/// Reports an unparsable execution-config environment variable: one line
/// on stderr (always) plus an [`EventKind::ExecConfigInvalid`] event in
/// the telemetry ring (when telemetry is enabled), so headless runs that
/// only collect the ring still see the misconfiguration.
pub(crate) fn warn_invalid_env(var: &str, value: &str, code: u64) {
    eprintln!("massbft-db: ignoring unparsable {var}={value:?}; using the default");
    emit(Event {
        at: 0,
        kind: EventKind::ExecConfigInvalid,
        node: (0, 0),
        entry: (0, 0),
        value: code,
    });
}

/// The registry handles, resolved once per process.
struct Counters {
    batches: Counter,
    parallel_batches: Counter,
    txns: Counter,
    committed: Counter,
    conflict_aborted: Counter,
    logic_aborted: Counter,
    execute_ns: Counter,
    reserve_ns: Counter,
    commit_ns: Counter,
    fallback_ns: Counter,
    fallback_committed: Counter,
    busy_ns: Counter,
    capacity_ns: Counter,
}

fn counters() -> &'static Counters {
    static C: OnceLock<Counters> = OnceLock::new();
    C.get_or_init(|| Counters {
        batches: counter("db.exec.batches"),
        parallel_batches: counter("db.exec.parallel_batches"),
        txns: counter("db.exec.txns"),
        committed: counter("db.exec.committed"),
        conflict_aborted: counter("db.exec.conflict_aborted"),
        logic_aborted: counter("db.exec.logic_aborted"),
        execute_ns: counter("db.exec.execute_ns"),
        reserve_ns: counter("db.exec.reserve_ns"),
        commit_ns: counter("db.exec.commit_ns"),
        fallback_ns: counter("db.exec.fallback_ns"),
        fallback_committed: counter("db.exec.fallback_committed"),
        busy_ns: counter("db.exec.busy_ns"),
        capacity_ns: counter("db.exec.capacity_ns"),
    })
}

/// One executed batch, as recorded by the Aria executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchSample {
    /// Transactions in the batch.
    pub txns: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Conflict (WAW/RAW) aborts.
    pub conflict_aborted: u64,
    /// Logic-level aborts.
    pub logic_aborted: u64,
    /// Wall time of the snapshot-execution phase.
    pub execute_ns: u64,
    /// Wall time of the reservation phase.
    pub reserve_ns: u64,
    /// Wall time of the commit-check + apply phase.
    pub commit_ns: u64,
    /// Wall time of the deterministic abort-fallback phase (0 when the
    /// fallback is disabled or nothing aborted).
    pub fallback_ns: u64,
    /// Conflict-aborted transactions rescued by the fallback re-run.
    pub fallback_committed: u64,
    /// Worker lanes actually used (1 = serial path).
    pub workers: u64,
}

/// Records one batch's timings and outcome counts.
pub fn record_batch(s: BatchSample) {
    let c = counters();
    c.batches.inc();
    c.txns.add(s.txns);
    c.committed.add(s.committed);
    c.conflict_aborted.add(s.conflict_aborted);
    c.logic_aborted.add(s.logic_aborted);
    c.execute_ns.add(s.execute_ns);
    c.reserve_ns.add(s.reserve_ns);
    c.commit_ns.add(s.commit_ns);
    c.fallback_ns.add(s.fallback_ns);
    c.fallback_committed.add(s.fallback_committed);
    // Capacity accrues for every batch so utilization is honest at any
    // width. The fallback re-run is inherently single-lane, so it
    // contributes one lane of capacity and one lane of busy time; on the
    // serial path the inline lane is likewise busy for the whole wall
    // (the pool's busy counters only see spawned tasks).
    let wall = s.execute_ns + s.reserve_ns + s.commit_ns;
    if s.workers > 1 {
        c.parallel_batches.inc();
        c.capacity_ns
            .add(wall.saturating_mul(s.workers).saturating_add(s.fallback_ns));
        c.busy_ns.add(s.fallback_ns);
    } else {
        c.capacity_ns.add(wall + s.fallback_ns);
        c.busy_ns.add(wall + s.fallback_ns);
    }
}

/// Adds per-task busy time measured inside the worker pool.
pub fn record_busy_ns(ns: u64) {
    counters().busy_ns.add(ns);
}

/// Snapshot of the execution counters since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Batches executed.
    pub batches: u64,
    /// Batches that took the parallel path (effective workers > 1).
    pub parallel_batches: u64,
    /// Transactions executed (including aborted ones).
    pub txns: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Conflict (WAW/RAW) aborts.
    pub conflict_aborted: u64,
    /// Logic-level aborts.
    pub logic_aborted: u64,
    /// Cumulative snapshot-execution phase wall time.
    pub execute_ns: u64,
    /// Cumulative reservation phase wall time.
    pub reserve_ns: u64,
    /// Cumulative commit-check + apply phase wall time.
    pub commit_ns: u64,
    /// Cumulative abort-fallback phase wall time.
    pub fallback_ns: u64,
    /// Conflict aborts rescued (committed) by the fallback re-run.
    pub fallback_committed: u64,
    /// Cumulative per-worker busy time (pool tasks, plus the inline lane
    /// of serial batches and the fallback re-run).
    pub busy_ns: u64,
    /// Cumulative `wall × workers` over all batches (serial batches count
    /// one lane).
    pub capacity_ns: u64,
}

impl ExecStats {
    /// Conflict-abort rate over all executed transactions, *before* the
    /// deterministic fallback rescues any of them — the raw contention
    /// signal of the workload.
    pub fn abort_rate(&self) -> f64 {
        if self.txns == 0 {
            0.0
        } else {
            self.conflict_aborted as f64 / self.txns as f64
        }
    }

    /// Conflict-abort rate after the fallback re-run: aborts that stayed
    /// aborted. With the fallback enabled this is what callers actually
    /// pay in retries.
    pub fn effective_abort_rate(&self) -> f64 {
        if self.txns == 0 {
            0.0
        } else {
            (self.conflict_aborted - self.fallback_committed) as f64 / self.txns as f64
        }
    }

    /// Fraction of worker capacity spent busy (0..=1) across all batches;
    /// 0 only before any batch has run.
    pub fn worker_utilization(&self) -> f64 {
        if self.capacity_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / self.capacity_ns as f64).min(1.0)
        }
    }

    /// Counter deltas since an earlier snapshot (for per-run reporting).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            batches: self.batches - earlier.batches,
            parallel_batches: self.parallel_batches - earlier.parallel_batches,
            txns: self.txns - earlier.txns,
            committed: self.committed - earlier.committed,
            conflict_aborted: self.conflict_aborted - earlier.conflict_aborted,
            logic_aborted: self.logic_aborted - earlier.logic_aborted,
            execute_ns: self.execute_ns - earlier.execute_ns,
            reserve_ns: self.reserve_ns - earlier.reserve_ns,
            commit_ns: self.commit_ns - earlier.commit_ns,
            fallback_ns: self.fallback_ns - earlier.fallback_ns,
            fallback_committed: self.fallback_committed - earlier.fallback_committed,
            busy_ns: self.busy_ns - earlier.busy_ns,
            capacity_ns: self.capacity_ns - earlier.capacity_ns,
        }
    }
}

/// Reads the current counter values.
pub fn exec_stats() -> ExecStats {
    let c = counters();
    ExecStats {
        batches: c.batches.get(),
        parallel_batches: c.parallel_batches.get(),
        txns: c.txns.get(),
        committed: c.committed.get(),
        conflict_aborted: c.conflict_aborted.get(),
        logic_aborted: c.logic_aborted.get(),
        execute_ns: c.execute_ns.get(),
        reserve_ns: c.reserve_ns.get(),
        commit_ns: c.commit_ns.get(),
        fallback_ns: c.fallback_ns.get(),
        fallback_committed: c.fallback_committed.get(),
        busy_ns: c.busy_ns.get(),
        capacity_ns: c.capacity_ns.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sample_accumulates() {
        let before = exec_stats();
        record_batch(BatchSample {
            txns: 10,
            committed: 7,
            conflict_aborted: 2,
            logic_aborted: 1,
            execute_ns: 100,
            reserve_ns: 20,
            commit_ns: 30,
            fallback_ns: 0,
            fallback_committed: 0,
            workers: 4,
        });
        let d = exec_stats().since(&before);
        assert_eq!(d.batches, 1);
        assert_eq!(d.parallel_batches, 1);
        assert_eq!(d.txns, 10);
        assert_eq!(d.committed, 7);
        assert_eq!(d.conflict_aborted, 2);
        assert_eq!(d.logic_aborted, 1);
        assert_eq!(d.capacity_ns, 150 * 4);
        assert!((d.abort_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn serial_batches_report_full_utilization() {
        // A one-lane batch is by definition 100% busy for its wall time;
        // utilization must not read 0 just because the pool never spawned.
        let before = exec_stats();
        record_batch(BatchSample {
            txns: 5,
            committed: 5,
            execute_ns: 50,
            workers: 1,
            ..Default::default()
        });
        let d = exec_stats().since(&before);
        assert_eq!(d.parallel_batches, 0);
        assert_eq!(d.capacity_ns, 50);
        assert_eq!(d.busy_ns, 50);
        assert_eq!(d.worker_utilization(), 1.0);
    }

    #[test]
    fn fallback_time_counts_as_one_busy_lane() {
        let before = exec_stats();
        record_batch(BatchSample {
            txns: 8,
            committed: 8,
            conflict_aborted: 3,
            fallback_committed: 3,
            execute_ns: 60,
            reserve_ns: 20,
            commit_ns: 20,
            fallback_ns: 40,
            workers: 4,
            ..Default::default()
        });
        let d = exec_stats().since(&before);
        // 100 ns of fan-out wall × 4 lanes + 40 ns of single-lane fallback.
        assert_eq!(d.capacity_ns, 100 * 4 + 40);
        assert_eq!(d.busy_ns, 40); // pool busy time is recorded separately
        assert_eq!(d.fallback_committed, 3);
        assert!((d.abort_rate() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(d.effective_abort_rate(), 0.0);
    }

    // The facade and the registry must read the same counter.
    #[test]
    fn counters_live_in_the_registry() {
        let before = exec_stats();
        record_busy_ns(17);
        assert_eq!(exec_stats().since(&before).busy_ns, 17);
        let reg = massbft_telemetry::registry::counter("db.exec.busy_ns");
        assert_eq!(reg.get(), exec_stats().busy_ns);
    }
}

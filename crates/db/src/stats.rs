//! Process-wide execution-pipeline counters.
//!
//! Mirrors the data-plane counter pattern in `massbft-core::stats`:
//! relaxed atomics bumped on the hot path, snapshotted into a plain
//! struct for reports and benches. The executor records one sample per
//! batch ([`record_batch`]); the worker pool feeds per-task busy time
//! ([`record_busy_ns`]) so utilization can be computed as
//! `busy / (wall × workers)` over the parallel batches.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static BATCHES: AtomicU64 = AtomicU64::new(0);
static PARALLEL_BATCHES: AtomicU64 = AtomicU64::new(0);
static TXNS: AtomicU64 = AtomicU64::new(0);
static COMMITTED: AtomicU64 = AtomicU64::new(0);
static CONFLICT_ABORTED: AtomicU64 = AtomicU64::new(0);
static LOGIC_ABORTED: AtomicU64 = AtomicU64::new(0);
static EXECUTE_NS: AtomicU64 = AtomicU64::new(0);
static RESERVE_NS: AtomicU64 = AtomicU64::new(0);
static COMMIT_NS: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);
static CAPACITY_NS: AtomicU64 = AtomicU64::new(0);

/// One executed batch, as recorded by the Aria executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchSample {
    /// Transactions in the batch.
    pub txns: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Conflict (WAW/RAW) aborts.
    pub conflict_aborted: u64,
    /// Logic-level aborts.
    pub logic_aborted: u64,
    /// Wall time of the snapshot-execution phase.
    pub execute_ns: u64,
    /// Wall time of the reservation phase.
    pub reserve_ns: u64,
    /// Wall time of the commit-check + apply phase.
    pub commit_ns: u64,
    /// Worker lanes actually used (1 = serial path).
    pub workers: u64,
}

/// Records one batch's timings and outcome counts.
pub fn record_batch(s: BatchSample) {
    BATCHES.fetch_add(1, Relaxed);
    TXNS.fetch_add(s.txns, Relaxed);
    COMMITTED.fetch_add(s.committed, Relaxed);
    CONFLICT_ABORTED.fetch_add(s.conflict_aborted, Relaxed);
    LOGIC_ABORTED.fetch_add(s.logic_aborted, Relaxed);
    EXECUTE_NS.fetch_add(s.execute_ns, Relaxed);
    RESERVE_NS.fetch_add(s.reserve_ns, Relaxed);
    COMMIT_NS.fetch_add(s.commit_ns, Relaxed);
    if s.workers > 1 {
        PARALLEL_BATCHES.fetch_add(1, Relaxed);
        let wall = s.execute_ns + s.reserve_ns + s.commit_ns;
        CAPACITY_NS.fetch_add(wall.saturating_mul(s.workers), Relaxed);
    }
}

/// Adds per-task busy time measured inside the worker pool.
pub fn record_busy_ns(ns: u64) {
    BUSY_NS.fetch_add(ns, Relaxed);
}

/// Snapshot of the execution counters since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Batches executed.
    pub batches: u64,
    /// Batches that took the parallel path (effective workers > 1).
    pub parallel_batches: u64,
    /// Transactions executed (including aborted ones).
    pub txns: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Conflict (WAW/RAW) aborts.
    pub conflict_aborted: u64,
    /// Logic-level aborts.
    pub logic_aborted: u64,
    /// Cumulative snapshot-execution phase wall time.
    pub execute_ns: u64,
    /// Cumulative reservation phase wall time.
    pub reserve_ns: u64,
    /// Cumulative commit-check + apply phase wall time.
    pub commit_ns: u64,
    /// Cumulative per-worker busy time (pool tasks only).
    pub busy_ns: u64,
    /// Cumulative `wall × workers` over parallel batches.
    pub capacity_ns: u64,
}

impl ExecStats {
    /// Conflict-abort rate over all executed transactions.
    pub fn abort_rate(&self) -> f64 {
        if self.txns == 0 {
            0.0
        } else {
            self.conflict_aborted as f64 / self.txns as f64
        }
    }

    /// Fraction of parallel-batch worker capacity spent busy (0..=1);
    /// 0 when no batch took the parallel path.
    pub fn worker_utilization(&self) -> f64 {
        if self.capacity_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / self.capacity_ns as f64).min(1.0)
        }
    }

    /// Counter deltas since an earlier snapshot (for per-run reporting).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            batches: self.batches - earlier.batches,
            parallel_batches: self.parallel_batches - earlier.parallel_batches,
            txns: self.txns - earlier.txns,
            committed: self.committed - earlier.committed,
            conflict_aborted: self.conflict_aborted - earlier.conflict_aborted,
            logic_aborted: self.logic_aborted - earlier.logic_aborted,
            execute_ns: self.execute_ns - earlier.execute_ns,
            reserve_ns: self.reserve_ns - earlier.reserve_ns,
            commit_ns: self.commit_ns - earlier.commit_ns,
            busy_ns: self.busy_ns - earlier.busy_ns,
            capacity_ns: self.capacity_ns - earlier.capacity_ns,
        }
    }
}

/// Reads the current counter values.
pub fn exec_stats() -> ExecStats {
    ExecStats {
        batches: BATCHES.load(Relaxed),
        parallel_batches: PARALLEL_BATCHES.load(Relaxed),
        txns: TXNS.load(Relaxed),
        committed: COMMITTED.load(Relaxed),
        conflict_aborted: CONFLICT_ABORTED.load(Relaxed),
        logic_aborted: LOGIC_ABORTED.load(Relaxed),
        execute_ns: EXECUTE_NS.load(Relaxed),
        reserve_ns: RESERVE_NS.load(Relaxed),
        commit_ns: COMMIT_NS.load(Relaxed),
        busy_ns: BUSY_NS.load(Relaxed),
        capacity_ns: CAPACITY_NS.load(Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sample_accumulates() {
        let before = exec_stats();
        record_batch(BatchSample {
            txns: 10,
            committed: 7,
            conflict_aborted: 2,
            logic_aborted: 1,
            execute_ns: 100,
            reserve_ns: 20,
            commit_ns: 30,
            workers: 4,
        });
        let d = exec_stats().since(&before);
        assert_eq!(d.batches, 1);
        assert_eq!(d.parallel_batches, 1);
        assert_eq!(d.txns, 10);
        assert_eq!(d.committed, 7);
        assert_eq!(d.conflict_aborted, 2);
        assert_eq!(d.logic_aborted, 1);
        assert_eq!(d.capacity_ns, 150 * 4);
        assert!((d.abort_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn serial_batches_do_not_add_capacity() {
        let before = exec_stats();
        record_batch(BatchSample {
            txns: 5,
            committed: 5,
            execute_ns: 50,
            workers: 1,
            ..Default::default()
        });
        let d = exec_stats().since(&before);
        assert_eq!(d.parallel_batches, 0);
        assert_eq!(d.capacity_ns, 0);
        assert_eq!(d.worker_utilization(), 0.0);
    }
}

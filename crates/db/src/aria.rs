//! Aria-style deterministic batch execution, optionally multi-core.
//!
//! Aria (Lu, Yu, Cao, Madden — VLDB'20) executes a batch of transactions
//! in three deterministic phases:
//!
//! 1. **Execution** — every transaction runs against the *same* snapshot
//!    (the state left by the previous batch), buffering its writes and
//!    recording its read set. No locks, perfectly parallelizable.
//! 2. **Reservation** — each key written in the batch is reserved by the
//!    *lowest* transaction id that writes it; likewise for reads.
//! 3. **Commit** — transaction `i` commits unless it has
//!    - a **WAW** conflict: it writes a key whose write reservation belongs
//!      to a smaller id, or
//!    - a **RAW** conflict: it read a key whose write reservation belongs
//!      to a smaller id (its snapshot read is stale).
//!
//! Aborted transactions are reported so the caller can retry them in a
//! later batch — or, with the **deterministic fallback** enabled, rescued
//! inside the same batch (below).
//!
//! Because all three phases depend only on the batch contents and the
//! snapshot, every replica that executes the same ordered batch commits
//! exactly the same subset — the determinism MassBFT's global ordering
//! relies on. The paper's TPC-C observation (Fig. 8d: bigger batches ⇒
//! more conflicts on hotspot rows ⇒ higher abort rate) falls straight out
//! of this design and is covered by tests below.
//!
//! ## Parallel mode
//!
//! [`AriaExecutor::parallel`] runs every phase across a [`WorkerPool`]
//! with *bit-identical* results to the serial executor, at any worker
//! count:
//!
//! - **Execution** partitions the batch into contiguous chunks; each
//!   worker runs its chunk against the shared immutable snapshot.
//! - **Reservation** uses a table sharded by key hash ([`RSV_SHARDS`]
//!   stripes). Each worker owns a contiguous shard range and scans the
//!   whole batch in id order, inserting only the keys that hash into its
//!   range — first insert wins, which *is* lowest-id-wins. Every shard's
//!   content is a pure function of the batch, so the table is identical
//!   at any lane count and there is no serial merge step (the previous
//!   design built per-chunk maps and paid an O(keys) single-threaded
//!   merge — serial-equivalent work that capped the phase).
//! - **Commit checks and the apply bucketing are fused**: each worker
//!   checks its chunk against the reservation table *and* buckets its
//!   committed writes by store shard in the same pass. The per-lane
//!   buckets go straight to the store's shard-parallel apply
//!   (`KvStore::apply_sharded`), eliminating the serial collect +
//!   re-bucket scan between check and apply. The WAW rule guarantees one
//!   committed writer per key, so per-shard order is irrelevant (see
//!   [`KvStore`]'s striping docs).
//!
//! Small batches skip the fork-join entirely and take the exact serial
//! path, so a parallel executor never pays thread overhead for work that
//! doesn't amortize it.
//!
//! ## Deterministic fallback
//!
//! Aria's fallback pass (enabled with [`AriaExecutor::with_fallback`] or
//! [`FALLBACK_ENV`]): after the batch's committed writes apply, the
//! conflict-aborted transactions re-execute **serially, in ascending
//! transaction id**, each against the store as left by everything before
//! it (the batch's committed writes plus earlier rescued transactions).
//! The re-run order is a pure function of the batch, so replicas still
//! byte-agree at every worker width, and a hotspot batch commits in one
//! round instead of bleeding a 24% abort tax into retry batches. Rescued
//! transactions report [`TxnOutcome::FallbackCommitted`]; a re-run whose
//! own logic aborts (e.g. funds consumed by an earlier rescue) becomes
//! [`TxnOutcome::LogicAborted`]. With the fallback on, a batch leaves no
//! conflict-aborted residue for the caller to retry.

use crate::pool::WorkerPool;
use crate::stats::{record_batch, BatchSample};
use crate::store::{self, KvStore};
use crate::{DetTransaction, Key, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Environment variable toggling the deterministic abort fallback for
/// executors built with [`AriaExecutor::from_env`] (`1`/`true`/`on`/`yes`
/// enable it; `0`/`false`/`off`/`no` and unset disable it).
pub const FALLBACK_ENV: &str = "MASSBFT_EXEC_FALLBACK";

/// Stripes in the write-reservation table. Wider than the store's shard
/// count so reservation lanes stay balanced at 16 workers.
const RSV_SHARDS: usize = 64;

/// Reservation-table stripe for a key. Uses the high half of the shared
/// FNV hash so reservation striping is not correlated with the store's
/// shard selection (which masks the low bits of the same hash).
#[inline]
fn rsv_shard_of(key: &[u8]) -> usize {
    (store::fnv64(key).rotate_right(32) as usize) & (RSV_SHARDS - 1)
}

/// Write-reservation map: key → lowest transaction id writing it.
type ReserveMap<'e> = HashMap<&'e [u8], usize>;
/// One worker-lane task producing the reservation maps for its contiguous
/// shard range.
type ReserveTask<'e, 's> = Box<dyn FnOnce() -> Vec<ReserveMap<'e>> + Send + 's>;
/// One worker-lane task running the fused commit-check + bucketing pass
/// over its chunk.
type CommitTask<'e, 's> = Box<dyn FnOnce() -> CommitLane<'e> + Send + 's>;

/// The sharded write-reservation table (phase 2 output).
struct ReservationTable<'e> {
    shards: Vec<ReserveMap<'e>>,
}

impl ReservationTable<'_> {
    /// The lowest transaction id that reserved `key`, if any.
    #[inline]
    fn owner(&self, key: &[u8]) -> Option<usize> {
        self.shards[rsv_shard_of(key)].get(key).copied()
    }
}

/// What one commit-phase lane produced over its contiguous chunk.
struct CommitLane<'e> {
    outcomes: Vec<TxnOutcome>,
    conflicted: Vec<usize>,
    committed: usize,
    logic_aborted: usize,
    /// Committed writes bucketed by store shard, chunk order.
    buckets: Vec<Vec<(&'e Key, &'e Value)>>,
}

/// What a transaction did during the execution phase.
#[derive(Debug, Clone, Default)]
pub struct TxnEffects {
    /// Keys read from the snapshot.
    pub reads: Vec<Key>,
    /// Buffered writes (applied only on commit).
    pub writes: Vec<(Key, Value)>,
    /// Logic-level abort (e.g. SmallBank insufficient funds). Distinct
    /// from a concurrency abort: it consumes the transaction (no retry).
    pub abort: bool,
}

impl TxnEffects {
    /// Records a read.
    pub fn read(&mut self, key: impl Into<Key>) {
        self.reads.push(key.into());
    }

    /// Buffers a write.
    pub fn write(&mut self, key: impl Into<Key>, value: impl Into<Value>) {
        self.writes.push((key.into(), value.into()));
    }
}

/// Per-transaction outcome of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Writes applied.
    Committed,
    /// Concurrency abort (WAW/RAW); retry in a later batch.
    ConflictAborted,
    /// The transaction's own logic aborted; do not retry.
    LogicAborted,
    /// Conflict-aborted in the parallel round, then committed by the
    /// deterministic fallback re-run.
    FallbackCommitted,
}

/// Batch-level result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Outcome per transaction, batch order.
    pub outcomes: Vec<TxnOutcome>,
    /// Count of committed transactions (including fallback rescues).
    pub committed: usize,
    /// Indices of transactions still conflict-aborted after the batch
    /// (candidates for retry). Empty when the fallback is enabled.
    pub conflict_aborted: Vec<usize>,
    /// Count of transactions committed by the fallback re-run.
    pub fallback_committed: usize,
}

impl BatchOutcome {
    /// Residual abort rate of the batch: transactions still
    /// conflict-aborted after any fallback, over batch size.
    pub fn abort_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.conflict_aborted.len() as f64 / self.outcomes.len() as f64
        }
    }
}

/// The deterministic batch executor.
#[derive(Debug, Clone, Default)]
pub struct AriaExecutor {
    pool: WorkerPool,
    fallback: bool,
}

/// Reads [`FALLBACK_ENV`]; unset and recognized "off" spellings mean
/// disabled, anything unrecognized warns (stderr + telemetry ring) and
/// stays disabled.
pub fn fallback_from_env() -> bool {
    match std::env::var(FALLBACK_ENV) {
        Err(_) => false,
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" | "yes" => true,
            "" | "0" | "false" | "off" | "no" => false,
            _ => {
                crate::stats::warn_invalid_env(FALLBACK_ENV, &v, crate::stats::ENV_CODE_FALLBACK);
                false
            }
        },
    }
}

impl AriaExecutor {
    /// Creates a serial executor (one lane, no thread overhead).
    pub fn new() -> Self {
        AriaExecutor {
            pool: WorkerPool::new(1),
            fallback: false,
        }
    }

    /// Creates an executor that fans each phase out over `workers` lanes.
    /// `parallel(1)` is exactly [`AriaExecutor::new`].
    pub fn parallel(workers: usize) -> Self {
        AriaExecutor {
            pool: WorkerPool::new(workers),
            fallback: false,
        }
    }

    /// Worker count from [`crate::pool::WORKERS_ENV`] and fallback policy
    /// from [`FALLBACK_ENV`], defaulting to serial with no fallback.
    pub fn from_env() -> Self {
        AriaExecutor {
            pool: WorkerPool::from_env(),
            fallback: fallback_from_env(),
        }
    }

    /// Enables or disables the deterministic abort fallback (see the
    /// module docs). Off by default to preserve the paper's
    /// drop-on-conflict abort accounting.
    pub fn with_fallback(mut self, on: bool) -> Self {
        self.fallback = on;
        self
    }

    /// Whether the deterministic abort fallback is enabled.
    pub fn fallback_enabled(&self) -> bool {
        self.fallback
    }

    /// Configured worker lanes.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Executes one ordered batch against `store`, applying the writes of
    /// committed transactions and bumping the store's batch version.
    pub fn execute_batch<T: DetTransaction + Sync>(
        &self,
        store: &mut KvStore,
        batch: &[T],
    ) -> BatchOutcome {
        let lanes = self.pool.effective_workers(batch.len());
        let t0 = Instant::now();

        // Phase 1: execution against the shared snapshot.
        let view: &KvStore = store;
        let effects: Vec<TxnEffects> = self.pool.map_chunks(batch, &|_, t: &T| t.execute(view));
        let t1 = Instant::now();

        // Phase 2: write reservations — lowest writer id per key. Logic
        // aborts don't reserve (their writes will never apply).
        let rsv = self.reserve(&effects, lanes);
        let t2 = Instant::now();

        // Phase 3: fused commit checks + shard bucketing + apply.
        let mut outcomes: Vec<TxnOutcome>;
        let mut conflict_aborted: Vec<usize> = Vec::new();
        let mut committed = 0usize;
        let mut logic_aborted = 0usize;
        if lanes <= 1 {
            outcomes = Vec::with_capacity(effects.len());
            let mut writes: Vec<(&Key, &Value)> = Vec::new();
            for (i, eff) in effects.iter().enumerate() {
                let o = commit_check(i, eff, &rsv);
                match o {
                    TxnOutcome::Committed => {
                        committed += 1;
                        writes.extend(eff.writes.iter().map(|(k, v)| (k, v)));
                    }
                    TxnOutcome::ConflictAborted => conflict_aborted.push(i),
                    TxnOutcome::LogicAborted => logic_aborted += 1,
                    TxnOutcome::FallbackCommitted => unreachable!("fallback runs after checks"),
                }
                outcomes.push(o);
            }
            store.apply_writes(&self.pool, &writes);
        } else {
            let chunk = effects.len().div_ceil(lanes);
            let rsv_ref = &rsv;
            let tasks: Vec<CommitTask<'_, '_>> = effects
                .chunks(chunk)
                .enumerate()
                .map(|(ci, slice)| {
                    let base = ci * chunk;
                    Box::new(move || {
                        let mut lane = CommitLane {
                            outcomes: Vec::with_capacity(slice.len()),
                            conflicted: Vec::new(),
                            committed: 0,
                            logic_aborted: 0,
                            buckets: vec![Vec::new(); store::SHARDS],
                        };
                        for (off, eff) in slice.iter().enumerate() {
                            let i = base + off;
                            let o = commit_check(i, eff, rsv_ref);
                            match o {
                                TxnOutcome::Committed => {
                                    lane.committed += 1;
                                    for (k, v) in &eff.writes {
                                        lane.buckets[store::shard_of(k)].push((k, v));
                                    }
                                }
                                TxnOutcome::ConflictAborted => lane.conflicted.push(i),
                                TxnOutcome::LogicAborted => lane.logic_aborted += 1,
                                TxnOutcome::FallbackCommitted => {
                                    unreachable!("fallback runs after checks")
                                }
                            }
                            lane.outcomes.push(o);
                        }
                        lane
                    }) as CommitTask<'_, '_>
                })
                .collect();
            let lane_results = self.pool.run_tasks(tasks);
            outcomes = Vec::with_capacity(effects.len());
            let mut lane_buckets = Vec::with_capacity(lane_results.len());
            for lane in lane_results {
                outcomes.extend(lane.outcomes);
                conflict_aborted.extend(lane.conflicted);
                committed += lane.committed;
                logic_aborted += lane.logic_aborted;
                lane_buckets.push(lane.buckets);
            }
            store.apply_sharded(&self.pool, &lane_buckets);
        }
        let t3 = Instant::now();

        // Phase 4 (optional): deterministic fallback. Re-run the abort set
        // serially in ascending id order against the evolving store; the
        // order is a pure function of the batch, so replicas agree.
        let pre_fallback_conflicts = conflict_aborted.len();
        let mut fallback_committed = 0usize;
        if self.fallback && !conflict_aborted.is_empty() {
            for &i in &conflict_aborted {
                let eff = batch[i].execute(store);
                if eff.abort {
                    outcomes[i] = TxnOutcome::LogicAborted;
                    logic_aborted += 1;
                } else {
                    for (k, v) in eff.writes {
                        store.put(k, v);
                    }
                    outcomes[i] = TxnOutcome::FallbackCommitted;
                    committed += 1;
                    fallback_committed += 1;
                }
            }
            conflict_aborted.clear();
        }
        store.bump_version();
        let t4 = Instant::now();

        record_batch(BatchSample {
            txns: batch.len() as u64,
            committed: committed as u64,
            conflict_aborted: pre_fallback_conflicts as u64,
            logic_aborted: logic_aborted as u64,
            execute_ns: (t1 - t0).as_nanos() as u64,
            reserve_ns: (t2 - t1).as_nanos() as u64,
            commit_ns: (t3 - t2).as_nanos() as u64,
            fallback_ns: (t4 - t3).as_nanos() as u64,
            fallback_committed: fallback_committed as u64,
            workers: lanes as u64,
        });

        BatchOutcome {
            outcomes,
            committed,
            conflict_aborted,
            fallback_committed,
        }
    }

    /// Phase 2: the sharded write-reservation table. Each lane owns a
    /// contiguous shard range and scans the whole batch in id order,
    /// keeping only the keys that hash into its range; the first insert
    /// per key is therefore the lowest id, and each shard's content is
    /// independent of the lane count. The redundant per-lane key hashing
    /// is cheap; what it buys is the removal of the old serial
    /// lowest-id-wins merge over every reserved key.
    fn reserve<'e>(&self, effects: &'e [TxnEffects], lanes: usize) -> ReservationTable<'e> {
        if lanes <= 1 {
            let mut shards: Vec<ReserveMap> = vec![HashMap::new(); RSV_SHARDS];
            for (i, eff) in effects.iter().enumerate() {
                if eff.abort {
                    continue;
                }
                for (k, _) in &eff.writes {
                    shards[rsv_shard_of(k)].entry(k.as_slice()).or_insert(i);
                }
            }
            return ReservationTable { shards };
        }
        let lanes = lanes.min(RSV_SHARDS);
        let group = RSV_SHARDS.div_ceil(lanes);
        let tasks: Vec<ReserveTask<'e, '_>> = (0..RSV_SHARDS.div_ceil(group))
            .map(|gi| {
                let lo = gi * group;
                let hi = (lo + group).min(RSV_SHARDS);
                Box::new(move || {
                    let mut maps: Vec<ReserveMap> = vec![HashMap::new(); hi - lo];
                    for (i, eff) in effects.iter().enumerate() {
                        if eff.abort {
                            continue;
                        }
                        for (k, _) in &eff.writes {
                            let s = rsv_shard_of(k);
                            if (lo..hi).contains(&s) {
                                maps[s - lo].entry(k.as_slice()).or_insert(i);
                            }
                        }
                    }
                    maps
                }) as ReserveTask<'e, '_>
            })
            .collect();
        let shards: Vec<ReserveMap> = self.pool.run_tasks(tasks).into_iter().flatten().collect();
        debug_assert_eq!(shards.len(), RSV_SHARDS);
        ReservationTable { shards }
    }
}

/// The commit decision for transaction `i`: a pure function of its
/// effects and the reservation table.
#[inline]
fn commit_check(i: usize, eff: &TxnEffects, rsv: &ReservationTable) -> TxnOutcome {
    if eff.abort {
        return TxnOutcome::LogicAborted;
    }
    let waw = eff
        .writes
        .iter()
        .any(|(k, _)| rsv.owner(k).is_some_and(|o| o < i));
    let raw = eff
        .reads
        .iter()
        .any(|k| rsv.owner(k).is_some_and(|o| o < i));
    if waw || raw {
        TxnOutcome::ConflictAborted
    } else {
        TxnOutcome::Committed
    }
}

impl DetTransaction for Box<dyn DetTransaction> {
    fn execute(&self, view: &KvStore) -> TxnEffects {
        (**self).execute(view)
    }
}

impl DetTransaction for Box<dyn DetTransaction + Send + Sync> {
    fn execute(&self, view: &KvStore) -> TxnEffects {
        (**self).execute(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Transfer `amount` from `src` to `dst` if funds suffice.
    fn transfer(src: &'static [u8], dst: &'static [u8], amount: u64) -> impl DetTransaction + Sync {
        move |view: &KvStore| {
            let mut eff = TxnEffects::default();
            eff.read(src);
            eff.read(dst);
            let s = balance(view, src);
            let d = balance(view, dst);
            if s < amount {
                eff.abort = true;
                return eff;
            }
            eff.write(src, (s - amount).to_le_bytes().to_vec());
            eff.write(dst, (d + amount).to_le_bytes().to_vec());
            eff
        }
    }

    fn balance(view: &KvStore, k: &[u8]) -> u64 {
        view.get(k)
            .map(|v| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
            .unwrap_or(0)
    }

    fn bank(accounts: &[(&[u8], u64)]) -> KvStore {
        let mut s = KvStore::new();
        for (k, v) in accounts {
            s.put(k.to_vec(), v.to_le_bytes().to_vec());
        }
        s
    }

    #[test]
    fn independent_txns_all_commit() {
        let mut store = bank(&[(b"a", 100), (b"b", 100), (b"c", 100), (b"d", 100)]);
        let batch = vec![transfer(b"a", b"b", 10), transfer(b"c", b"d", 20)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(out.committed, 2);
        assert_eq!(balance(&store, b"a"), 90);
        assert_eq!(balance(&store, b"b"), 110);
        assert_eq!(balance(&store, b"c"), 80);
        assert_eq!(balance(&store, b"d"), 120);
        assert_eq!(store.version(), 1);
    }

    #[test]
    fn waw_conflict_aborts_later_txn() {
        let mut store = bank(&[(b"a", 100), (b"b", 0), (b"c", 0)]);
        // Both write `a`; the second must conflict-abort.
        let batch = vec![transfer(b"a", b"b", 10), transfer(b"a", b"c", 10)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(
            out.outcomes,
            vec![TxnOutcome::Committed, TxnOutcome::ConflictAborted]
        );
        assert_eq!(out.conflict_aborted, vec![1]);
        assert_eq!(balance(&store, b"a"), 90);
        assert_eq!(balance(&store, b"c"), 0);
    }

    #[test]
    fn raw_conflict_aborts_stale_reader() {
        let mut store = bank(&[(b"a", 100), (b"b", 0), (b"x", 100), (b"y", 0)]);
        // Txn 0 writes `a`; txn 1 reads `a` (balance check) but writes
        // disjoint keys — still a RAW conflict under Aria.
        let t1 = move |view: &KvStore| {
            let mut eff = TxnEffects::default();
            eff.read(b"a".as_slice());
            let _ = balance(view, b"a");
            eff.write(b"y".as_slice(), 1u64.to_le_bytes().to_vec());
            eff
        };
        let batch: Vec<Box<dyn DetTransaction + Send + Sync>> =
            vec![Box::new(transfer(b"a", b"b", 10)), Box::new(t1)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(
            out.outcomes,
            vec![TxnOutcome::Committed, TxnOutcome::ConflictAborted]
        );
    }

    #[test]
    fn logic_abort_neither_reserves_nor_retries() {
        let mut store = bank(&[(b"a", 5), (b"b", 0), (b"c", 100)]);
        // Txn 0 has insufficient funds (logic abort); txn 1 writes the same
        // key `a` and must NOT be blocked by the aborted reservation.
        let batch = vec![transfer(b"a", b"b", 50), transfer(b"c", b"a", 10)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(
            out.outcomes,
            vec![TxnOutcome::LogicAborted, TxnOutcome::Committed]
        );
        assert!(out.conflict_aborted.is_empty());
        assert_eq!(balance(&store, b"a"), 15);
    }

    #[test]
    fn all_reads_of_snapshot_not_of_peers() {
        // Txn 1 must see the *snapshot* value of `a`, not txn 0's write.
        let mut store = bank(&[(b"a", 100), (b"b", 0), (b"c", 0)]);
        let snoop = move |view: &KvStore| {
            let mut eff = TxnEffects::default();
            // Deliberately not declaring the read to dodge the RAW check:
            // this tests snapshot isolation, not conflict detection.
            let a = balance(view, b"a");
            eff.write(b"c".as_slice(), a.to_le_bytes().to_vec());
            eff
        };
        let batch: Vec<Box<dyn DetTransaction + Send + Sync>> =
            vec![Box::new(transfer(b"a", b"b", 40)), Box::new(snoop)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(out.committed, 2);
        // Snoop saw the pre-batch value 100, not 60.
        assert_eq!(balance(&store, b"c"), 100);
    }

    #[test]
    fn determinism_across_replicas() {
        let run = || {
            let mut store = bank(&[(b"a", 100), (b"b", 50), (b"c", 25), (b"d", 0)]);
            let batch = vec![
                transfer(b"a", b"b", 10),
                transfer(b"b", b"c", 60),
                transfer(b"a", b"d", 5),
                transfer(b"c", b"d", 1),
                transfer(b"d", b"a", 100),
            ];
            let out = AriaExecutor::new().execute_batch(&mut store, &batch);
            (out.outcomes.clone(), store.content_hash())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hotspot_batch_has_high_abort_rate() {
        // The Fig. 8d effect: many transactions touching one hot key in a
        // single batch ⇒ only the first commits.
        let mut store = bank(&[(b"hot", 1_000_000)]);
        let batch: Vec<_> = (0..64).map(|_| transfer(b"hot", b"sink", 1)).collect();
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(out.committed, 1);
        assert!(out.abort_rate() > 0.95);
    }

    #[test]
    fn parallel_hotspot_matches_serial_exactly() {
        // Same Fig. 8d batch, every worker width: outcome vector, store
        // hash, and version must be bit-identical to the serial run.
        let batch: Vec<_> = (0..64).map(|_| transfer(b"hot", b"sink", 1)).collect();
        let mut serial_store = bank(&[(b"hot", 1_000_000)]);
        let serial = AriaExecutor::new().execute_batch(&mut serial_store, &batch);
        for workers in [2, 3, 4, 8] {
            let mut store = bank(&[(b"hot", 1_000_000)]);
            let out = AriaExecutor::parallel(workers).execute_batch(&mut store, &batch);
            assert_eq!(out, serial, "workers={workers}");
            assert_eq!(store.content_hash(), serial_store.content_hash());
            assert_eq!(store.version(), serial_store.version());
        }
    }

    #[test]
    fn parallel_wide_disjoint_batch_commits_everything() {
        let keys: Vec<Vec<u8>> = (0..512u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let mut store = KvStore::new();
        for k in &keys {
            store.put(k.clone(), 100u64.to_le_bytes().to_vec());
        }
        let batch: Vec<_> = keys
            .iter()
            .map(|k| {
                let k = k.clone();
                move |view: &KvStore| {
                    let mut eff = TxnEffects::default();
                    eff.read(k.clone());
                    let v = balance(view, &k);
                    eff.write(k.clone(), (v + 1).to_le_bytes().to_vec());
                    eff
                }
            })
            .collect();
        let out = AriaExecutor::parallel(8).execute_batch(&mut store, &batch);
        assert_eq!(out.committed, 512);
        assert!(out.conflict_aborted.is_empty());
        assert_eq!(balance(&store, &keys[77]), 101);
    }

    #[test]
    fn retry_of_conflict_aborted_txn_succeeds_next_batch() {
        let mut store = bank(&[(b"a", 100), (b"b", 0), (b"c", 0)]);
        let batch = vec![transfer(b"a", b"b", 10), transfer(b"a", b"c", 10)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(out.conflict_aborted, vec![1]);
        // Retry the aborted transfer alone.
        let retry = vec![transfer(b"a", b"c", 10)];
        let out2 = AriaExecutor::new().execute_batch(&mut store, &retry);
        assert_eq!(out2.committed, 1);
        assert_eq!(balance(&store, b"a"), 80);
        assert_eq!(balance(&store, b"c"), 10);
        assert_eq!(store.version(), 2);
    }

    #[test]
    fn empty_batch_is_a_noop_with_version_bump() {
        let mut store = KvStore::new();
        let out = AriaExecutor::new().execute_batch(
            &mut store,
            &Vec::<Box<dyn DetTransaction + Send + Sync>>::new(),
        );
        assert_eq!(out.committed, 0);
        assert_eq!(out.abort_rate(), 0.0);
        assert_eq!(store.version(), 1);
    }

    #[test]
    fn fallback_commits_entire_abort_set_in_id_order() {
        // 64 order-sensitive RMWs on one hot key: txn i folds
        // `hot = hot * 31 + (i + 1)`. Only txn 0 survives the parallel
        // round; the fallback must rescue ids 1..64 serially in ascending
        // order — the final value is the unique left-fold, so any other
        // order (or a dropped id) changes the bytes.
        let mk = |i: u64| {
            move |view: &KvStore| {
                let mut eff = TxnEffects::default();
                eff.read(b"hot".as_slice());
                let v = balance(view, b"hot");
                eff.write(
                    b"hot".as_slice(),
                    (v.wrapping_mul(31).wrapping_add(i + 1))
                        .to_le_bytes()
                        .to_vec(),
                );
                eff
            }
        };
        let batch: Vec<_> = (0..64u64).map(mk).collect();
        let expect = (0..64u64).fold(7u64, |v, i| v.wrapping_mul(31).wrapping_add(i + 1));
        for workers in [1usize, 2, 4, 8, 16] {
            let mut store = bank(&[(b"hot", 7)]);
            let exec = AriaExecutor::parallel(workers).with_fallback(true);
            let out = exec.execute_batch(&mut store, &batch);
            assert_eq!(out.committed, 64, "workers={workers}");
            assert_eq!(out.fallback_committed, 63);
            assert!(out.conflict_aborted.is_empty());
            assert_eq!(out.outcomes[0], TxnOutcome::Committed);
            assert!(out.outcomes[1..]
                .iter()
                .all(|o| *o == TxnOutcome::FallbackCommitted));
            assert_eq!(balance(&store, b"hot"), expect, "workers={workers}");
        }
    }

    #[test]
    fn fallback_rerun_can_logic_abort() {
        // Txn 1 conflicts with txn 0; by the time the fallback re-runs it,
        // txn 0 has drained the account, so the re-run's own logic aborts.
        let mut store = bank(&[(b"a", 15), (b"b", 0), (b"c", 0)]);
        let batch = vec![transfer(b"a", b"b", 10), transfer(b"a", b"c", 10)];
        let exec = AriaExecutor::new().with_fallback(true);
        let out = exec.execute_batch(&mut store, &batch);
        assert_eq!(
            out.outcomes,
            vec![TxnOutcome::Committed, TxnOutcome::LogicAborted]
        );
        assert_eq!(out.committed, 1);
        assert_eq!(out.fallback_committed, 0);
        assert!(out.conflict_aborted.is_empty());
        assert_eq!(balance(&store, b"a"), 5);
        assert_eq!(balance(&store, b"c"), 0);
    }
}

//! Aria-style deterministic batch execution, optionally multi-core.
//!
//! Aria (Lu, Yu, Cao, Madden — VLDB'20) executes a batch of transactions
//! in three deterministic phases:
//!
//! 1. **Execution** — every transaction runs against the *same* snapshot
//!    (the state left by the previous batch), buffering its writes and
//!    recording its read set. No locks, perfectly parallelizable.
//! 2. **Reservation** — each key written in the batch is reserved by the
//!    *lowest* transaction id that writes it; likewise for reads.
//! 3. **Commit** — transaction `i` commits unless it has
//!    - a **WAW** conflict: it writes a key whose write reservation belongs
//!      to a smaller id, or
//!    - a **RAW** conflict: it read a key whose write reservation belongs
//!      to a smaller id (its snapshot read is stale).
//!
//! Aborted transactions are reported so the caller can retry them in a
//! later batch.
//!
//! Because all three phases depend only on the batch contents and the
//! snapshot, every replica that executes the same ordered batch commits
//! exactly the same subset — the determinism MassBFT's global ordering
//! relies on. The paper's TPC-C observation (Fig. 8d: bigger batches ⇒
//! more conflicts on hotspot rows ⇒ higher abort rate) falls straight out
//! of this design and is covered by tests below.
//!
//! ## Parallel mode
//!
//! [`AriaExecutor::parallel`] runs every phase across a [`WorkerPool`]
//! with *bit-identical* results to the serial executor, at any worker
//! count:
//!
//! - **Execution** partitions the batch into contiguous chunks; each
//!   worker runs its chunk against the shared immutable snapshot.
//! - **Reservation** builds a per-worker reservation map over that
//!   worker's chunk, then merges lowest-txn-id-wins. Minimum is
//!   commutative and associative, so the merged map cannot depend on
//!   worker interleaving.
//! - **Commit checks** are pure per-transaction reads of the merged map,
//!   chunked like phase 1. The **apply** step buckets committed writes by
//!   store shard and applies shard groups concurrently; the WAW rule
//!   guarantees one committed writer per key, so per-shard order is
//!   irrelevant (see [`KvStore`]'s striping docs).
//!
//! Small batches skip the fork-join entirely and take the exact serial
//! path, so a parallel executor never pays thread overhead for work that
//! doesn't amortize it.

use crate::pool::WorkerPool;
use crate::stats::{record_batch, BatchSample};
use crate::{store::KvStore, DetTransaction, Key, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Write-reservation map: key → lowest transaction id writing it.
type ReserveMap<'e> = HashMap<&'e [u8], usize>;
/// One worker-lane task producing a chunk-local reservation map.
type ReserveTask<'e, 's> = Box<dyn FnOnce() -> ReserveMap<'e> + Send + 's>;

/// What a transaction did during the execution phase.
#[derive(Debug, Clone, Default)]
pub struct TxnEffects {
    /// Keys read from the snapshot.
    pub reads: Vec<Key>,
    /// Buffered writes (applied only on commit).
    pub writes: Vec<(Key, Value)>,
    /// Logic-level abort (e.g. SmallBank insufficient funds). Distinct
    /// from a concurrency abort: it consumes the transaction (no retry).
    pub abort: bool,
}

impl TxnEffects {
    /// Records a read.
    pub fn read(&mut self, key: impl Into<Key>) {
        self.reads.push(key.into());
    }

    /// Buffers a write.
    pub fn write(&mut self, key: impl Into<Key>, value: impl Into<Value>) {
        self.writes.push((key.into(), value.into()));
    }
}

/// Per-transaction outcome of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Writes applied.
    Committed,
    /// Concurrency abort (WAW/RAW); retry in a later batch.
    ConflictAborted,
    /// The transaction's own logic aborted; do not retry.
    LogicAborted,
}

/// Batch-level result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Outcome per transaction, batch order.
    pub outcomes: Vec<TxnOutcome>,
    /// Count of committed transactions.
    pub committed: usize,
    /// Indices of conflict-aborted transactions (candidates for retry).
    pub conflict_aborted: Vec<usize>,
}

impl BatchOutcome {
    /// Abort rate of the batch (conflict aborts / batch size).
    pub fn abort_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.conflict_aborted.len() as f64 / self.outcomes.len() as f64
        }
    }
}

/// The deterministic batch executor.
#[derive(Debug, Clone, Default)]
pub struct AriaExecutor {
    pool: WorkerPool,
}

impl AriaExecutor {
    /// Creates a serial executor (one lane, no thread overhead).
    pub fn new() -> Self {
        AriaExecutor {
            pool: WorkerPool::new(1),
        }
    }

    /// Creates an executor that fans each phase out over `workers` lanes.
    /// `parallel(1)` is exactly [`AriaExecutor::new`].
    pub fn parallel(workers: usize) -> Self {
        AriaExecutor {
            pool: WorkerPool::new(workers),
        }
    }

    /// Worker count from [`crate::pool::WORKERS_ENV`], defaulting to
    /// serial.
    pub fn from_env() -> Self {
        AriaExecutor {
            pool: WorkerPool::from_env(),
        }
    }

    /// Configured worker lanes.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Executes one ordered batch against `store`, applying the writes of
    /// committed transactions and bumping the store's batch version.
    pub fn execute_batch<T: DetTransaction + Sync>(
        &self,
        store: &mut KvStore,
        batch: &[T],
    ) -> BatchOutcome {
        let lanes = self.pool.effective_workers(batch.len());
        let t0 = Instant::now();

        // Phase 1: execution against the shared snapshot.
        let view: &KvStore = store;
        let effects: Vec<TxnEffects> = self.pool.map_chunks(batch, &|_, t: &T| t.execute(view));
        let t1 = Instant::now();

        // Phase 2: write reservations — lowest writer id per key. Logic
        // aborts don't reserve (their writes will never apply).
        let write_rsv = self.reserve(&effects, lanes);
        let t2 = Instant::now();

        // Phase 3: commit checks, a pure function of (effects, write_rsv).
        let outcomes: Vec<TxnOutcome> = self.pool.map_chunks(&effects, &|i, eff: &TxnEffects| {
            if eff.abort {
                return TxnOutcome::LogicAborted;
            }
            let waw = eff
                .writes
                .iter()
                .any(|(k, _)| write_rsv.get(k.as_slice()).is_some_and(|&o| o < i));
            let raw = eff
                .reads
                .iter()
                .any(|k| write_rsv.get(k.as_slice()).is_some_and(|&o| o < i));
            if waw || raw {
                TxnOutcome::ConflictAborted
            } else {
                TxnOutcome::Committed
            }
        });
        let mut conflict_aborted = Vec::new();
        let mut committed = 0usize;
        let mut logic_aborted = 0usize;
        for (i, o) in outcomes.iter().enumerate() {
            match o {
                TxnOutcome::Committed => committed += 1,
                TxnOutcome::ConflictAborted => conflict_aborted.push(i),
                TxnOutcome::LogicAborted => logic_aborted += 1,
            }
        }

        // Apply committed writes, batch order, shard-parallel when wide.
        let writes: Vec<(&Key, &Value)> = effects
            .iter()
            .enumerate()
            .filter(|(i, _)| outcomes[*i] == TxnOutcome::Committed)
            .flat_map(|(_, eff)| eff.writes.iter().map(|(k, v)| (k, v)))
            .collect();
        store.apply_writes(&self.pool, &writes);
        store.bump_version();
        let t3 = Instant::now();

        record_batch(BatchSample {
            txns: batch.len() as u64,
            committed: committed as u64,
            conflict_aborted: conflict_aborted.len() as u64,
            logic_aborted: logic_aborted as u64,
            execute_ns: (t1 - t0).as_nanos() as u64,
            reserve_ns: (t2 - t1).as_nanos() as u64,
            commit_ns: (t3 - t2).as_nanos() as u64,
            workers: lanes as u64,
        });

        BatchOutcome {
            outcomes,
            committed,
            conflict_aborted,
        }
    }

    /// Phase 2: the write-reservation map. Parallel lanes each build a
    /// map over their contiguous chunk (ids ascend within a chunk, so
    /// first-insert wins locally), then the chunk maps merge with
    /// lowest-id-wins — a commutative/associative minimum, identical to
    /// the serial left-to-right scan regardless of worker interleaving.
    fn reserve<'e>(&self, effects: &'e [TxnEffects], lanes: usize) -> ReserveMap<'e> {
        if lanes <= 1 {
            let mut rsv: ReserveMap = HashMap::new();
            for (i, eff) in effects.iter().enumerate() {
                if eff.abort {
                    continue;
                }
                for (k, _) in &eff.writes {
                    rsv.entry(k.as_slice()).or_insert(i);
                }
            }
            return rsv;
        }
        let chunk = effects.len().div_ceil(lanes);
        let tasks: Vec<ReserveTask<'e, '_>> = effects
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let base = ci * chunk;
                Box::new(move || {
                    let mut rsv: ReserveMap = HashMap::new();
                    for (off, eff) in slice.iter().enumerate() {
                        if eff.abort {
                            continue;
                        }
                        for (k, _) in &eff.writes {
                            rsv.entry(k.as_slice()).or_insert(base + off);
                        }
                    }
                    rsv
                }) as ReserveTask<'e, '_>
            })
            .collect();
        let mut maps = self.pool.run_tasks(tasks).into_iter();
        let mut merged = maps.next().unwrap_or_default();
        for m in maps {
            for (k, i) in m {
                merged
                    .entry(k)
                    .and_modify(|e| {
                        if i < *e {
                            *e = i;
                        }
                    })
                    .or_insert(i);
            }
        }
        merged
    }
}

impl DetTransaction for Box<dyn DetTransaction> {
    fn execute(&self, view: &KvStore) -> TxnEffects {
        (**self).execute(view)
    }
}

impl DetTransaction for Box<dyn DetTransaction + Send + Sync> {
    fn execute(&self, view: &KvStore) -> TxnEffects {
        (**self).execute(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Transfer `amount` from `src` to `dst` if funds suffice.
    fn transfer(src: &'static [u8], dst: &'static [u8], amount: u64) -> impl DetTransaction + Sync {
        move |view: &KvStore| {
            let mut eff = TxnEffects::default();
            eff.read(src);
            eff.read(dst);
            let s = balance(view, src);
            let d = balance(view, dst);
            if s < amount {
                eff.abort = true;
                return eff;
            }
            eff.write(src, (s - amount).to_le_bytes().to_vec());
            eff.write(dst, (d + amount).to_le_bytes().to_vec());
            eff
        }
    }

    fn balance(view: &KvStore, k: &[u8]) -> u64 {
        view.get(k)
            .map(|v| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
            .unwrap_or(0)
    }

    fn bank(accounts: &[(&[u8], u64)]) -> KvStore {
        let mut s = KvStore::new();
        for (k, v) in accounts {
            s.put(k.to_vec(), v.to_le_bytes().to_vec());
        }
        s
    }

    #[test]
    fn independent_txns_all_commit() {
        let mut store = bank(&[(b"a", 100), (b"b", 100), (b"c", 100), (b"d", 100)]);
        let batch = vec![transfer(b"a", b"b", 10), transfer(b"c", b"d", 20)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(out.committed, 2);
        assert_eq!(balance(&store, b"a"), 90);
        assert_eq!(balance(&store, b"b"), 110);
        assert_eq!(balance(&store, b"c"), 80);
        assert_eq!(balance(&store, b"d"), 120);
        assert_eq!(store.version(), 1);
    }

    #[test]
    fn waw_conflict_aborts_later_txn() {
        let mut store = bank(&[(b"a", 100), (b"b", 0), (b"c", 0)]);
        // Both write `a`; the second must conflict-abort.
        let batch = vec![transfer(b"a", b"b", 10), transfer(b"a", b"c", 10)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(
            out.outcomes,
            vec![TxnOutcome::Committed, TxnOutcome::ConflictAborted]
        );
        assert_eq!(out.conflict_aborted, vec![1]);
        assert_eq!(balance(&store, b"a"), 90);
        assert_eq!(balance(&store, b"c"), 0);
    }

    #[test]
    fn raw_conflict_aborts_stale_reader() {
        let mut store = bank(&[(b"a", 100), (b"b", 0), (b"x", 100), (b"y", 0)]);
        // Txn 0 writes `a`; txn 1 reads `a` (balance check) but writes
        // disjoint keys — still a RAW conflict under Aria.
        let t1 = move |view: &KvStore| {
            let mut eff = TxnEffects::default();
            eff.read(b"a".as_slice());
            let _ = balance(view, b"a");
            eff.write(b"y".as_slice(), 1u64.to_le_bytes().to_vec());
            eff
        };
        let batch: Vec<Box<dyn DetTransaction + Send + Sync>> =
            vec![Box::new(transfer(b"a", b"b", 10)), Box::new(t1)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(
            out.outcomes,
            vec![TxnOutcome::Committed, TxnOutcome::ConflictAborted]
        );
    }

    #[test]
    fn logic_abort_neither_reserves_nor_retries() {
        let mut store = bank(&[(b"a", 5), (b"b", 0), (b"c", 100)]);
        // Txn 0 has insufficient funds (logic abort); txn 1 writes the same
        // key `a` and must NOT be blocked by the aborted reservation.
        let batch = vec![transfer(b"a", b"b", 50), transfer(b"c", b"a", 10)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(
            out.outcomes,
            vec![TxnOutcome::LogicAborted, TxnOutcome::Committed]
        );
        assert!(out.conflict_aborted.is_empty());
        assert_eq!(balance(&store, b"a"), 15);
    }

    #[test]
    fn all_reads_of_snapshot_not_of_peers() {
        // Txn 1 must see the *snapshot* value of `a`, not txn 0's write.
        let mut store = bank(&[(b"a", 100), (b"b", 0), (b"c", 0)]);
        let snoop = move |view: &KvStore| {
            let mut eff = TxnEffects::default();
            // Deliberately not declaring the read to dodge the RAW check:
            // this tests snapshot isolation, not conflict detection.
            let a = balance(view, b"a");
            eff.write(b"c".as_slice(), a.to_le_bytes().to_vec());
            eff
        };
        let batch: Vec<Box<dyn DetTransaction + Send + Sync>> =
            vec![Box::new(transfer(b"a", b"b", 40)), Box::new(snoop)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(out.committed, 2);
        // Snoop saw the pre-batch value 100, not 60.
        assert_eq!(balance(&store, b"c"), 100);
    }

    #[test]
    fn determinism_across_replicas() {
        let run = || {
            let mut store = bank(&[(b"a", 100), (b"b", 50), (b"c", 25), (b"d", 0)]);
            let batch = vec![
                transfer(b"a", b"b", 10),
                transfer(b"b", b"c", 60),
                transfer(b"a", b"d", 5),
                transfer(b"c", b"d", 1),
                transfer(b"d", b"a", 100),
            ];
            let out = AriaExecutor::new().execute_batch(&mut store, &batch);
            (out.outcomes.clone(), store.content_hash())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hotspot_batch_has_high_abort_rate() {
        // The Fig. 8d effect: many transactions touching one hot key in a
        // single batch ⇒ only the first commits.
        let mut store = bank(&[(b"hot", 1_000_000)]);
        let batch: Vec<_> = (0..64).map(|_| transfer(b"hot", b"sink", 1)).collect();
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(out.committed, 1);
        assert!(out.abort_rate() > 0.95);
    }

    #[test]
    fn parallel_hotspot_matches_serial_exactly() {
        // Same Fig. 8d batch, every worker width: outcome vector, store
        // hash, and version must be bit-identical to the serial run.
        let batch: Vec<_> = (0..64).map(|_| transfer(b"hot", b"sink", 1)).collect();
        let mut serial_store = bank(&[(b"hot", 1_000_000)]);
        let serial = AriaExecutor::new().execute_batch(&mut serial_store, &batch);
        for workers in [2, 3, 4, 8] {
            let mut store = bank(&[(b"hot", 1_000_000)]);
            let out = AriaExecutor::parallel(workers).execute_batch(&mut store, &batch);
            assert_eq!(out, serial, "workers={workers}");
            assert_eq!(store.content_hash(), serial_store.content_hash());
            assert_eq!(store.version(), serial_store.version());
        }
    }

    #[test]
    fn parallel_wide_disjoint_batch_commits_everything() {
        let keys: Vec<Vec<u8>> = (0..512u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let mut store = KvStore::new();
        for k in &keys {
            store.put(k.clone(), 100u64.to_le_bytes().to_vec());
        }
        let batch: Vec<_> = keys
            .iter()
            .map(|k| {
                let k = k.clone();
                move |view: &KvStore| {
                    let mut eff = TxnEffects::default();
                    eff.read(k.clone());
                    let v = balance(view, &k);
                    eff.write(k.clone(), (v + 1).to_le_bytes().to_vec());
                    eff
                }
            })
            .collect();
        let out = AriaExecutor::parallel(8).execute_batch(&mut store, &batch);
        assert_eq!(out.committed, 512);
        assert!(out.conflict_aborted.is_empty());
        assert_eq!(balance(&store, &keys[77]), 101);
    }

    #[test]
    fn retry_of_conflict_aborted_txn_succeeds_next_batch() {
        let mut store = bank(&[(b"a", 100), (b"b", 0), (b"c", 0)]);
        let batch = vec![transfer(b"a", b"b", 10), transfer(b"a", b"c", 10)];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(out.conflict_aborted, vec![1]);
        // Retry the aborted transfer alone.
        let retry = vec![transfer(b"a", b"c", 10)];
        let out2 = AriaExecutor::new().execute_batch(&mut store, &retry);
        assert_eq!(out2.committed, 1);
        assert_eq!(balance(&store, b"a"), 80);
        assert_eq!(balance(&store, b"c"), 10);
        assert_eq!(store.version(), 2);
    }

    #[test]
    fn empty_batch_is_a_noop_with_version_bump() {
        let mut store = KvStore::new();
        let out = AriaExecutor::new().execute_batch(
            &mut store,
            &Vec::<Box<dyn DetTransaction + Send + Sync>>::new(),
        );
        assert_eq!(out.committed, 0);
        assert_eq!(out.abort_rate(), 0.0);
        assert_eq!(store.version(), 1);
    }
}

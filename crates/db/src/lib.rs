//! Deterministic in-memory database for MassBFT.
//!
//! The paper's prototype "employ[s] Aria deterministic concurrency control
//! to accelerate transaction execution and use[s] in-memory hash tables to
//! store database states" (§VI, *Implementation*). This crate reproduces
//! that execution substrate:
//!
//! - [`store`] — an in-memory key-value store with batch versioning,
//!   striped into shards so batch write sets apply concurrently,
//! - [`aria`] — an Aria-style deterministic batch executor (Lu et al.,
//!   VLDB'20): every transaction in a batch executes against the same
//!   snapshot, write/read reservations detect conflicts, and aborts are
//!   *deterministic* — every replica aborts exactly the same transactions,
//!   so no cross-replica coordination is needed during execution,
//! - [`pool`] — a scoped fork-join worker pool (no rayon in the offline
//!   toolchain) that the executor uses to run each Aria phase multi-core,
//! - [`stats`] — process-wide execution counters: per-phase timings,
//!   worker utilization, abort rates.
//!
//! Determinism is the property MassBFT leans on: once entries are globally
//! ordered (paper §V), every correct node feeds identical batches to this
//! executor and reaches an identical database state — at *any* worker
//! count. Parallel and serial execution are bit-identical by construction
//! (see the [`aria`] module docs) and by test (`tests/parallel_parity.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aria;
pub mod pool;
pub mod stats;
pub mod store;

pub use aria::{
    fallback_from_env, AriaExecutor, BatchOutcome, TxnEffects, TxnOutcome, FALLBACK_ENV,
};
pub use pool::WorkerPool;
pub use stats::{exec_stats, ExecStats};
pub use store::KvStore;

/// Database keys and values are plain byte strings.
pub type Key = Vec<u8>;
/// Database values.
pub type Value = Vec<u8>;

/// A transaction executable under deterministic concurrency control.
///
/// `execute` must be a pure function of the store snapshot: no interior
/// mutability, no randomness not derived from the transaction itself.
pub trait DetTransaction {
    /// Runs the transaction logic against a read snapshot, returning its
    /// read set, buffered writes, and logic-level abort flag.
    fn execute(&self, view: &KvStore) -> TxnEffects;
}

impl<F> DetTransaction for F
where
    F: Fn(&KvStore) -> TxnEffects,
{
    fn execute(&self, view: &KvStore) -> TxnEffects {
        self(view)
    }
}

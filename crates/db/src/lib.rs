//! Deterministic in-memory database for MassBFT.
//!
//! The paper's prototype "employ[s] Aria deterministic concurrency control
//! to accelerate transaction execution and use[s] in-memory hash tables to
//! store database states" (§VI, *Implementation*). This crate reproduces
//! that execution substrate:
//!
//! - [`store`] — an in-memory key-value store with batch versioning,
//! - [`aria`] — an Aria-style deterministic batch executor (Lu et al.,
//!   VLDB'20): every transaction in a batch executes against the same
//!   snapshot, write/read reservations detect conflicts, and aborts are
//!   *deterministic* — every replica aborts exactly the same transactions,
//!   so no cross-replica coordination is needed during execution.
//!
//! Determinism is the property MassBFT leans on: once entries are globally
//! ordered (paper §V), every correct node feeds identical batches to this
//! executor and reaches an identical database state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aria;
pub mod store;

pub use aria::{AriaExecutor, BatchOutcome, TxnEffects, TxnOutcome};
pub use store::KvStore;

/// Database keys and values are plain byte strings.
pub type Key = Vec<u8>;
/// Database values.
pub type Value = Vec<u8>;

/// A transaction executable under deterministic concurrency control.
///
/// `execute` must be a pure function of the store snapshot: no interior
/// mutability, no randomness not derived from the transaction itself.
pub trait DetTransaction {
    /// Runs the transaction logic against a read snapshot, returning its
    /// read set, buffered writes, and logic-level abort flag.
    fn execute(&self, view: &KvStore) -> TxnEffects;
}

impl<F> DetTransaction for F
where
    F: Fn(&KvStore) -> TxnEffects,
{
    fn execute(&self, view: &KvStore) -> TxnEffects {
        self(view)
    }
}

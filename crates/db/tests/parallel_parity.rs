//! Parallel/serial execution parity.
//!
//! The hard constraint of the multi-core executor: at ANY worker count,
//! `AriaExecutor::parallel(n)` must produce the exact `BatchOutcome` and
//! post-batch store state of the serial executor — otherwise replicas
//! configured with different core counts would diverge. Exercised both
//! with a deterministic hotspot workload and a proptest over arbitrary
//! batches that mix WAW conflicts, RAW conflicts, duplicate in-txn
//! writes, read-only txns, blind writes, and data-dependent logic
//! aborts.
//!
//! `scripts/check.sh` re-runs this suite with `MASSBFT_EXEC_WORKERS`
//! forced to 2 and 8 so nondeterminism that only shows up under real
//! thread interleaving is caught by the gate, and once more with
//! `MASSBFT_EXEC_FALLBACK=1` so the deterministic abort fallback is
//! exercised under real parallelism too (the env-driven tests below
//! mirror the executor's fallback setting into their serial reference).

use massbft_db::pool::WORKERS_ENV;
use massbft_db::{AriaExecutor, DetTransaction, KvStore, TxnEffects};

/// Small hot keyspace so arbitrary batches conflict constantly.
const KEYS: u8 = 13;

fn key(id: u8) -> Vec<u8> {
    vec![b'k', id % KEYS]
}

fn val_u64(v: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    let n = v.len().min(8);
    b[..n].copy_from_slice(&v[..n]);
    u64::from_le_bytes(b)
}

/// A synthetic read-modify-write transaction whose writes depend on its
/// snapshot reads, so stale execution would change the database bytes,
/// not just the outcome vector.
#[derive(Debug, Clone)]
struct TestTxn {
    reads: Vec<u8>,
    writes: Vec<(u8, u8)>,
    abort_if_odd: bool,
}

impl DetTransaction for TestTxn {
    fn execute(&self, view: &KvStore) -> TxnEffects {
        let mut eff = TxnEffects::default();
        let mut acc: u64 = 0;
        for &r in &self.reads {
            let k = key(r);
            acc = acc.wrapping_add(view.get(&k).map(|v| val_u64(v)).unwrap_or(0));
            eff.read(k);
        }
        if self.abort_if_odd && acc % 2 == 1 {
            eff.abort = true;
            return eff;
        }
        for &(w, d) in &self.writes {
            let k = key(w);
            let old = view.get(&k).map(|v| val_u64(v)).unwrap_or(0);
            let new = old
                .wrapping_mul(31)
                .wrapping_add(acc)
                .wrapping_add(d as u64);
            eff.write(k, new.to_le_bytes().to_vec());
        }
        eff
    }
}

/// Decodes raw fuzz bytes into transactions, 6 bytes each:
/// `[kind, r1, r2, w1, w2, delta]`.
fn decode_txns(raw: &[u8]) -> Vec<TestTxn> {
    raw.chunks_exact(6)
        .map(|c| match c[0] & 3 {
            // Classic RMW pair; may write the same key twice in one txn.
            0 => TestTxn {
                reads: vec![c[1], c[2]],
                writes: vec![(c[3], c[5]), (c[4], c[5].wrapping_add(7))],
                abort_if_odd: false,
            },
            // Read-only.
            1 => TestTxn {
                reads: vec![c[1], c[2]],
                writes: vec![],
                abort_if_odd: false,
            },
            // Blind write (no declared reads, no RAW exposure).
            2 => TestTxn {
                reads: vec![],
                writes: vec![(c[3], c[5])],
                abort_if_odd: false,
            },
            // Data-dependent logic abort.
            _ => TestTxn {
                reads: vec![c[1]],
                writes: vec![(c[3], c[5])],
                abort_if_odd: true,
            },
        })
        .collect()
}

fn seeded_store(seed: u64) -> KvStore {
    let mut s = KvStore::new();
    for id in 0..KEYS {
        let v = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(id as u64);
        s.put(key(id), v.to_le_bytes().to_vec());
    }
    s
}

/// Runs `batches` sequentially against a fresh seeded store, returning
/// the per-batch outcomes and the final store fingerprint.
fn run(
    exec: &AriaExecutor,
    seed: u64,
    batches: &[Vec<TestTxn>],
) -> (Vec<massbft_db::BatchOutcome>, u64, u64, usize) {
    let mut store = seeded_store(seed);
    let outs = batches
        .iter()
        .map(|b| exec.execute_batch(&mut store, b))
        .collect();
    (outs, store.content_hash(), store.version(), store.len())
}

/// Tiny LCG so the deterministic tests need no RNG dependency.
fn lcg_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

#[test]
fn hot_batch_parity_at_many_widths() {
    let raw = lcg_bytes(42, 6 * 1024);
    let txns = decode_txns(&raw);
    // Three chained batches so later batches run on parallel-applied state.
    let batches: Vec<Vec<TestTxn>> = txns.chunks(400).map(|c| c.to_vec()).collect();
    let serial = run(&AriaExecutor::new(), 9, &batches);
    for workers in [2, 3, 4, 5, 8, 16] {
        let par = run(&AriaExecutor::parallel(workers), 9, &batches);
        assert_eq!(par, serial, "divergence at workers={workers}");
    }
}

#[test]
fn conflict_heavy_small_batches_parity() {
    // Batches just over the fan-out threshold, all hammering KEYS keys.
    for batch_len in [16usize, 33, 64, 130] {
        let raw = lcg_bytes(batch_len as u64, 6 * batch_len * 4);
        let txns = decode_txns(&raw);
        let batches: Vec<Vec<TestTxn>> = txns.chunks(batch_len).map(|c| c.to_vec()).collect();
        let serial = run(&AriaExecutor::new(), 7, &batches);
        for workers in [2, 8] {
            let par = run(&AriaExecutor::parallel(workers), 7, &batches);
            assert_eq!(par, serial, "batch_len={batch_len} workers={workers}");
        }
    }
}

#[test]
fn env_forced_width_matches_serial() {
    let prev = std::env::var(WORKERS_ENV).ok();
    std::env::set_var(WORKERS_ENV, "5");
    let exec = AriaExecutor::from_env();
    assert_eq!(exec.workers(), 5);
    match prev {
        Some(v) => std::env::set_var(WORKERS_ENV, v),
        None => std::env::remove_var(WORKERS_ENV),
    }
    let raw = lcg_bytes(99, 6 * 600);
    let batches = vec![decode_txns(&raw)];
    let reference = AriaExecutor::new().with_fallback(exec.fallback_enabled());
    assert_eq!(run(&exec, 3, &batches), run(&reference, 3, &batches));
}

#[test]
fn env_default_width_parity() {
    // Whatever width check.sh forces via the env var (or serial when
    // unset), results must equal the serial executor's.
    let exec = AriaExecutor::from_env();
    let raw = lcg_bytes(1234, 6 * 2000);
    let txns = decode_txns(&raw);
    let batches: Vec<Vec<TestTxn>> = txns.chunks(500).map(|c| c.to_vec()).collect();
    let reference = AriaExecutor::new().with_fallback(exec.fallback_enabled());
    assert_eq!(run(&exec, 11, &batches), run(&reference, 11, &batches));
}

#[test]
fn fallback_parity_at_many_widths() {
    // The deterministic fallback re-runs the abort set against the
    // evolving store, so stale or reordered rescues would change the
    // database bytes — the strictest parity target in the suite.
    let raw = lcg_bytes(77, 6 * 1024);
    let txns = decode_txns(&raw);
    let batches: Vec<Vec<TestTxn>> = txns.chunks(400).map(|c| c.to_vec()).collect();
    let serial = run(&AriaExecutor::new().with_fallback(true), 5, &batches);
    for workers in [2, 3, 4, 5, 8, 16] {
        let par = run(
            &AriaExecutor::parallel(workers).with_fallback(true),
            5,
            &batches,
        );
        assert_eq!(par, serial, "fallback divergence at workers={workers}");
    }
    // With the fallback on, no batch leaves conflict residue behind.
    assert!(serial.0.iter().all(|o| o.conflict_aborted.is_empty()));
}

mod prop {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_any_batch_any_width_matches_serial(
            raw in vec(any::<u8>(), 0..900),
            seed in any::<u64>(),
            split in 1usize..5,
        ) {
            let txns = decode_txns(&raw);
            let per = (txns.len() / split).max(1);
            let batches: Vec<Vec<TestTxn>> =
                txns.chunks(per).map(|c| c.to_vec()).collect();
            let serial = run(&AriaExecutor::new(), seed, &batches);
            let serial_fb = run(&AriaExecutor::new().with_fallback(true), seed, &batches);
            for workers in [2usize, 3, 8] {
                let par = run(&AriaExecutor::parallel(workers), seed, &batches);
                prop_assert_eq!(&par, &serial);
                let par_fb = run(
                    &AriaExecutor::parallel(workers).with_fallback(true),
                    seed,
                    &batches,
                );
                prop_assert_eq!(&par_fb, &serial_fb);
            }
        }
    }
}

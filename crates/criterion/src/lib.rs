//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal wall-clock benchmarking harness exposing the subset of
//! criterion's API that MassBFT's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! No statistics engine: each benchmark warms up briefly, then runs timed
//! batches until a wall-clock budget is spent and reports the mean
//! time/iteration (plus derived throughput when declared). That is enough
//! to compare the data-plane fast path against its baseline and to feed
//! the `BENCH_*.json` trajectory emitters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Wall-clock budget spent warming each benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors criterion's CLI-arg hook; accepts and ignores filters.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration volume for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.throughput, |b| f(b));
        self
    }

    /// Ends the group (report flushing is per-benchmark here).
    pub fn finish(self) {}
}

/// A benchmark identifier built from a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Per-iteration data volume, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Measures closures; handed to each benchmark body.
pub struct Bencher {
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_spi: f64,
}

impl Bencher {
    /// Times `f`, recording the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: establishes caches and gives a per-iter estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1 << 20 {
                break;
            }
        }
        let est_spi = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Measure in batches sized to ~10ms so Instant overhead vanishes.
        let batch = ((0.01 / est_spi.max(1e-9)) as u64).clamp(1, 1 << 24);
        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                black_box(f());
            }
            total_iters += batch;
        }
        self.mean_spi = measure_start.elapsed().as_secs_f64() / total_iters as f64;
    }
}

fn run_benchmark<F: FnOnce(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: F) {
    let mut b = Bencher { mean_spi: 0.0 };
    f(&mut b);
    let mut line = format!("bench: {label:<46} {}", format_time(b.mean_spi));
    if let Some(t) = throughput {
        match t {
            Throughput::Bytes(n) => {
                let mibs = n as f64 / b.mean_spi.max(1e-12) / (1024.0 * 1024.0);
                let _ = write!(line, "  ({mibs:.1} MiB/s)");
            }
            Throughput::Elements(n) => {
                let eps = n as f64 / b.mean_spi.max(1e-12);
                let _ = write!(line, "  ({eps:.0} elem/s)");
            }
        }
    }
    println!("{line}");
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>9.3} s/iter ")
    } else if secs >= 1e-3 {
        format!("{:>9.3} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>9.3} µs/iter", secs * 1e6)
    } else {
        format!("{:>9.1} ns/iter", secs * 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_spi: 0.0 };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.mean_spi > 0.0);
        assert!(
            b.mean_spi < 0.1,
            "trivial op should be far under 100ms/iter"
        );
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("100KiB", "4to7").label(), "100KiB/4to7");
        assert_eq!(BenchmarkId::from_parameter(4096).label(), "4096");
    }

    #[test]
    fn groups_run_to_completion() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::new("x", 1), &5u64, |b, &v| {
            b.iter(|| v.wrapping_mul(3))
        });
        g.bench_function("plain", |b| b.iter(|| 1u32 + 1));
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 2u32 * 2));
    }
}

//! Property-based safety tests for the consensus substrates under
//! adversarial delivery: random drops, duplications, and reorderings
//! must never violate PBFT or Raft safety invariants — only liveness may
//! suffer (and the properties don't demand progress).

use bytes::Bytes;
use massbft_consensus::pbft::{PbftConfig, PbftMsg, PbftOutput, PbftReplica};
use massbft_consensus::raft::{RaftConfig, RaftMsg, RaftNode, RaftOutput};
use massbft_crypto::{Digest, KeyRegistry};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;

// --------------------------------------------------------------------------
// PBFT
// --------------------------------------------------------------------------

/// Drives `n` PBFT replicas under a seeded adversarial network; returns
/// each replica's committed `(seq, payload)` sequence.
fn pbft_adversarial(
    n: usize,
    proposals: &[Vec<u8>],
    seed: u64,
    drop_pct: u32,
    dup_pct: u32,
) -> Vec<Vec<(u64, Bytes)>> {
    let registry = KeyRegistry::generate(1, &[n]);
    let mut replicas: Vec<PbftReplica> = (0..n)
        .map(|i| {
            PbftReplica::new(
                PbftConfig {
                    group: 0,
                    n,
                    node: i as u32,
                    skip_prepare: false,
                    checkpoint_interval: 0,
                },
                registry.clone(),
            )
        })
        .collect();
    let mut committed: Vec<Vec<(u64, Bytes)>> = vec![Vec::new(); n];
    let mut rng = StdRng::seed_from_u64(seed);
    // A pool rather than a queue: random draws model reordering.
    let mut pool: Vec<(u32, u32, PbftMsg)> = Vec::new();

    let absorb = |from: u32,
                  outs: Vec<PbftOutput>,
                  pool: &mut Vec<(u32, u32, PbftMsg)>,
                  committed: &mut Vec<Vec<(u64, Bytes)>>| {
        for o in outs {
            match o {
                PbftOutput::Send { to, msg } => pool.push((from, to, msg)),
                PbftOutput::Broadcast(msg) => {
                    for to in 0..n as u32 {
                        if to != from {
                            pool.push((from, to, msg.clone()));
                        }
                    }
                }
                PbftOutput::Committed { seq, payload, .. } => {
                    committed[from as usize].push((seq, payload));
                }
                _ => {}
            }
        }
    };

    for p in proposals {
        let outs = replicas[0].propose(p.clone());
        absorb(0, outs, &mut pool, &mut committed);
    }
    let mut steps = 0u32;
    while !pool.is_empty() && steps < 200_000 {
        steps += 1;
        let idx = rng.gen_range(0..pool.len());
        let (from, to, msg) = pool.swap_remove(idx);
        if rng.gen_range(0..100u32) < drop_pct {
            continue;
        }
        if rng.gen_range(0..100u32) < dup_pct {
            pool.push((from, to, msg.clone()));
        }
        let outs = replicas[to as usize].on_message(from, msg);
        absorb(to, outs, &mut pool, &mut committed);
    }
    committed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Safety: no two replicas ever commit different payloads at the same
    /// sequence number, and each replica's committed sequence numbers are
    /// contiguous from 1, under arbitrary reordering/drops/duplication.
    #[test]
    fn pbft_no_conflicting_commits(
        n in prop::sample::select(vec![4usize, 7]),
        n_props in 1usize..6,
        seed in any::<u64>(),
        drop_pct in 0u32..30,
        dup_pct in 0u32..20,
    ) {
        let proposals: Vec<Vec<u8>> =
            (0..n_props).map(|i| format!("payload-{i}").into_bytes()).collect();
        let committed = pbft_adversarial(n, &proposals, seed, drop_pct, dup_pct);
        let mut by_seq: BTreeMap<u64, Bytes> = BTreeMap::new();
        for (r, log) in committed.iter().enumerate() {
            for (expect, (seq, payload)) in (1u64..).zip(log.iter()) {
                prop_assert_eq!(*seq, expect, "replica {} commits out of order", r);
                match by_seq.get(seq) {
                    Some(existing) => prop_assert_eq!(
                        existing, payload,
                        "replicas disagree at seq {}", seq
                    ),
                    None => {
                        by_seq.insert(*seq, payload.clone());
                    }
                }
            }
        }
    }
}

#[test]
fn pbft_equivocating_primary_cannot_split_honest_replicas() {
    // A Byzantine primary hands different payloads for the same (view,
    // seq) to different replicas. At most one of the two can gather a
    // prepare quorum, so honest replicas never commit conflicting values.
    let n = 4;
    let registry = KeyRegistry::generate(2, &[n]);
    let mut replicas: Vec<PbftReplica> = (0..n)
        .map(|i| {
            PbftReplica::new(
                PbftConfig {
                    group: 0,
                    n,
                    node: i as u32,
                    skip_prepare: false,
                    checkpoint_interval: 0,
                },
                registry.clone(),
            )
        })
        .collect();

    let pay_a = b"value-A".to_vec();
    let pay_b = b"value-B".to_vec();
    let pre = |payload: &Vec<u8>| PbftMsg::PrePrepare {
        view: 0,
        seq: 1,
        payload: payload.clone().into(),
        digest: Digest::of(payload),
    };

    // Primary 0 equivocates: replicas 1 gets A; replicas 2 and 3 get B.
    let mut pool: Vec<(u32, u32, PbftMsg)> = Vec::new();
    let mut committed: Vec<Vec<Bytes>> = vec![Vec::new(); n];
    let absorb = |from: u32,
                  outs: Vec<PbftOutput>,
                  pool: &mut Vec<(u32, u32, PbftMsg)>,
                  committed: &mut Vec<Vec<Bytes>>| {
        for o in outs {
            match o {
                PbftOutput::Send { to, msg } => pool.push((from, to, msg)),
                PbftOutput::Broadcast(msg) => {
                    for to in 0..n as u32 {
                        if to != from {
                            pool.push((from, to, msg.clone()));
                        }
                    }
                }
                PbftOutput::Committed { payload, .. } => committed[from as usize].push(payload),
                _ => {}
            }
        }
    };
    let outs = replicas[1].on_message(0, pre(&pay_a));
    absorb(1, outs, &mut pool, &mut committed);
    for r in [2u32, 3] {
        let outs = replicas[r as usize].on_message(0, pre(&pay_b));
        absorb(r, outs, &mut pool, &mut committed);
    }
    // Deliver everything (the Byzantine primary stays silent otherwise).
    while let Some((from, to, msg)) = pool.pop() {
        if to == 0 {
            continue; // the Byzantine primary drops its inbox
        }
        let outs = replicas[to as usize].on_message(from, msg);
        absorb(to, outs, &mut pool, &mut committed);
    }
    // No two honest replicas committed different values at seq 1.
    let committed_values: Vec<&Bytes> = committed[1..].iter().flatten().collect();
    for w in committed_values.windows(2) {
        assert_eq!(w[0], w[1], "equivocation split the honest replicas");
    }
}

// --------------------------------------------------------------------------
// Raft
// --------------------------------------------------------------------------

/// Drives a Raft trio under adversarial delivery with scripted leader
/// proposals and random election timeouts; returns committed logs.
fn raft_adversarial(seed: u64, drop_pct: u32, timeouts: u32) -> Vec<Vec<(u64, u64)>> {
    let members = vec![0u32, 1, 2];
    let mut nodes: Vec<RaftNode<u64>> = members
        .iter()
        .map(|&m| {
            RaftNode::new(RaftConfig {
                me: m,
                members: members.clone(),
                initial_leader: Some(0),
            })
        })
        .collect();
    let mut committed: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 3];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<(u32, u32, RaftMsg<u64>)> = Vec::new();

    let absorb = |from: u32,
                  outs: Vec<RaftOutput<u64>>,
                  pool: &mut Vec<(u32, u32, RaftMsg<u64>)>,
                  committed: &mut Vec<Vec<(u64, u64)>>| {
        for o in outs {
            match o {
                RaftOutput::Send { to, msg } => pool.push((from, to, msg)),
                RaftOutput::Committed { index, data, .. } => {
                    committed[from as usize].push((index, data))
                }
                _ => {}
            }
        }
    };

    let mut next_value = 0u64;
    for round in 0..40u32 {
        // Whoever believes it is leader proposes.
        for (m, node) in nodes.iter_mut().enumerate() {
            if node.is_leader() {
                if let Some((_, outs)) = node.propose(next_value) {
                    next_value += 1;
                    absorb(m as u32, outs, &mut pool, &mut committed);
                }
            }
        }
        // Random election timeouts sprinkle leadership churn.
        if timeouts > 0 && round % (41 - timeouts) == 0 {
            let victim = rng.gen_range(0..3usize);
            let outs = nodes[victim].on_election_timeout();
            absorb(victim as u32, outs, &mut pool, &mut committed);
        }
        // Deliver a random batch with drops.
        for _ in 0..40 {
            if pool.is_empty() {
                break;
            }
            let idx = rng.gen_range(0..pool.len());
            let (from, to, msg) = pool.swap_remove(idx);
            if rng.gen_range(0..100u32) < drop_pct {
                continue;
            }
            let outs = nodes[to as usize].step(from, msg);
            absorb(to, outs, &mut pool, &mut committed);
        }
    }
    // Final full drain without drops so logs converge where possible.
    let mut steps = 0;
    while !pool.is_empty() && steps < 100_000 {
        steps += 1;
        let idx = rng.gen_range(0..pool.len());
        let (from, to, msg) = pool.swap_remove(idx);
        let outs = nodes[to as usize].step(from, msg);
        absorb(to, outs, &mut pool, &mut committed);
    }
    committed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raft State-Machine-Safety: no two members apply different commands
    /// at the same log index, and every member applies indices
    /// contiguously, under drops, reordering, and leadership churn.
    #[test]
    fn raft_state_machine_safety(
        seed in any::<u64>(),
        drop_pct in 0u32..35,
        timeouts in 0u32..30,
    ) {
        let committed = raft_adversarial(seed, drop_pct, timeouts);
        let mut by_index: BTreeMap<u64, u64> = BTreeMap::new();
        for (m, log) in committed.iter().enumerate() {
            for (expect, &(index, data)) in (1u64..).zip(log.iter()) {
                prop_assert_eq!(index, expect, "member {} applied out of order", m);
                match by_index.get(&index) {
                    Some(&existing) => prop_assert_eq!(
                        existing, data,
                        "members disagree at index {}", index
                    ),
                    None => {
                        by_index.insert(index, data);
                    }
                }
            }
        }
    }
}

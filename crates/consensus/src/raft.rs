//! Raft consensus (Ongaro & Ousterhout, USENIX ATC'14), sans-io.
//!
//! In MassBFT, Raft provides **global** replication: each *group* is one
//! logical Raft member (`n_g ≥ 2f_g + 1`), and `n_g` instances run in
//! parallel, each permanently led by its owning group unless that group
//! crashes (paper §V-A, §V-C *Crashed Groups*). Raft messages between
//! groups carry entry digests, PBFT certificates, and piggybacked vector
//! timestamps; because those payloads are certificate-protected, Byzantine
//! nodes cannot tamper with them, and Raft only needs to mask whole-group
//! crashes (paper §II-A).
//!
//! The implementation covers leader election (with pre-set initial
//! leadership so each group starts leading its own instance), log
//! replication with pipelining, commit-index advancement, follower log
//! repair, and leadership transfer back to a recovered owner. Membership
//! change and snapshotting are out of scope: the paper's deployments have
//! a fixed group roster.

use massbft_telemetry::registry::{counter, Counter};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Process-wide Raft counters in the telemetry registry (activity
/// accounting only — the sans-io node has no clock; timing spans are
/// the driver's job).
struct RaftCounters {
    proposals: Counter,
    elections: Counter,
    committed: Counter,
}

fn counters() -> &'static RaftCounters {
    static C: OnceLock<RaftCounters> = OnceLock::new();
    C.get_or_init(|| RaftCounters {
        proposals: counter("consensus.raft.proposals"),
        elections: counter("consensus.raft.elections"),
        committed: counter("consensus.raft.committed_entries"),
    })
}

/// Member identifier: the group id acting as a logical replica.
pub type MemberId = u32;

/// Static configuration of one Raft member.
#[derive(Debug, Clone)]
pub struct RaftConfig {
    /// This member's id.
    pub me: MemberId,
    /// All members, including `me`.
    pub members: Vec<MemberId>,
    /// The member that starts as leader at term 1 (the instance owner in
    /// MassBFT). `None` starts everyone as followers at term 0.
    pub initial_leader: Option<MemberId>,
}

impl RaftConfig {
    /// Majority quorum size.
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }
}

/// A replicated log slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry<T> {
    /// Term in which the entry was appended at the leader.
    pub term: u64,
    /// Opaque command.
    pub data: T,
}

/// Raft wire messages.
#[derive(Debug, Clone)]
pub enum RaftMsg<T> {
    /// Candidate requests a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote response.
    Vote {
        /// Voter's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replicates entries (heartbeat when empty).
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Index of the entry preceding `entries`.
        prev_index: u64,
        /// Term of the entry at `prev_index`.
        prev_term: u64,
        /// Entries to append (may be empty).
        entries: Vec<LogEntry<T>>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Append response.
    AppendResp {
        /// Responder's current term.
        term: u64,
        /// Whether the append matched.
        success: bool,
        /// Highest index now matching the leader's log (on success), or a
        /// hint to back off to (on failure).
        match_index: u64,
    },
    /// Leadership transfer request: the current leader asks `target` (the
    /// recovered owner) to start an election immediately (paper §V-C:
    /// "G_j transfers the leadership of G_i's Raft instance back to G_i").
    TimeoutNow,
}

/// Member roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaftRole {
    /// Passive replica.
    Follower,
    /// Election in progress.
    Candidate,
    /// Serving proposals.
    Leader,
}

/// Actions a Raft member asks its driver to perform.
#[derive(Debug)]
pub enum RaftOutput<T> {
    /// Send a message to another member.
    Send {
        /// Destination member.
        to: MemberId,
        /// The message.
        msg: RaftMsg<T>,
    },
    /// An entry committed at `index` (1-based, contiguous).
    Committed {
        /// Log index.
        index: u64,
        /// Term of the committed entry.
        term: u64,
        /// The command.
        data: T,
    },
    /// This member became leader for `term`.
    BecameLeader(u64),
    /// This member observed a higher term and stepped down.
    SteppedDown,
}

/// A Raft member state machine.
pub struct RaftNode<T: Clone> {
    cfg: RaftConfig,
    role: RaftRole,
    term: u64,
    voted_for: Option<MemberId>,
    /// Suffix of the log starting after `snapshot_index`.
    log: Vec<LogEntry<T>>,
    /// Index of the last compacted-away entry (0 = nothing compacted).
    snapshot_index: u64,
    /// Term of the entry at `snapshot_index`.
    snapshot_term: u64,
    commit_index: u64,
    /// Index of the last entry handed to the application.
    applied_index: u64,
    /// Leader state: next index to send to each follower.
    next_index: BTreeMap<MemberId, u64>,
    /// Leader state: highest index known replicated on each follower.
    match_index: BTreeMap<MemberId, u64>,
    votes_received: BTreeMap<MemberId, bool>,
    /// Who we believe currently leads (for forwarding hints).
    leader_hint: Option<MemberId>,
}

impl<T: Clone> RaftNode<T> {
    /// Creates a member. If `cfg.initial_leader` is set, that member starts
    /// as the term-1 leader and everyone else as a term-1 follower — the
    /// deterministic bootstrap MassBFT uses for each group's own instance.
    pub fn new(cfg: RaftConfig) -> Self {
        let mut node = RaftNode {
            role: RaftRole::Follower,
            term: 0,
            voted_for: None,
            log: Vec::new(),
            snapshot_index: 0,
            snapshot_term: 0,
            commit_index: 0,
            applied_index: 0,
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            votes_received: BTreeMap::new(),
            leader_hint: cfg.initial_leader,
            cfg,
        };
        if let Some(leader) = node.cfg.initial_leader {
            node.term = 1;
            node.voted_for = Some(leader);
            if leader == node.cfg.me {
                node.become_leader();
            }
        }
        node
    }

    /// Current role.
    pub fn role(&self) -> RaftRole {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Whether this member is the leader.
    pub fn is_leader(&self) -> bool {
        self.role == RaftRole::Leader
    }

    /// Best guess at the current leader.
    pub fn leader_hint(&self) -> Option<MemberId> {
        self.leader_hint
    }

    /// Log length (last index).
    pub fn last_index(&self) -> u64 {
        self.snapshot_index + self.log.len() as u64
    }

    /// Commit index.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Index of the last compacted entry (0 when nothing was compacted).
    pub fn snapshot_index(&self) -> u64 {
        self.snapshot_index
    }

    /// Number of entries currently retained in memory.
    pub fn retained_entries(&self) -> usize {
        self.log.len()
    }

    /// Compacts the log up to `upto` (inclusive), which must not exceed
    /// the applied prefix — applied entries are owned by the state
    /// machine, so dropping them is safe. Requests past the applied
    /// prefix are ignored (no-op). Returns how many entries were dropped.
    ///
    /// Followers that fall behind a leader's compaction horizon cannot be
    /// repaired from the log alone; since MassBFT's groups are crash-only
    /// and replication is certificate-protected, the driver layer recovers
    /// such followers through entry repair, not InstallSnapshot — the
    /// leader simply keeps a margin: see [`RaftNode::compact_to_applied`].
    pub fn compact(&mut self, upto: u64) -> usize {
        if upto > self.applied_index || upto <= self.snapshot_index {
            return 0;
        }
        let drop = (upto - self.snapshot_index) as usize;
        self.snapshot_term = self
            .entry(upto)
            .map(|e| e.term)
            .unwrap_or(self.snapshot_term);
        self.log.drain(..drop);
        self.snapshot_index = upto;
        drop
    }

    /// Compacts everything the slowest *matched* follower has applied,
    /// keeping `margin` entries for retransmission. Leaders only; returns
    /// entries dropped.
    pub fn compact_to_applied(&mut self, margin: u64) -> usize {
        if self.role != RaftRole::Leader {
            // Followers compact to their own applied prefix.
            let upto = self.applied_index.saturating_sub(margin);
            return self.compact(upto);
        }
        let min_match = self
            .cfg
            .members
            .iter()
            .map(|m| self.match_index.get(m).copied().unwrap_or(0))
            .min()
            .unwrap_or(0);
        let upto = min_match.min(self.applied_index).saturating_sub(margin);
        self.compact(upto)
    }

    /// Reads a log entry (1-based index). Compacted entries return `None`.
    pub fn entry(&self, index: u64) -> Option<&LogEntry<T>> {
        if index == 0 || index <= self.snapshot_index {
            return None;
        }
        self.log.get((index - self.snapshot_index) as usize - 1)
    }

    fn last_term(&self) -> u64 {
        self.log
            .last()
            .map(|e| e.term)
            .unwrap_or(self.snapshot_term)
    }

    /// Leader API: appends a command and emits replication messages.
    /// Returns `None` (with no side effects) if not leader.
    pub fn propose(&mut self, data: T) -> Option<(u64, Vec<RaftOutput<T>>)> {
        if self.role != RaftRole::Leader {
            return None;
        }
        counters().proposals.inc();
        self.log.push(LogEntry {
            term: self.term,
            data,
        });
        let index = self.last_index();
        self.match_index.insert(self.cfg.me, index);
        let mut out = Vec::new();
        // Pipelined replication: send immediately, do not wait for acks.
        for &peer in &self.cfg.members.clone() {
            if peer != self.cfg.me {
                out.extend(self.send_append(peer));
            }
        }
        // Single-member degenerate case: commit immediately.
        out.extend(self.advance_commit());
        Some((index, out))
    }

    /// Driver's election timer fired (no heartbeat heard).
    pub fn on_election_timeout(&mut self) -> Vec<RaftOutput<T>> {
        if self.role == RaftRole::Leader {
            return Vec::new();
        }
        counters().elections.inc();
        self.term += 1;
        self.role = RaftRole::Candidate;
        self.voted_for = Some(self.cfg.me);
        self.votes_received.clear();
        self.votes_received.insert(self.cfg.me, true);
        self.leader_hint = None;
        let mut out = Vec::new();
        let (lli, llt) = (self.last_index(), self.last_term());
        for &peer in &self.cfg.members {
            if peer != self.cfg.me {
                out.push(RaftOutput::Send {
                    to: peer,
                    msg: RaftMsg::RequestVote {
                        term: self.term,
                        last_log_index: lli,
                        last_log_term: llt,
                    },
                });
            }
        }
        // Single-member cluster wins instantly.
        if self.votes_received.len() >= self.cfg.majority() {
            self.become_leader();
            out.push(RaftOutput::BecameLeader(self.term));
            out.extend(self.heartbeat());
        }
        out
    }

    /// Driver's heartbeat timer fired (leaders only).
    pub fn on_heartbeat_timeout(&mut self) -> Vec<RaftOutput<T>> {
        if self.role != RaftRole::Leader {
            return Vec::new();
        }
        self.heartbeat()
    }

    fn heartbeat(&mut self) -> Vec<RaftOutput<T>> {
        let peers: Vec<MemberId> = self
            .cfg
            .members
            .iter()
            .copied()
            .filter(|&p| p != self.cfg.me)
            .collect();
        let mut out = Vec::new();
        for peer in peers {
            out.extend(self.send_append(peer));
        }
        out
    }

    /// Leader API: ask `target` to take over leadership (used when a
    /// crashed instance owner recovers).
    pub fn transfer_leadership(&mut self, target: MemberId) -> Vec<RaftOutput<T>> {
        if self.role != RaftRole::Leader || target == self.cfg.me {
            return Vec::new();
        }
        vec![RaftOutput::Send {
            to: target,
            msg: RaftMsg::TimeoutNow,
        }]
    }

    /// Handles a message from `from`.
    pub fn step(&mut self, from: MemberId, msg: RaftMsg<T>) -> Vec<RaftOutput<T>> {
        match msg {
            RaftMsg::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(from, term, last_log_index, last_log_term),
            RaftMsg::Vote { term, granted } => self.on_vote(from, term, granted),
            RaftMsg::AppendEntries {
                term,
                prev_index,
                prev_term,
                entries,
                leader_commit,
            } => self.on_append(from, term, prev_index, prev_term, entries, leader_commit),
            RaftMsg::AppendResp {
                term,
                success,
                match_index,
            } => self.on_append_resp(from, term, success, match_index),
            RaftMsg::TimeoutNow => self.on_election_timeout(),
        }
    }

    fn maybe_step_down(&mut self, term: u64) -> Option<RaftOutput<T>> {
        if term > self.term {
            let was_leader = self.role == RaftRole::Leader;
            self.term = term;
            self.role = RaftRole::Follower;
            self.voted_for = None;
            self.votes_received.clear();
            if was_leader {
                return Some(RaftOutput::SteppedDown);
            }
        }
        None
    }

    fn on_request_vote(
        &mut self,
        from: MemberId,
        term: u64,
        last_log_index: u64,
        last_log_term: u64,
    ) -> Vec<RaftOutput<T>> {
        let mut out = Vec::new();
        out.extend(self.maybe_step_down(term));
        let up_to_date = (last_log_term, last_log_index) >= (self.last_term(), self.last_index());
        let grant = term >= self.term
            && up_to_date
            && (self.voted_for.is_none() || self.voted_for == Some(from));
        if grant {
            self.voted_for = Some(from);
        }
        out.push(RaftOutput::Send {
            to: from,
            msg: RaftMsg::Vote {
                term: self.term,
                granted: grant,
            },
        });
        out
    }

    fn on_vote(&mut self, from: MemberId, term: u64, granted: bool) -> Vec<RaftOutput<T>> {
        let mut out = Vec::new();
        out.extend(self.maybe_step_down(term));
        if self.role != RaftRole::Candidate || term < self.term {
            return out;
        }
        self.votes_received.insert(from, granted);
        let yes = self.votes_received.values().filter(|&&g| g).count();
        if yes >= self.cfg.majority() {
            self.become_leader();
            out.push(RaftOutput::BecameLeader(self.term));
            out.extend(self.heartbeat());
        }
        out
    }

    fn become_leader(&mut self) {
        self.role = RaftRole::Leader;
        self.leader_hint = Some(self.cfg.me);
        let next = self.last_index() + 1;
        self.next_index = self.cfg.members.iter().map(|&m| (m, next)).collect();
        self.match_index = self.cfg.members.iter().map(|&m| (m, 0)).collect();
        self.match_index.insert(self.cfg.me, self.last_index());
    }

    fn send_append(&mut self, peer: MemberId) -> Vec<RaftOutput<T>> {
        // Never back off below the compaction horizon: the follower's
        // missing prefix is recovered by the application layer.
        let floor = self.snapshot_index + 1;
        let next = self.next_index.get(&peer).copied().unwrap_or(1).max(floor);
        let prev_index = next - 1;
        let prev_term = if prev_index == 0 {
            0
        } else if prev_index == self.snapshot_index {
            self.snapshot_term
        } else {
            self.entry(prev_index).map(|e| e.term).unwrap_or(0)
        };
        let entries: Vec<LogEntry<T>> =
            self.log[(prev_index - self.snapshot_index) as usize..].to_vec();
        // Pipelining: optimistically advance next_index so back-to-back
        // proposals ship disjoint suffixes instead of re-sending.
        self.next_index.insert(peer, self.last_index() + 1);
        vec![RaftOutput::Send {
            to: peer,
            msg: RaftMsg::AppendEntries {
                term: self.term,
                prev_index,
                prev_term,
                entries,
                leader_commit: self.commit_index,
            },
        }]
    }

    fn on_append(
        &mut self,
        from: MemberId,
        term: u64,
        prev_index: u64,
        prev_term: u64,
        entries: Vec<LogEntry<T>>,
        leader_commit: u64,
    ) -> Vec<RaftOutput<T>> {
        let mut out = Vec::new();
        out.extend(self.maybe_step_down(term));
        if term < self.term {
            out.push(RaftOutput::Send {
                to: from,
                msg: RaftMsg::AppendResp {
                    term: self.term,
                    success: false,
                    match_index: 0,
                },
            });
            return out;
        }
        // A valid AppendEntries establishes the sender as leader.
        self.role = RaftRole::Follower;
        self.leader_hint = Some(from);

        // Log consistency check.
        let local_prev_term = if prev_index == 0 {
            Some(0)
        } else if prev_index == self.snapshot_index {
            Some(self.snapshot_term)
        } else {
            self.entry(prev_index).map(|e| e.term)
        };
        if local_prev_term != Some(prev_term) {
            // Mismatch: ask the leader to back off to our log end (fast
            // repair hint).
            let hint = self.last_index().min(prev_index.saturating_sub(1));
            out.push(RaftOutput::Send {
                to: from,
                msg: RaftMsg::AppendResp {
                    term: self.term,
                    success: false,
                    match_index: hint,
                },
            });
            return out;
        }
        // Append, truncating any conflicting suffix.
        let mut index = prev_index;
        for e in entries {
            index += 1;
            if index <= self.snapshot_index {
                continue; // already compacted (and therefore applied)
            }
            match self.entry(index) {
                Some(existing) if existing.term == e.term => {} // already have it
                _ => {
                    self.log
                        .truncate((index - self.snapshot_index) as usize - 1);
                    self.log.push(e);
                }
            }
        }
        let match_index = index.max(prev_index);
        if leader_commit > self.commit_index {
            self.commit_index = leader_commit.min(self.last_index());
        }
        out.push(RaftOutput::Send {
            to: from,
            msg: RaftMsg::AppendResp {
                term: self.term,
                success: true,
                match_index,
            },
        });
        out.extend(self.apply_committed());
        out
    }

    fn on_append_resp(
        &mut self,
        from: MemberId,
        term: u64,
        success: bool,
        match_index: u64,
    ) -> Vec<RaftOutput<T>> {
        let mut out = Vec::new();
        out.extend(self.maybe_step_down(term));
        if self.role != RaftRole::Leader || term > self.term {
            return out;
        }
        if success {
            let mi = self.match_index.entry(from).or_insert(0);
            *mi = (*mi).max(match_index);
            self.next_index.insert(
                from,
                (*mi + 1).max(self.next_index.get(&from).copied().unwrap_or(1)),
            );
            out.extend(self.advance_commit());
        } else {
            // Back off and retry from the follower's hint.
            self.next_index.insert(from, match_index + 1);
            out.extend(self.send_append(from));
        }
        out
    }

    /// Leader: advance commit_index to the highest majority-matched index
    /// from the current term (Raft §5.4.2 restriction).
    fn advance_commit(&mut self) -> Vec<RaftOutput<T>> {
        let mut out = Vec::new();
        let mut candidate = self.commit_index;
        for idx in (self.commit_index + 1)..=self.last_index() {
            let replicas = self
                .cfg
                .members
                .iter()
                .filter(|&&m| self.match_index.get(&m).copied().unwrap_or(0) >= idx)
                .count();
            if replicas >= self.cfg.majority() && self.entry(idx).map(|e| e.term) == Some(self.term)
            {
                candidate = idx;
            }
        }
        if candidate > self.commit_index {
            counters().committed.add(candidate - self.commit_index);
            self.commit_index = candidate;
            out.extend(self.apply_committed());
            // Propagate the new commit index right away instead of waiting
            // for the next heartbeat: followers can't apply without it.
            out.extend(self.heartbeat());
        }
        out
    }

    fn apply_committed(&mut self) -> Vec<RaftOutput<T>> {
        let mut out = Vec::new();
        while self.applied_index < self.commit_index {
            self.applied_index += 1;
            let e = self
                .entry(self.applied_index)
                .expect("committed entry exists");
            out.push(RaftOutput::Committed {
                index: self.applied_index,
                term: e.term,
                data: e.data.clone(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Lock-step harness over an in-memory message bus.
    struct Net {
        nodes: BTreeMap<MemberId, RaftNode<u64>>,
        queue: VecDeque<(MemberId, MemberId, RaftMsg<u64>)>,
        committed: BTreeMap<MemberId, Vec<(u64, u64)>>, // (index, data)
        down: std::collections::BTreeSet<MemberId>,
    }

    impl Net {
        fn new(n: u32, initial_leader: Option<MemberId>) -> Self {
            let members: Vec<MemberId> = (0..n).collect();
            let nodes = members
                .iter()
                .map(|&m| {
                    (
                        m,
                        RaftNode::new(RaftConfig {
                            me: m,
                            members: members.clone(),
                            initial_leader,
                        }),
                    )
                })
                .collect();
            Net {
                nodes,
                queue: VecDeque::new(),
                committed: BTreeMap::new(),
                down: Default::default(),
            }
        }

        fn absorb(&mut self, from: MemberId, outs: Vec<RaftOutput<u64>>) {
            for o in outs {
                match o {
                    RaftOutput::Send { to, msg } => self.queue.push_back((from, to, msg)),
                    RaftOutput::Committed { index, data, .. } => {
                        self.committed.entry(from).or_default().push((index, data))
                    }
                    RaftOutput::BecameLeader(_) | RaftOutput::SteppedDown => {}
                }
            }
        }

        fn run(&mut self) {
            let mut budget = 100_000;
            while let Some((from, to, msg)) = self.queue.pop_front() {
                budget -= 1;
                assert!(budget > 0, "raft harness runaway");
                if self.down.contains(&from) || self.down.contains(&to) {
                    continue;
                }
                let outs = self.nodes.get_mut(&to).unwrap().step(from, msg);
                self.absorb(to, outs);
            }
        }

        fn propose(&mut self, at: MemberId, data: u64) -> Option<u64> {
            let (idx, outs) = self.nodes.get_mut(&at).unwrap().propose(data)?;
            self.absorb(at, outs);
            Some(idx)
        }

        fn timeout(&mut self, at: MemberId) {
            let outs = self.nodes.get_mut(&at).unwrap().on_election_timeout();
            self.absorb(at, outs);
        }
    }

    #[test]
    fn initial_leader_bootstrap() {
        let net = Net::new(3, Some(0));
        assert!(net.nodes[&0].is_leader());
        assert_eq!(net.nodes[&1].role(), RaftRole::Follower);
        assert_eq!(net.nodes[&0].term(), 1);
        assert_eq!(net.nodes[&2].leader_hint(), Some(0));
    }

    #[test]
    fn replicate_and_commit() {
        let mut net = Net::new(3, Some(0));
        net.propose(0, 41).unwrap();
        net.propose(0, 42).unwrap();
        net.run();
        for m in 0..3u32 {
            assert_eq!(net.committed[&m], vec![(1, 41), (2, 42)], "member {m}");
            assert_eq!(net.nodes[&m].commit_index(), 2);
        }
    }

    #[test]
    fn follower_cannot_propose() {
        let mut net = Net::new(3, Some(0));
        assert!(net.propose(1, 7).is_none());
    }

    #[test]
    fn commits_with_minority_down() {
        let mut net = Net::new(5, Some(0));
        net.down.insert(3);
        net.down.insert(4);
        net.propose(0, 9).unwrap();
        net.run();
        assert_eq!(net.committed[&0], vec![(1, 9)]);
        assert_eq!(net.committed[&1], vec![(1, 9)]);
    }

    #[test]
    fn no_commit_without_majority() {
        let mut net = Net::new(5, Some(0));
        for m in 1..=3 {
            net.down.insert(m);
        }
        net.propose(0, 9).unwrap();
        net.run();
        assert!(!net.committed.contains_key(&0));
    }

    #[test]
    fn election_after_leader_crash() {
        let mut net = Net::new(3, Some(0));
        net.propose(0, 1).unwrap();
        net.run();
        net.down.insert(0);
        net.timeout(1);
        net.run();
        assert!(net.nodes[&1].is_leader());
        assert_eq!(net.nodes[&1].term(), 2);
        // The new leader can commit new entries.
        net.propose(1, 2).unwrap();
        net.run();
        assert_eq!(net.committed[&2], vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn stale_candidate_with_short_log_loses() {
        let mut net = Net::new(3, Some(0));
        // Commit an entry only on {0, 1}: member 2 is down.
        net.down.insert(2);
        net.propose(0, 10).unwrap();
        net.run();
        net.down.remove(&2);
        net.down.insert(0);
        // Member 2 (empty log) times out; member 1 must refuse the vote.
        net.timeout(2);
        net.run();
        assert!(!net.nodes[&2].is_leader());
        // Member 1 (complete log) then wins.
        net.timeout(1);
        net.run();
        assert!(net.nodes[&1].is_leader());
    }

    #[test]
    fn follower_log_repair_after_rejoin() {
        let mut net = Net::new(3, Some(0));
        net.propose(0, 1).unwrap();
        net.run();
        // Member 2 misses a batch.
        net.down.insert(2);
        net.propose(0, 2).unwrap();
        net.propose(0, 3).unwrap();
        net.run();
        net.down.remove(&2);
        // Heartbeat carries the missing suffix via the backoff path.
        let outs = net.nodes.get_mut(&0).unwrap().on_heartbeat_timeout();
        net.absorb(0, outs);
        net.run();
        assert_eq!(net.committed[&2], vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(net.nodes[&2].last_index(), 3);
    }

    #[test]
    fn divergent_follower_suffix_is_truncated() {
        // Build a follower that appended uncommitted entries from an old
        // leader, then a new leader overwrites them.
        let mut net = Net::new(3, Some(0));
        // Leader 0 proposes to itself only (others down): uncommitted.
        net.down.insert(1);
        net.down.insert(2);
        net.propose(0, 100).unwrap();
        net.propose(0, 101).unwrap();
        net.run();
        assert_eq!(net.nodes[&0].last_index(), 2);
        assert_eq!(net.nodes[&0].commit_index(), 0);
        // 0 crashes; 1 and 2 elect 1; commit different entries.
        net.down.remove(&1);
        net.down.remove(&2);
        net.down.insert(0);
        net.timeout(1);
        net.run();
        net.propose(1, 200).unwrap();
        net.run();
        // 0 rejoins as follower; its divergent suffix must vanish.
        net.down.remove(&0);
        let outs = net.nodes.get_mut(&1).unwrap().on_heartbeat_timeout();
        net.absorb(1, outs);
        net.run();
        assert_eq!(net.nodes[&0].last_index(), 1);
        assert_eq!(net.nodes[&0].entry(1).unwrap().data, 200);
        assert_eq!(net.committed[&0], vec![(1, 200)]);
    }

    #[test]
    fn leadership_transfer_to_recovered_owner() {
        let mut net = Net::new(3, Some(0));
        net.propose(0, 1).unwrap();
        net.run();
        // 0 crashes; 1 takes over.
        net.down.insert(0);
        net.timeout(1);
        net.run();
        net.propose(1, 2).unwrap();
        net.run();
        // 0 recovers; 1 hands leadership back.
        net.down.remove(&0);
        let outs = net.nodes.get_mut(&1).unwrap().on_heartbeat_timeout();
        net.absorb(1, outs);
        net.run();
        let outs = net.nodes.get_mut(&1).unwrap().transfer_leadership(0);
        net.absorb(1, outs);
        net.run();
        assert!(net.nodes[&0].is_leader());
        assert!(!net.nodes[&1].is_leader());
        // And the restored owner can commit.
        net.propose(0, 3).unwrap();
        net.run();
        assert!(net.committed[&2].contains(&(3, 3)));
    }

    #[test]
    fn single_member_instance_commits_instantly() {
        let mut net = Net::new(1, Some(0));
        net.propose(0, 5).unwrap();
        net.run();
        assert_eq!(net.committed[&0], vec![(1, 5)]);
    }

    #[test]
    fn pipelined_proposals_ship_disjoint_suffixes() {
        // After propose() the leader's next_index advances optimistically,
        // so a second propose's AppendEntries must not resend entry 1.
        let mut net = Net::new(3, Some(0));
        net.propose(0, 1).unwrap();
        net.propose(0, 2).unwrap();
        let mut sizes = Vec::new();
        for (_, to, msg) in &net.queue {
            if let RaftMsg::AppendEntries { entries, .. } = msg {
                if *to == 1 {
                    sizes.push(entries.len());
                }
            }
        }
        assert_eq!(sizes, vec![1, 1], "second append must carry only entry 2");
        net.run();
        assert_eq!(net.committed[&1], vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn compaction_drops_applied_prefix_only() {
        let mut net = Net::new(3, Some(0));
        for i in 0..10 {
            net.propose(0, i).unwrap();
        }
        net.run();
        let leader = net.nodes.get_mut(&0).unwrap();
        assert_eq!(leader.last_index(), 10);
        // Compact with a margin of 2: drops indices 1..=8.
        let dropped = leader.compact_to_applied(2);
        assert_eq!(dropped, 8);
        assert_eq!(leader.snapshot_index(), 8);
        assert_eq!(leader.retained_entries(), 2);
        assert_eq!(leader.last_index(), 10);
        assert!(leader.entry(8).is_none());
        assert_eq!(leader.entry(9).unwrap().data, 8);
        // Compacting beyond the applied prefix is a no-op.
        assert_eq!(leader.compact(1000), 0);
    }

    #[test]
    fn replication_continues_after_compaction() {
        let mut net = Net::new(3, Some(0));
        for i in 0..6 {
            net.propose(0, i).unwrap();
        }
        net.run();
        for m in 0..3u32 {
            let n = net.nodes.get_mut(&m).unwrap();
            n.compact_to_applied(1);
            assert!(n.snapshot_index() >= 4, "member {m}");
        }
        // New proposals still replicate and commit everywhere.
        net.propose(0, 100).unwrap();
        net.run();
        for m in 0..3u32 {
            assert!(net.committed[&m].contains(&(7, 100)), "member {m}");
        }
    }

    #[test]
    fn election_works_across_compaction_boundary() {
        let mut net = Net::new(3, Some(0));
        for i in 0..5 {
            net.propose(0, i).unwrap();
        }
        net.run();
        for m in 0..3u32 {
            net.nodes.get_mut(&m).unwrap().compact_to_applied(0);
        }
        net.down.insert(0);
        net.timeout(1);
        net.run();
        assert!(net.nodes[&1].is_leader());
        net.propose(1, 200).unwrap();
        net.run();
        assert!(net.committed[&2].contains(&(6, 200)));
    }

    #[test]
    fn old_term_append_rejected() {
        let mut net = Net::new(3, Some(0));
        // Move member 1 to term 3 via an election.
        net.down.insert(0);
        net.down.insert(2);
        net.timeout(1); // term 2, loses
        net.timeout(1); // term 3, loses
        net.queue.clear();
        net.down.remove(&0);
        net.down.remove(&2);
        // Old leader 0 (term 1) heartbeats; 1 must reject and 0 step down.
        let outs = net.nodes.get_mut(&0).unwrap().on_heartbeat_timeout();
        net.absorb(0, outs);
        net.run();
        assert!(!net.nodes[&0].is_leader());
        assert_eq!(net.nodes[&0].term(), 3);
    }
}

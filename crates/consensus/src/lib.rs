//! Sans-io consensus state machines for MassBFT.
//!
//! Two protocols, matching the paper's hierarchical architecture (Table I):
//!
//! - [`pbft`] — Practical Byzantine Fault Tolerance for **local** consensus
//!   inside a group/data center (`n ≥ 3f + 1`). Produces the quorum
//!   certificate that protects entries during global replication. Includes
//!   the *skip-prepare* variant used for global `accept` decisions, where
//!   the consensus input is already certified by the sender group
//!   (paper §II-A, citing Ziziphus).
//! - [`raft`] — Raft for **global** replication across groups
//!   (`n_g ≥ 2f_g + 1`), with each group acting as one logical replica.
//!   MassBFT runs `n_g` instances in parallel, one led by each group
//!   (paper §V-A).
//!
//! Both are *sans-io*: they never touch the network or a clock. Inputs are
//! `step`/timeout calls; outputs are value-typed actions the driver (the
//! simulator in this repo, a TCP shim in a real deployment) must perform.
//! This is what makes the protocol cores unit-testable and lets the paper's
//! fault scenarios be scripted deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pbft;
pub mod raft;

pub use pbft::{PbftConfig, PbftMsg, PbftOutput, PbftReplica};
pub use raft::{RaftConfig, RaftMsg, RaftNode, RaftOutput, RaftRole};

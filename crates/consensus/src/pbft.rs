//! Practical Byzantine Fault Tolerance (PBFT), sans-io.
//!
//! The classic three-phase protocol (Castro & Liskov, OSDI'99) as used for
//! local consensus in MassBFT groups:
//!
//! 1. **pre-prepare** — the primary assigns a sequence number to a payload
//!    and broadcasts it;
//! 2. **prepare** — replicas echo a signed vote binding `(view, seq,
//!    digest)`; `2f+1` matching prepares make the request *prepared*;
//! 3. **commit** — replicas broadcast a signed commit over the payload
//!    digest; `2f+1` matching commits make it *committed*. The collected
//!    commit signatures form the entry's [`QuorumCert`], which MassBFT
//!    ships across groups as tamper protection (paper §II-A).
//!
//! The **skip-prepare** mode drops phase 2: it is used for the global
//! `accept` decision where "nodes in G2 do not need to agree on the
//! consensus input, as it has already been certified by nodes in G1"
//! (paper §II-A, following Ziziphus).
//!
//! View changes follow the standard shape (timeout → `VIEW-CHANGE` →
//! `2f+1` quorum → `NEW-VIEW` re-proposing prepared requests), simplified
//! by re-proposing committed-but-unexecuted and prepared requests wholesale;
//! checkpointing garbage-collects executed instances.

use bytes::Bytes;
use massbft_crypto::{
    cert::{max_faulty, quorum},
    keys::NodeId,
    Digest, KeyRegistry, NodeKey, QuorumCert, Signature,
};
use massbft_telemetry::registry::{counter, Counter};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

/// Process-wide PBFT counters in the telemetry registry. The sans-io
/// replica has no clock, so timing lives with the driver (protocol.rs
/// spans); what belongs here is protocol-activity accounting.
struct PbftCounters {
    proposals: Counter,
    committed: Counter,
    view_changes: Counter,
}

fn counters() -> &'static PbftCounters {
    static C: OnceLock<PbftCounters> = OnceLock::new();
    C.get_or_init(|| PbftCounters {
        proposals: counter("consensus.pbft.proposals"),
        committed: counter("consensus.pbft.committed"),
        view_changes: counter("consensus.pbft.view_changes"),
    })
}

/// Static configuration of one PBFT replica.
#[derive(Debug, Clone)]
pub struct PbftConfig {
    /// The group this replica belongs to.
    pub group: u32,
    /// Number of replicas in the group (`n ≥ 3f + 1`).
    pub n: usize,
    /// This replica's index within the group, `0..n`.
    pub node: u32,
    /// Skip the prepare phase (global-accept mode).
    pub skip_prepare: bool,
    /// Execute-window checkpointing period: every `checkpoint_interval`
    /// executed instances, retired state below the low-water mark is
    /// dropped. Zero disables GC.
    pub checkpoint_interval: u64,
}

impl PbftConfig {
    /// Maximum faulty replicas tolerated.
    pub fn f(&self) -> usize {
        max_faulty(self.n)
    }

    /// Quorum size `2f + 1`.
    pub fn quorum(&self) -> usize {
        quorum(self.n)
    }

    /// The primary replica of a view (round-robin).
    pub fn primary_of(&self, view: u64) -> u32 {
        (view % self.n as u64) as u32
    }
}

/// Messages exchanged between replicas of one group.
#[derive(Debug, Clone)]
pub enum PbftMsg {
    /// Phase 1: primary assigns `seq` to `payload` in `view`.
    PrePrepare {
        /// Active view.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// The proposed payload (an encoded log entry). `Bytes`-backed so
        /// relaying and buffering share one allocation.
        payload: Bytes,
        /// SHA-256 digest of the payload.
        digest: Digest,
    },
    /// Phase 2: signed echo of `(view, seq, digest)`.
    Prepare {
        /// Active view.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Digest being prepared.
        digest: Digest,
        /// Signature over the vote tuple.
        sig: Signature,
    },
    /// Phase 3: signed commit. The signature covers the *payload digest*
    /// alone so that `2f+1` of them assemble into a portable entry
    /// certificate.
    Commit {
        /// Active view.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Digest being committed.
        digest: Digest,
        /// Signature over `digest`.
        sig: Signature,
    },
    /// View-change vote: the sender wants to move to `new_view`.
    ViewChange {
        /// Proposed view.
        new_view: u64,
        /// Highest sequence the sender has executed.
        last_exec: u64,
        /// Requests the sender saw prepared: `(seq, digest, payload)`.
        prepared: Vec<(u64, Digest, Bytes)>,
        /// Signature over the view-change claim.
        sig: Signature,
    },
    /// New primary's announcement re-proposing surviving requests.
    NewView {
        /// The view being entered.
        view: u64,
        /// Requests to re-run: `(seq, payload)`.
        reproposals: Vec<(u64, Bytes)>,
    },
    /// Primary liveness beacon. An idle-but-alive primary broadcasts
    /// these so followers can distinguish "nothing to propose" from
    /// "primary dead" without speculative view changes. Replica state is
    /// untouched; the view-change *driver* interprets them.
    Heartbeat {
        /// The sender's active view.
        view: u64,
    },
}

/// Actions a PBFT replica asks its driver to perform.
#[derive(Debug)]
pub enum PbftOutput {
    /// Send `msg` to replica `to` of the same group.
    Send {
        /// Destination replica index.
        to: u32,
        /// The message.
        msg: PbftMsg,
    },
    /// Send `msg` to every other replica of the group.
    Broadcast(PbftMsg),
    /// An instance committed, in sequence order. `cert` carries `2f+1`
    /// commit signatures over the payload digest.
    Committed {
        /// Sequence number (contiguous, starting at 1).
        seq: u64,
        /// The agreed payload.
        payload: Bytes,
        /// Portable quorum certificate over the payload digest.
        cert: QuorumCert,
    },
    /// The replica entered a new view (after a view change). The driver
    /// should reset its view timer.
    EnteredView(u64),
    /// The replica wants a view-change timer armed (it has pending
    /// instances); the driver calls [`PbftReplica::on_view_timeout`] if the
    /// timer fires before progress.
    ArmViewTimer,
}

/// Per-instance bookkeeping.
#[derive(Debug, Default)]
struct Instance {
    payload: Option<Bytes>,
    digest: Option<Digest>,
    pre_prepared_view: Option<u64>,
    prepares: BTreeMap<u32, Signature>,
    commits: BTreeMap<u32, Signature>,
    sent_prepare: bool,
    sent_commit: bool,
    committed: bool,
}

/// View-change votes: proposed view → voter → prepared-proof triples
/// `(seq, digest, pre-prepare bytes)`.
type ViewChangeVotes = BTreeMap<u64, BTreeMap<u32, Vec<(u64, Digest, Bytes)>>>;

/// A PBFT replica state machine.
pub struct PbftReplica {
    cfg: PbftConfig,
    key: NodeKey,
    registry: KeyRegistry,
    view: u64,
    /// Next sequence number this primary will assign.
    next_seq: u64,
    /// Lowest not-yet-executed sequence.
    exec_seq: u64,
    instances: BTreeMap<u64, Instance>,
    /// View-change votes per proposed view.
    view_changes: ViewChangeVotes,
    /// Set while a view change is in progress (stops normal processing).
    in_view_change: bool,
    /// Highest view this replica has ever campaigned for. Repeated
    /// timeouts escalate past it, so a dead successor primary cannot
    /// wedge the group in a failed view change.
    top_view: u64,
}

impl PbftReplica {
    /// Creates a replica. `registry` must contain keys for the whole group.
    ///
    /// # Panics
    /// Panics if the registry lacks this replica's key.
    pub fn new(cfg: PbftConfig, registry: KeyRegistry) -> Self {
        let key = registry
            .key_of(NodeId::new(cfg.group, cfg.node))
            .expect("replica key registered");
        PbftReplica {
            cfg,
            key,
            registry,
            view: 0,
            next_seq: 1,
            exec_seq: 1,
            instances: BTreeMap::new(),
            view_changes: BTreeMap::new(),
            in_view_change: false,
            top_view: 0,
        }
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Whether this replica is the primary of the current view.
    pub fn is_primary(&self) -> bool {
        self.cfg.primary_of(self.view) == self.cfg.node
    }

    /// The primary of the current view.
    pub fn primary(&self) -> u32 {
        self.cfg.primary_of(self.view)
    }

    /// Number of instances committed but possibly not yet garbage-collected.
    pub fn committed_count(&self) -> u64 {
        self.exec_seq - 1
    }

    /// Whether a view change is currently in progress.
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// Whether any instance at or past the execution frontier is still
    /// uncommitted — i.e. there is consensus work in flight that a live
    /// primary should be driving to completion.
    pub fn has_pending(&self) -> bool {
        self.instances
            .iter()
            .any(|(&s, inst)| s >= self.exec_seq && !inst.committed)
    }

    /// Primary API: produce a liveness heartbeat to broadcast, or `None`
    /// if this replica is not the active primary (or is mid-view-change).
    pub fn heartbeat(&self) -> Option<PbftMsg> {
        if self.is_primary() && !self.in_view_change {
            Some(PbftMsg::Heartbeat { view: self.view })
        } else {
            None
        }
    }

    /// Primary API: propose a payload. Returns the outputs to perform.
    /// Non-primaries get an empty vec (the driver should forward the
    /// request to the primary instead).
    pub fn propose(&mut self, payload: impl Into<Bytes>) -> Vec<PbftOutput> {
        if !self.is_primary() || self.in_view_change {
            return Vec::new();
        }
        counters().proposals.inc();
        let payload = payload.into();
        let seq = self.next_seq;
        self.next_seq += 1;
        let digest = Digest::of(&payload);
        let pre = PbftMsg::PrePrepare {
            view: self.view,
            seq,
            payload: payload.clone(),
            digest,
        };
        let mut out = vec![PbftOutput::Broadcast(pre.clone()), PbftOutput::ArmViewTimer];
        // Process our own pre-prepare locally.
        out.extend(self.on_message(self.cfg.node, pre));
        out
    }

    /// Handles a message from replica `from` of the same group.
    pub fn on_message(&mut self, from: u32, msg: PbftMsg) -> Vec<PbftOutput> {
        match msg {
            PbftMsg::PrePrepare {
                view,
                seq,
                payload,
                digest,
            } => self.on_pre_prepare(from, view, seq, payload, digest),
            PbftMsg::Prepare {
                view,
                seq,
                digest,
                sig,
            } => self.on_prepare(from, view, seq, digest, sig),
            PbftMsg::Commit {
                view,
                seq,
                digest,
                sig,
            } => self.on_commit(from, view, seq, digest, sig),
            PbftMsg::ViewChange {
                new_view,
                last_exec,
                prepared,
                sig,
            } => self.on_view_change(from, new_view, last_exec, prepared, sig),
            PbftMsg::NewView { view, reproposals } => self.on_new_view(from, view, reproposals),
            // Heartbeats carry no state; the driver interprets them.
            PbftMsg::Heartbeat { .. } => Vec::new(),
        }
    }

    /// The driver's view timer fired without progress: start a view change
    /// (paper: replaces a faulty primary; also triggered by remote view
    /// change requests from other groups in GeoBFT-style protocols).
    /// Repeated timeouts escalate past every view already campaigned for,
    /// so a crashed successor primary is skipped on the next round.
    pub fn on_view_timeout(&mut self) -> Vec<PbftOutput> {
        let next = self.view.max(self.top_view) + 1;
        self.start_view_change(next)
    }

    fn start_view_change(&mut self, new_view: u64) -> Vec<PbftOutput> {
        if new_view <= self.view {
            return Vec::new();
        }
        self.top_view = self.top_view.max(new_view);
        self.in_view_change = true;
        counters().view_changes.inc();
        let prepared = self.prepared_requests();
        let claim = view_change_digest(self.cfg.group, new_view, self.exec_seq - 1);
        let sig = self.key.sign_digest(&claim);
        let msg = PbftMsg::ViewChange {
            new_view,
            last_exec: self.exec_seq - 1,
            prepared: prepared.clone(),
            sig,
        };
        let mut out = vec![PbftOutput::Broadcast(msg.clone())];
        out.extend(self.on_message(self.cfg.node, msg));
        out
    }

    fn prepared_requests(&self) -> Vec<(u64, Digest, Bytes)> {
        self.instances
            .iter()
            .filter(|(_, inst)| {
                !inst.committed
                    && inst.payload.is_some()
                    && (inst.prepares.len() >= self.cfg.quorum()
                        || inst.pre_prepared_view.is_some())
            })
            .map(|(&seq, inst)| {
                (
                    seq,
                    inst.digest.expect("payload implies digest"),
                    inst.payload.clone().expect("filtered"),
                )
            })
            .collect()
    }

    fn on_pre_prepare(
        &mut self,
        from: u32,
        view: u64,
        seq: u64,
        payload: Bytes,
        digest: Digest,
    ) -> Vec<PbftOutput> {
        if self.in_view_change || view != self.view {
            return Vec::new();
        }
        if from != self.cfg.primary_of(view) {
            return Vec::new(); // only the primary may pre-prepare
        }
        if Digest::of(&payload) != digest {
            return Vec::new(); // malformed proposal
        }
        if seq < self.exec_seq {
            return Vec::new(); // already executed
        }
        let inst = self.instances.entry(seq).or_default();
        if let Some(existing) = inst.digest {
            if existing != digest {
                // Equivocating primary: ignore; the view timer will fire.
                return Vec::new();
            }
        }
        inst.payload = Some(payload);
        inst.digest = Some(digest);
        inst.pre_prepared_view = Some(view);

        let mut out = Vec::new();
        // A commit quorum may already be buffered (out-of-order delivery);
        // the payload's arrival is what unblocks execution.
        let inst = self.instances.get_mut(&seq).expect("just inserted");
        if inst.commits.len() >= self.cfg.quorum() && !inst.committed {
            inst.committed = true;
            out.extend(self.drain_executable());
        }
        if self.cfg.skip_prepare {
            out.extend(self.maybe_send_commit(seq, view, digest));
        } else {
            let inst = self.instances.get_mut(&seq).expect("just inserted");
            if !inst.sent_prepare {
                inst.sent_prepare = true;
                let vote = prepare_digest(self.cfg.group, view, seq, &digest);
                let sig = self.key.sign_digest(&vote);
                let msg = PbftMsg::Prepare {
                    view,
                    seq,
                    digest,
                    sig,
                };
                out.push(PbftOutput::Broadcast(msg.clone()));
                out.extend(self.on_message(self.cfg.node, msg));
            }
        }
        out
    }

    fn on_prepare(
        &mut self,
        from: u32,
        view: u64,
        seq: u64,
        digest: Digest,
        sig: Signature,
    ) -> Vec<PbftOutput> {
        if self.in_view_change || view != self.view || seq < self.exec_seq {
            return Vec::new();
        }
        let vote = prepare_digest(self.cfg.group, view, seq, &digest);
        if sig.signer != NodeId::new(self.cfg.group, from)
            || !self.registry.verify_digest(&vote, &sig)
        {
            return Vec::new();
        }
        let inst = self.instances.entry(seq).or_default();
        if inst.digest.is_some() && inst.digest != Some(digest) {
            return Vec::new();
        }
        inst.prepares.insert(from, sig);
        if inst.prepares.len() >= self.cfg.quorum() {
            return self.maybe_send_commit(seq, view, digest);
        }
        Vec::new()
    }

    fn maybe_send_commit(&mut self, seq: u64, view: u64, digest: Digest) -> Vec<PbftOutput> {
        let inst = self.instances.entry(seq).or_default();
        if inst.sent_commit {
            return Vec::new();
        }
        inst.sent_commit = true;
        let sig = self.key.sign_digest(&digest);
        let msg = PbftMsg::Commit {
            view,
            seq,
            digest,
            sig,
        };
        let mut out = vec![PbftOutput::Broadcast(msg.clone())];
        out.extend(self.on_message(self.cfg.node, msg));
        out
    }

    fn on_commit(
        &mut self,
        from: u32,
        view: u64,
        seq: u64,
        digest: Digest,
        sig: Signature,
    ) -> Vec<PbftOutput> {
        if self.in_view_change || view != self.view || seq < self.exec_seq {
            return Vec::new();
        }
        if sig.signer != NodeId::new(self.cfg.group, from)
            || !self.registry.verify_digest(&digest, &sig)
        {
            return Vec::new();
        }
        let quorum = self.cfg.quorum();
        let inst = self.instances.entry(seq).or_default();
        if inst.digest.is_some() && inst.digest != Some(digest) {
            return Vec::new();
        }
        if inst.digest.is_none() {
            // Commit arrived before the pre-prepare; remember the digest so
            // the certificate stays consistent.
            inst.digest = Some(digest);
        }
        inst.commits.insert(from, sig);
        if inst.commits.len() >= quorum && !inst.committed && inst.payload.is_some() {
            inst.committed = true;
        }
        self.drain_executable()
    }

    /// Emits `Committed` outputs for every contiguously committed instance
    /// starting at `exec_seq`, and garbage-collects behind checkpoints.
    fn drain_executable(&mut self) -> Vec<PbftOutput> {
        let mut out = Vec::new();
        while let Some(inst) = self.instances.get_mut(&self.exec_seq) {
            if !inst.committed {
                break;
            }
            let seq = self.exec_seq;
            let payload = inst.payload.take().expect("committed implies payload");
            let digest = inst.digest.expect("committed implies digest");
            let signatures: Vec<Signature> = inst.commits.values().copied().collect();
            let cert = QuorumCert {
                digest,
                group: self.cfg.group,
                signatures,
            };
            out.push(PbftOutput::Committed { seq, payload, cert });
            counters().committed.inc();
            self.exec_seq += 1;
        }
        // Checkpoint GC: drop retired instances.
        if self.cfg.checkpoint_interval > 0 {
            let low_water = self.exec_seq.saturating_sub(self.cfg.checkpoint_interval);
            self.instances.retain(|&s, _| s >= low_water);
        }
        out
    }

    fn on_view_change(
        &mut self,
        from: u32,
        new_view: u64,
        last_exec: u64,
        prepared: Vec<(u64, Digest, Bytes)>,
        sig: Signature,
    ) -> Vec<PbftOutput> {
        if new_view <= self.view {
            return Vec::new();
        }
        let claim = view_change_digest(self.cfg.group, new_view, last_exec);
        if sig.signer != NodeId::new(self.cfg.group, from)
            || !self.registry.verify_digest(&claim, &sig)
        {
            return Vec::new();
        }
        let votes = self.view_changes.entry(new_view).or_default();
        votes.insert(from, prepared);

        let mut out = Vec::new();
        // Join the view change once f+1 replicas demand it (we might have
        // missed the fault ourselves).
        if votes.len() > self.cfg.f() && !self.in_view_change {
            out.extend(self.start_view_change(new_view));
        }
        let votes = self.view_changes.entry(new_view).or_default();
        if votes.len() >= self.cfg.quorum()
            && self.cfg.primary_of(new_view) == self.cfg.node
            && new_view > self.view
        {
            // We are the new primary: gather the union of prepared requests
            // and re-propose them.
            let mut reproposals: BTreeMap<u64, Bytes> = BTreeMap::new();
            for prep in votes.values() {
                for (seq, _digest, payload) in prep {
                    reproposals.entry(*seq).or_insert_with(|| payload.clone());
                }
            }
            let nv = PbftMsg::NewView {
                view: new_view,
                reproposals: reproposals.into_iter().collect(),
            };
            out.push(PbftOutput::Broadcast(nv.clone()));
            out.extend(self.on_message(self.cfg.node, nv));
        }
        out
    }

    fn on_new_view(
        &mut self,
        from: u32,
        view: u64,
        reproposals: Vec<(u64, Bytes)>,
    ) -> Vec<PbftOutput> {
        if view < self.view || from != self.cfg.primary_of(view) {
            return Vec::new();
        }
        self.view = view;
        self.in_view_change = false;
        self.view_changes.retain(|&v, _| v > view);
        // The re-proposal set is authoritative for every sequence at or
        // past the execution frontier: an uncommitted instance missing
        // from it was prepared by no quorum (any quorum of view-change
        // votes intersects any prepare quorum), so it is void — e.g. a
        // silenced primary's proposals that never left its own node.
        // Dropping them keeps stale digests from vetoing the new
        // primary's fresh proposals at the same sequence numbers.
        let reproposed: BTreeSet<u64> = reproposals.iter().map(|(s, _)| *s).collect();
        let exec_seq = self.exec_seq;
        self.instances
            .retain(|&s, inst| s < exec_seq || inst.committed || reproposed.contains(&s));
        // Clear votes from older views on live instances; keep payloads.
        for inst in self.instances.values_mut() {
            if !inst.committed {
                inst.prepares.clear();
                inst.commits.clear();
                inst.sent_prepare = false;
                inst.sent_commit = false;
                inst.pre_prepared_view = None;
            }
        }
        // Adopt the new-view's canonical choice for every re-proposed
        // sequence: a conflicting uncommitted pre-prepare from an earlier
        // view (e.g. one branch of an equivocating primary) must not veto
        // the re-proposal. Nothing conflicting can have committed anywhere
        // — a commit implies a prepare quorum, which would have put that
        // branch into the view-change union.
        for (seq, payload) in &reproposals {
            if *seq < self.exec_seq {
                continue;
            }
            let digest = Digest::of(payload);
            let inst = self.instances.entry(*seq).or_default();
            if !inst.committed && inst.digest.is_some() && inst.digest != Some(digest) {
                *inst = Instance {
                    payload: Some(payload.clone()),
                    digest: Some(digest),
                    ..Instance::default()
                };
            }
        }
        let mut out = vec![PbftOutput::EnteredView(view)];
        if self.cfg.primary_of(view) == self.cfg.node {
            // Sequencing must continue past everything this replica has
            // executed or seen: a backup that was never primary still has
            // next_seq = 1, and reusing low sequence numbers would make its
            // proposals silently dropped as already executed.
            let mut max_seq = self.next_seq.max(self.exec_seq);
            if let Some((&hi, _)) = self.instances.iter().next_back() {
                max_seq = max_seq.max(hi + 1);
            }
            if let Some((hi, _)) = reproposals.last() {
                max_seq = max_seq.max(hi + 1);
            }
            self.next_seq = max_seq;
        }
        // The NewView itself carries the re-proposals, so treat them as
        // this view's pre-prepares directly — at the primary AND at every
        // backup. Re-broadcasting them separately would race the NewView
        // on the wire (the NewView is much larger, so its transmission
        // delay lets the small PrePrepares overtake it), and a pre-prepare
        // that arrives while the receiver is still in the old view is
        // dropped for good.
        for (seq, payload) in reproposals {
            if seq < self.exec_seq {
                continue;
            }
            let digest = Digest::of(&payload);
            out.extend(self.on_pre_prepare(from, view, seq, payload, digest));
        }
        out
    }
}

/// Domain-separated digest for prepare votes.
fn prepare_digest(group: u32, view: u64, seq: u64, digest: &Digest) -> Digest {
    Digest::of_parts(&[
        b"pbft-prepare",
        &group.to_le_bytes(),
        &view.to_le_bytes(),
        &seq.to_le_bytes(),
        &digest.0,
    ])
}

/// Domain-separated digest for view-change claims.
fn view_change_digest(group: u32, new_view: u64, last_exec: u64) -> Digest {
    Digest::of_parts(&[
        b"pbft-viewchange",
        &group.to_le_bytes(),
        &new_view.to_le_bytes(),
        &last_exec.to_le_bytes(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Synchronous lock-step test harness: delivers every Send/Broadcast
    /// until quiescence, collecting Committed outputs per replica.
    struct Harness {
        replicas: Vec<PbftReplica>,
        committed: Vec<Vec<(u64, Bytes, QuorumCert)>>,
        /// Replica indices that silently drop all traffic (crash faults).
        mute: BTreeSet<u32>,
        queue: std::collections::VecDeque<(u32, u32, PbftMsg)>,
    }

    impl Harness {
        fn new(n: usize, skip_prepare: bool) -> Self {
            let registry = KeyRegistry::generate(99, &[n]);
            let replicas = (0..n)
                .map(|i| {
                    PbftReplica::new(
                        PbftConfig {
                            group: 0,
                            n,
                            node: i as u32,
                            skip_prepare,
                            checkpoint_interval: 16,
                        },
                        registry.clone(),
                    )
                })
                .collect();
            Harness {
                replicas,
                committed: vec![Vec::new(); n],
                mute: BTreeSet::new(),
                queue: Default::default(),
            }
        }

        fn n(&self) -> usize {
            self.replicas.len()
        }

        fn absorb(&mut self, from: u32, outputs: Vec<PbftOutput>) {
            for o in outputs {
                match o {
                    PbftOutput::Send { to, msg } => self.queue.push_back((from, to, msg)),
                    PbftOutput::Broadcast(msg) => {
                        for to in 0..self.n() as u32 {
                            if to != from {
                                self.queue.push_back((from, to, msg.clone()));
                            }
                        }
                    }
                    PbftOutput::Committed { seq, payload, cert } => {
                        self.committed[from as usize].push((seq, payload, cert))
                    }
                    PbftOutput::EnteredView(_) | PbftOutput::ArmViewTimer => {}
                }
            }
        }

        fn run(&mut self) {
            let mut budget = 1_000_000u64;
            while let Some((from, to, msg)) = self.queue.pop_front() {
                budget -= 1;
                assert!(budget > 0, "pbft harness runaway");
                if self.mute.contains(&from) || self.mute.contains(&to) {
                    continue;
                }
                let outs = self.replicas[to as usize].on_message(from, msg);
                self.absorb(to, outs);
            }
        }

        fn propose(&mut self, node: u32, payload: &[u8]) {
            let outs = self.replicas[node as usize].propose(payload.to_vec());
            self.absorb(node, outs);
        }
    }

    #[test]
    fn happy_path_commits_on_all_replicas() {
        let mut h = Harness::new(4, false);
        h.propose(0, b"entry-1");
        h.run();
        for (i, c) in h.committed.iter().enumerate() {
            assert_eq!(c.len(), 1, "replica {i}");
            assert_eq!(c[0].0, 1);
            assert_eq!(c[0].1, b"entry-1");
        }
    }

    #[test]
    fn certificates_validate_portably() {
        let mut h = Harness::new(7, false);
        h.propose(0, b"certified entry");
        h.run();
        let registry = KeyRegistry::generate(99, &[7]);
        for c in &h.committed {
            let (_, payload, cert) = &c[0];
            assert_eq!(cert.digest, Digest::of(payload));
            cert.validate_for(&Digest::of(payload), &registry).unwrap();
            assert!(cert.signatures.len() >= 5);
        }
    }

    #[test]
    fn multiple_instances_execute_in_order() {
        let mut h = Harness::new(4, false);
        for i in 0..5u8 {
            h.propose(0, &[i]);
        }
        h.run();
        for c in &h.committed {
            let seqs: Vec<u64> = c.iter().map(|(s, _, _)| *s).collect();
            assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
            let payloads: Vec<u8> = c.iter().map(|(_, p, _)| p[0]).collect();
            assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn tolerates_f_crashed_followers() {
        let mut h = Harness::new(7, false);
        h.mute.insert(5);
        h.mute.insert(6);
        h.propose(0, b"with 2 crashed");
        h.run();
        for i in 0..5 {
            assert_eq!(h.committed[i].len(), 1, "replica {i}");
        }
        assert!(h.committed[5].is_empty());
    }

    #[test]
    fn does_not_commit_without_quorum() {
        let mut h = Harness::new(7, false);
        // f+1 = 3 crashed: only 4 replicas remain < quorum 5.
        h.mute.insert(4);
        h.mute.insert(5);
        h.mute.insert(6);
        h.propose(0, b"cannot commit");
        h.run();
        for c in &h.committed {
            assert!(c.is_empty());
        }
    }

    #[test]
    fn skip_prepare_commits_in_two_phases() {
        let mut h = Harness::new(4, true);
        h.propose(0, b"accept decision");
        h.run();
        for c in &h.committed {
            assert_eq!(c.len(), 1);
        }
        // No Prepare message may ever appear in skip-prepare mode; verify
        // via a fresh run capturing message kinds.
        let mut h = Harness::new(4, true);
        h.propose(0, b"x");
        let mut saw_prepare = false;
        while let Some((from, to, msg)) = h.queue.pop_front() {
            if matches!(msg, PbftMsg::Prepare { .. }) {
                saw_prepare = true;
            }
            let outs = h.replicas[to as usize].on_message(from, msg);
            h.absorb(to, outs);
        }
        assert!(!saw_prepare);
    }

    #[test]
    fn non_primary_cannot_propose() {
        let mut h = Harness::new(4, false);
        h.propose(2, b"rogue");
        h.run();
        for c in &h.committed {
            assert!(c.is_empty());
        }
    }

    #[test]
    fn forged_pre_prepare_from_follower_ignored() {
        let mut h = Harness::new(4, false);
        let digest = Digest::of(b"evil");
        let outs = h.replicas[1].on_message(
            2, // claims to be replica 2, but 0 is the view-0 primary
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                payload: b"evil".to_vec().into(),
                digest,
            },
        );
        h.absorb(1, outs);
        h.run();
        assert!(h.committed.iter().all(|c| c.is_empty()));
    }

    #[test]
    fn mismatched_digest_rejected() {
        let mut h = Harness::new(4, false);
        let outs = h.replicas[1].on_message(
            0,
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                payload: b"payload".to_vec().into(),
                digest: Digest::of(b"different"),
            },
        );
        h.absorb(1, outs);
        h.run();
        assert!(h.committed.iter().all(|c| c.is_empty()));
    }

    #[test]
    fn forged_commit_signature_not_counted() {
        let mut h = Harness::new(4, false);
        let digest = Digest::of(b"target");
        // Replica 3 fabricates commits pretending to be replicas 0..2 with
        // garbage signatures.
        for claimed in 0..3u32 {
            let fake = Signature {
                signer: NodeId::new(0, claimed),
                tag: [0u8; 32],
            };
            let outs = h.replicas[1].on_message(
                claimed,
                PbftMsg::Commit {
                    view: 0,
                    seq: 1,
                    digest,
                    sig: fake,
                },
            );
            h.absorb(1, outs);
        }
        h.run();
        assert!(h.committed[1].is_empty());
    }

    #[test]
    fn view_change_elects_next_primary_and_recommits() {
        let mut h = Harness::new(4, false);
        // Primary 0 goes mute before proposing anything; replicas time out.
        h.mute.insert(0);
        for r in 1..4u32 {
            let outs = h.replicas[r as usize].on_view_timeout();
            h.absorb(r, outs);
        }
        h.run();
        for r in 1..4usize {
            assert_eq!(h.replicas[r].view(), 1, "replica {r}");
            assert!(!h.replicas[r].in_view_change);
        }
        assert_eq!(h.replicas[1].primary(), 1);
        // The new primary can now commit entries.
        h.propose(1, b"post-viewchange");
        h.run();
        for r in 1..4usize {
            assert_eq!(h.committed[r].len(), 1);
        }
    }

    #[test]
    fn new_primary_continues_sequencing_past_committed_entries() {
        // Commit entries under primary 0, then view-change with nothing
        // prepared in flight. The new primary's own next_seq is still 1
        // (it never proposed); it must continue past the execution
        // frontier or its proposals are dropped as already executed.
        let mut h = Harness::new(4, false);
        for i in 0..3u8 {
            h.propose(0, &[i]);
        }
        h.run();
        assert!(h.committed.iter().all(|c| c.len() == 3));
        h.mute.insert(0);
        for r in 1..4u32 {
            let outs = h.replicas[r as usize].on_view_timeout();
            h.absorb(r, outs);
        }
        h.run();
        assert_eq!(h.replicas[1].view(), 1);
        h.propose(1, b"post-viewchange-fresh");
        h.run();
        for r in 1..4usize {
            assert_eq!(h.committed[r].len(), 4, "replica {r}");
            assert_eq!(h.committed[r][3].0, 4, "fresh entry gets seq 4");
            assert_eq!(h.committed[r][3].1, b"post-viewchange-fresh");
        }
    }

    #[test]
    fn view_change_preserves_prepared_request() {
        let mut h = Harness::new(4, false);
        // Propose and let it fully prepare everywhere, but drop all commit
        // messages so nothing executes, then view-change.
        let outs = h.replicas[0].propose(b"survivor".to_vec());
        h.absorb(0, outs);
        // Deliver only PrePrepare and Prepare messages.
        let mut commits = Vec::new();
        while let Some((from, to, msg)) = h.queue.pop_front() {
            if matches!(msg, PbftMsg::Commit { .. }) {
                commits.push((from, to, msg));
                continue;
            }
            let outs = h.replicas[to as usize].on_message(from, msg);
            h.absorb(to, outs);
        }
        drop(commits);
        assert!(h.committed.iter().all(|c| c.is_empty()));
        // Now time out into view 1 (all four replicas participate).
        for r in 0..4u32 {
            let outs = h.replicas[r as usize].on_view_timeout();
            h.absorb(r, outs);
        }
        h.run();
        // The prepared request must have been re-proposed and committed.
        for (r, c) in h.committed.iter().enumerate() {
            assert_eq!(c.len(), 1, "replica {r}");
            assert_eq!(c[0].1, b"survivor");
        }
    }

    #[test]
    fn heartbeat_only_from_active_primary() {
        let h = Harness::new(4, false);
        assert!(matches!(
            h.replicas[0].heartbeat(),
            Some(PbftMsg::Heartbeat { view: 0 })
        ));
        for r in 1..4usize {
            assert!(h.replicas[r].heartbeat().is_none(), "replica {r}");
        }
    }

    #[test]
    fn repeated_timeouts_escalate_past_dead_successor() {
        let mut h = Harness::new(4, false);
        // Primary 0 proposes nothing; successor primary 1 is also dead.
        h.mute.insert(1);
        for r in [0u32, 2, 3] {
            let outs = h.replicas[r as usize].on_view_timeout();
            h.absorb(r, outs);
        }
        h.run();
        // View 1's primary never answers: everyone is wedged mid-change.
        for r in [0usize, 2, 3] {
            assert_eq!(h.replicas[r].view(), 0, "replica {r}");
            assert!(h.replicas[r].in_view_change);
        }
        // The next timeout must skip view 1 and campaign for view 2.
        for r in [0u32, 2, 3] {
            let outs = h.replicas[r as usize].on_view_timeout();
            h.absorb(r, outs);
        }
        h.run();
        for r in [0usize, 2, 3] {
            assert_eq!(h.replicas[r].view(), 2, "replica {r}");
            assert!(!h.replicas[r].in_view_change);
        }
        // Replica 2 is the view-2 primary and can commit entries.
        h.propose(2, b"post-escalation");
        h.run();
        for r in [0usize, 2, 3] {
            assert_eq!(h.committed[r].len(), 1);
        }
    }

    #[test]
    fn has_pending_tracks_uncommitted_instances() {
        let mut h = Harness::new(4, false);
        assert!(!h.replicas[1].has_pending());
        // A pre-prepare lands but commits are withheld: pending.
        let outs = h.replicas[0].propose(b"stuck".to_vec());
        h.absorb(0, outs);
        while let Some((from, to, msg)) = h.queue.pop_front() {
            if matches!(msg, PbftMsg::Commit { .. }) {
                continue;
            }
            let outs = h.replicas[to as usize].on_message(from, msg);
            h.absorb(to, outs);
        }
        assert!(h.replicas[1].has_pending());
        // A fresh run that commits normally ends with nothing pending.
        let mut h = Harness::new(4, false);
        h.propose(0, b"done");
        h.run();
        assert!(!h.replicas[1].has_pending());
    }

    #[test]
    fn checkpoint_gc_bounds_state() {
        let mut h = Harness::new(4, false);
        for i in 0..64u8 {
            h.propose(0, &[i]);
        }
        h.run();
        for r in &h.replicas {
            assert!(
                r.instances.len() <= 17,
                "instances not GC'd: {}",
                r.instances.len()
            );
        }
        assert_eq!(h.committed[2].len(), 64);
    }

    #[test]
    fn commit_before_preprepare_is_buffered() {
        // Out-of-order delivery: commits arrive first, then the
        // pre-prepare + prepares; the instance must still commit once the
        // payload shows up.
        let n = 4;
        let registry = KeyRegistry::generate(99, &[n]);
        let mk = |i: u32| {
            PbftReplica::new(
                PbftConfig {
                    group: 0,
                    n,
                    node: i,
                    skip_prepare: false,
                    checkpoint_interval: 0,
                },
                registry.clone(),
            )
        };
        let mut observer = mk(3);
        let payload: Bytes = b"late".to_vec().into();
        let digest = Digest::of(&payload);
        // Commits from replicas 0..2 (3 = quorum for n=4).
        for i in 0..3u32 {
            let key = registry.key_of(NodeId::new(0, i)).unwrap();
            let sig = key.sign_digest(&digest);
            let outs = observer.on_message(
                i,
                PbftMsg::Commit {
                    view: 0,
                    seq: 1,
                    digest,
                    sig,
                },
            );
            assert!(outs.is_empty(), "must not execute without payload");
        }
        // Now the pre-prepare arrives.
        let outs = observer.on_message(
            0,
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                payload: payload.clone(),
                digest,
            },
        );
        // Observer broadcasts its prepare; once its own commit joins the
        // buffered ones the instance executes.
        let committed: Vec<_> = outs
            .iter()
            .filter(|o| matches!(o, PbftOutput::Committed { .. }))
            .collect();
        assert_eq!(committed.len(), 1);
    }
}

//! Length-framed entry chunking.
//!
//! A log entry is an arbitrary byte string, but Reed-Solomon wants
//! `n_data` shards of identical length. [`EntryCodec`] frames the entry
//! with its length, pads it to a multiple of `n_data`, splits it, encodes,
//! and performs the inverse on rebuild. The frame also acts as a cheap
//! sanity check: a rebuilt payload whose length prefix disagrees with the
//! shard geometry is reported as [`CodecError::CorruptFrame`] (the PBFT
//! certificate remains the authoritative integrity check, per paper §IV-C).
//!
//! Because every [`crate::rs::ReedSolomon`] carries precomputed coefficient
//! tables and a decode-plan cache, constructing codecs per call throws that
//! state away. [`EntryCodec::shared`] hands out one process-wide instance
//! per `(n_data, n_total)` geometry instead; the replication engine uses it
//! for every transfer.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::{
    rs::{CacheStats, ReedSolomon},
    CodecError,
};

/// Frame header: payload length as a little-endian u64.
const FRAME_HEADER: usize = 8;

/// Process-wide codec registry, keyed by `(n_data, n_total)`.
type CodecRegistry = Mutex<HashMap<(usize, usize), Arc<EntryCodec>>>;
static REGISTRY: OnceLock<CodecRegistry> = OnceLock::new();

/// Splits entries into Reed-Solomon chunks and rebuilds them.
#[derive(Debug, Clone)]
pub struct EntryCodec {
    rs: ReedSolomon,
}

impl EntryCodec {
    /// Creates a codec with `n_data` data chunks out of `n_total` total.
    pub fn new(n_data: usize, n_total: usize) -> Result<Self, CodecError> {
        Ok(EntryCodec {
            rs: ReedSolomon::new(n_data, n_total)?,
        })
    }

    /// Returns the process-wide shared codec for this geometry, creating it
    /// on first use.
    ///
    /// All callers of the same `(n_data, n_total)` pair share one instance
    /// — and therefore one set of coefficient tables and one decode-plan
    /// cache — instead of re-deriving the generator matrix per transfer.
    pub fn shared(n_data: usize, n_total: usize) -> Result<Arc<EntryCodec>, CodecError> {
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = registry.lock().expect("codec registry poisoned");
        if let Some(codec) = map.get(&(n_data, n_total)) {
            return Ok(codec.clone());
        }
        let codec = Arc::new(EntryCodec::new(n_data, n_total)?);
        map.insert((n_data, n_total), codec.clone());
        Ok(codec)
    }

    /// Number of data chunks.
    pub fn n_data(&self) -> usize {
        self.rs.n_data()
    }

    /// Total number of chunks.
    pub fn n_total(&self) -> usize {
        self.rs.n_total()
    }

    /// Decode-plan cache counters of the underlying code (see
    /// [`ReedSolomon::cache_stats`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.rs.cache_stats()
    }

    /// The per-chunk size for an entry of `entry_len` bytes.
    pub fn chunk_size(&self, entry_len: usize) -> usize {
        let framed = entry_len + FRAME_HEADER;
        framed.div_ceil(self.rs.n_data())
    }

    /// The WAN amplification factor of this code: total bytes transmitted
    /// divided by entry bytes, i.e. `n_total / n_data` (paper: ≈2.15 for
    /// the 4→7 case study).
    pub fn amplification(&self) -> f64 {
        self.rs.n_total() as f64 / self.rs.n_data() as f64
    }

    /// Encodes `entry` into `n_total` equal-size chunks.
    pub fn encode(&self, entry: &[u8]) -> Result<Vec<Vec<u8>>, CodecError> {
        if entry.is_empty() {
            return Err(CodecError::EmptyEntry);
        }
        let n_data = self.rs.n_data();
        let chunk = self.chunk_size(entry.len());
        let mut framed = Vec::with_capacity(chunk * n_data);
        framed.extend_from_slice(&(entry.len() as u64).to_le_bytes());
        framed.extend_from_slice(entry);
        framed.resize(chunk * n_data, 0);

        // Borrowed sub-slices of the framed buffer go straight into the
        // encoder; the data shards are materialised once, in the output.
        let data: Vec<&[u8]> = framed.chunks(chunk).collect();
        self.rs.encode(&data)
    }

    /// Rebuilds the entry from any `n_data` received chunks.
    ///
    /// `chunks[i] = Some(bytes)` if chunk `i` arrived. The input is only
    /// read; use [`EntryCodec::decode_from`] directly when the chunks are
    /// borrowed from network buffers.
    pub fn decode(&self, chunks: &mut [Option<Vec<u8>>]) -> Result<Vec<u8>, CodecError> {
        self.decode_from(chunks)
    }

    /// Borrow-based rebuild: accepts anything byte-slice-like so received
    /// chunks can stay in their network buffers (e.g. `Option<Bytes>`)
    /// while the entry is reassembled.
    pub fn decode_from<T: AsRef<[u8]>>(&self, chunks: &[Option<T>]) -> Result<Vec<u8>, CodecError> {
        let data = self.rs.reconstruct_data_from(chunks)?;
        let mut framed: Vec<u8> = Vec::with_capacity(data.len() * data[0].len());
        for shard in &data {
            framed.extend_from_slice(shard);
        }
        if framed.len() < FRAME_HEADER {
            return Err(CodecError::CorruptFrame);
        }
        let len = u64::from_le_bytes(framed[..FRAME_HEADER].try_into().expect("8 bytes")) as usize;
        if len == 0 || FRAME_HEADER + len > framed.len() {
            return Err(CodecError::CorruptFrame);
        }
        // Padding must be zero; tampered shards frequently violate this,
        // letting us reject cheaply before the certificate check.
        if framed[FRAME_HEADER + len..].iter().any(|&b| b != 0) {
            return Err(CodecError::CorruptFrame);
        }
        framed.truncate(FRAME_HEADER + len);
        framed.drain(..FRAME_HEADER);
        Ok(framed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let codec = EntryCodec::new(4, 7).unwrap();
        let entry = b"hello world".to_vec();
        let chunks = codec.encode(&entry).unwrap();
        assert_eq!(chunks.len(), 7);
        let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
        assert_eq!(codec.decode(&mut received).unwrap(), entry);
    }

    #[test]
    fn roundtrip_with_max_erasures() {
        let codec = EntryCodec::new(4, 7).unwrap();
        let entry: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let chunks = codec.encode(&entry).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
        received[0] = None;
        received[2] = None;
        received[5] = None;
        assert_eq!(codec.decode(&mut received).unwrap(), entry);
    }

    #[test]
    fn shared_returns_one_instance_per_geometry() {
        let a = EntryCodec::shared(6, 11).unwrap();
        let b = EntryCodec::shared(6, 11).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = EntryCodec::shared(6, 12).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // Invalid geometries don't pollute the registry.
        assert!(EntryCodec::shared(0, 4).is_err());
        assert!(EntryCodec::shared(4, 300).is_err());
    }

    #[test]
    fn decode_from_borrowed_chunks() {
        let codec = EntryCodec::new(3, 5).unwrap();
        let entry = vec![0xabu8; 333];
        let chunks = codec.encode(&entry).unwrap();
        let borrowed: Vec<Option<&[u8]>> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| if i == 1 { None } else { Some(c.as_slice()) })
            .collect();
        assert_eq!(codec.decode_from(&borrowed).unwrap(), entry);
    }

    #[test]
    fn empty_entry_rejected() {
        let codec = EntryCodec::new(2, 4).unwrap();
        assert_eq!(codec.encode(&[]).unwrap_err(), CodecError::EmptyEntry);
    }

    #[test]
    fn entry_smaller_than_n_data_still_works() {
        let codec = EntryCodec::new(13, 28).unwrap();
        let entry = vec![42u8];
        let chunks = codec.encode(&entry).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
        assert_eq!(codec.decode(&mut received).unwrap(), entry);
    }

    #[test]
    fn amplification_matches_paper_case_study() {
        let codec = EntryCodec::new(13, 28).unwrap();
        let a = codec.amplification();
        assert!((a - 28.0 / 13.0).abs() < 1e-12);
        assert!(a > 2.15 && a < 2.16);
    }

    #[test]
    fn tampered_length_prefix_detected() {
        let codec = EntryCodec::new(2, 4).unwrap();
        let entry = vec![7u8; 50];
        let mut chunks = codec.encode(&entry).unwrap();
        // Chunk 0 starts with the length frame; blow it up.
        chunks[0][0] = 0xff;
        chunks[0][4] = 0xff;
        let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
        assert_eq!(
            codec.decode(&mut received).unwrap_err(),
            CodecError::CorruptFrame
        );
    }

    #[test]
    fn chunk_size_is_minimal_cover() {
        let codec = EntryCodec::new(4, 7).unwrap();
        // framed = len + 8, divided among 4 chunks, rounded up.
        assert_eq!(codec.chunk_size(8), 4);
        assert_eq!(codec.chunk_size(9), 5);
        assert_eq!(codec.chunk_size(100), 27);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_entry_any_erasures(
            entry in proptest::collection::vec(any::<u8>(), 1..2048),
            n_data in 1usize..20,
            extra_parity in 0usize..12,
            seed in any::<u64>(),
        ) {
            let n_total = n_data + extra_parity;
            let codec = EntryCodec::new(n_data, n_total).unwrap();
            let chunks = codec.encode(&entry).unwrap();
            prop_assert_eq!(chunks.len(), n_total);

            // Drop a pseudo-random set of `extra_parity` chunks.
            use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut order: Vec<usize> = (0..n_total).collect();
            order.shuffle(&mut rng);
            let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
            for &drop in order.iter().take(extra_parity) {
                received[drop] = None;
            }
            let rebuilt = codec.decode(&mut received).unwrap();
            prop_assert_eq!(rebuilt, entry);
        }

        #[test]
        fn prop_all_chunks_same_size(
            entry in proptest::collection::vec(any::<u8>(), 1..512),
            n_data in 1usize..16,
            parity in 0usize..8,
        ) {
            let codec = EntryCodec::new(n_data, n_data + parity).unwrap();
            let chunks = codec.encode(&entry).unwrap();
            let size = chunks[0].len();
            prop_assert!(chunks.iter().all(|c| c.len() == size));
            prop_assert_eq!(size, codec.chunk_size(entry.len()));
        }

        #[test]
        fn prop_decode_cache_hit_and_miss_agree(
            entry in proptest::collection::vec(any::<u8>(), 1..1024),
            seed in any::<u64>(),
        ) {
            // A fresh codec decodes a random erasure pattern twice: the
            // first pass misses the decode-plan cache, the second hits it,
            // and both must return the identical entry.
            let codec = EntryCodec::new(5, 9).unwrap();
            let chunks = codec.encode(&entry).unwrap();

            use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut order: Vec<usize> = (0..9).collect();
            order.shuffle(&mut rng);
            let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
            for &drop in order.iter().take(4) {
                received[drop] = None;
            }
            // Guarantee the matrix path: at least one data chunk must be
            // missing, else the all-data fast path skips the cache.
            if received[..5].iter().all(|c| c.is_some()) {
                let parity_alive = (5..9).find(|&i| received[i].is_some());
                prop_assume!(parity_alive.is_some());
                received[0] = None;
            }

            let before = codec.cache_stats();
            prop_assert_eq!(before.hits, 0);
            let first = codec.decode_from(&received).unwrap();
            let mid = codec.cache_stats();
            prop_assert_eq!(mid.misses, before.misses + 1, "first decode misses");
            let second = codec.decode_from(&received).unwrap();
            let after = codec.cache_stats();
            prop_assert_eq!(after.hits, mid.hits + 1, "second decode hits");
            prop_assert_eq!(after.misses, mid.misses, "second decode builds nothing");
            prop_assert_eq!(&first, &entry);
            prop_assert_eq!(&second, &entry);
        }
    }
}

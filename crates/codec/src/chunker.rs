//! Length-framed entry chunking.
//!
//! A log entry is an arbitrary byte string, but Reed-Solomon wants
//! `n_data` shards of identical length. [`EntryCodec`] frames the entry
//! with its length, pads it to a multiple of `n_data`, splits it, encodes,
//! and performs the inverse on rebuild. The frame also acts as a cheap
//! sanity check: a rebuilt payload whose length prefix disagrees with the
//! shard geometry is reported as [`CodecError::CorruptFrame`] (the PBFT
//! certificate remains the authoritative integrity check, per paper §IV-C).

use crate::{rs::ReedSolomon, CodecError};

/// Frame header: payload length as a little-endian u64.
const FRAME_HEADER: usize = 8;

/// Splits entries into Reed-Solomon chunks and rebuilds them.
#[derive(Debug, Clone)]
pub struct EntryCodec {
    rs: ReedSolomon,
}

impl EntryCodec {
    /// Creates a codec with `n_data` data chunks out of `n_total` total.
    pub fn new(n_data: usize, n_total: usize) -> Result<Self, CodecError> {
        Ok(EntryCodec { rs: ReedSolomon::new(n_data, n_total)? })
    }

    /// Number of data chunks.
    pub fn n_data(&self) -> usize {
        self.rs.n_data()
    }

    /// Total number of chunks.
    pub fn n_total(&self) -> usize {
        self.rs.n_total()
    }

    /// The per-chunk size for an entry of `entry_len` bytes.
    pub fn chunk_size(&self, entry_len: usize) -> usize {
        let framed = entry_len + FRAME_HEADER;
        framed.div_ceil(self.rs.n_data())
    }

    /// The WAN amplification factor of this code: total bytes transmitted
    /// divided by entry bytes, i.e. `n_total / n_data` (paper: ≈2.15 for
    /// the 4→7 case study).
    pub fn amplification(&self) -> f64 {
        self.rs.n_total() as f64 / self.rs.n_data() as f64
    }

    /// Encodes `entry` into `n_total` equal-size chunks.
    pub fn encode(&self, entry: &[u8]) -> Result<Vec<Vec<u8>>, CodecError> {
        if entry.is_empty() {
            return Err(CodecError::EmptyEntry);
        }
        let n_data = self.rs.n_data();
        let chunk = self.chunk_size(entry.len());
        let mut framed = Vec::with_capacity(chunk * n_data);
        framed.extend_from_slice(&(entry.len() as u64).to_le_bytes());
        framed.extend_from_slice(entry);
        framed.resize(chunk * n_data, 0);

        let data: Vec<Vec<u8>> =
            framed.chunks(chunk).map(|c| c.to_vec()).collect();
        self.rs.encode(&data)
    }

    /// Rebuilds the entry from any `n_data` received chunks.
    ///
    /// `chunks[i] = Some(bytes)` if chunk `i` arrived. Consumes the data
    /// chunks it uses (they are moved out of the slice).
    pub fn decode(&self, chunks: &mut [Option<Vec<u8>>]) -> Result<Vec<u8>, CodecError> {
        let data = self.rs.reconstruct_data(chunks)?;
        let mut framed: Vec<u8> = Vec::with_capacity(data.len() * data[0].len());
        for shard in &data {
            framed.extend_from_slice(shard);
        }
        if framed.len() < FRAME_HEADER {
            return Err(CodecError::CorruptFrame);
        }
        let len = u64::from_le_bytes(framed[..FRAME_HEADER].try_into().expect("8 bytes"))
            as usize;
        if len == 0 || FRAME_HEADER + len > framed.len() {
            return Err(CodecError::CorruptFrame);
        }
        // Padding must be zero; tampered shards frequently violate this,
        // letting us reject cheaply before the certificate check.
        if framed[FRAME_HEADER + len..].iter().any(|&b| b != 0) {
            return Err(CodecError::CorruptFrame);
        }
        framed.truncate(FRAME_HEADER + len);
        framed.drain(..FRAME_HEADER);
        Ok(framed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let codec = EntryCodec::new(4, 7).unwrap();
        let entry = b"hello world".to_vec();
        let chunks = codec.encode(&entry).unwrap();
        assert_eq!(chunks.len(), 7);
        let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
        assert_eq!(codec.decode(&mut received).unwrap(), entry);
    }

    #[test]
    fn roundtrip_with_max_erasures() {
        let codec = EntryCodec::new(4, 7).unwrap();
        let entry: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let chunks = codec.encode(&entry).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
        received[0] = None;
        received[2] = None;
        received[5] = None;
        assert_eq!(codec.decode(&mut received).unwrap(), entry);
    }

    #[test]
    fn empty_entry_rejected() {
        let codec = EntryCodec::new(2, 4).unwrap();
        assert_eq!(codec.encode(&[]).unwrap_err(), CodecError::EmptyEntry);
    }

    #[test]
    fn entry_smaller_than_n_data_still_works() {
        let codec = EntryCodec::new(13, 28).unwrap();
        let entry = vec![42u8];
        let chunks = codec.encode(&entry).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
        assert_eq!(codec.decode(&mut received).unwrap(), entry);
    }

    #[test]
    fn amplification_matches_paper_case_study() {
        let codec = EntryCodec::new(13, 28).unwrap();
        let a = codec.amplification();
        assert!((a - 28.0 / 13.0).abs() < 1e-12);
        assert!(a > 2.15 && a < 2.16);
    }

    #[test]
    fn tampered_length_prefix_detected() {
        let codec = EntryCodec::new(2, 4).unwrap();
        let entry = vec![7u8; 50];
        let mut chunks = codec.encode(&entry).unwrap();
        // Chunk 0 starts with the length frame; blow it up.
        chunks[0][0] = 0xff;
        chunks[0][4] = 0xff;
        let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
        assert_eq!(codec.decode(&mut received).unwrap_err(), CodecError::CorruptFrame);
    }

    #[test]
    fn chunk_size_is_minimal_cover() {
        let codec = EntryCodec::new(4, 7).unwrap();
        // framed = len + 8, divided among 4 chunks, rounded up.
        assert_eq!(codec.chunk_size(8), 4);
        assert_eq!(codec.chunk_size(9), 5);
        assert_eq!(codec.chunk_size(100), 27);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_entry_any_erasures(
            entry in proptest::collection::vec(any::<u8>(), 1..2048),
            n_data in 1usize..20,
            extra_parity in 0usize..12,
            seed in any::<u64>(),
        ) {
            let n_total = n_data + extra_parity;
            let codec = EntryCodec::new(n_data, n_total).unwrap();
            let chunks = codec.encode(&entry).unwrap();
            prop_assert_eq!(chunks.len(), n_total);

            // Drop a pseudo-random set of `extra_parity` chunks.
            use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut order: Vec<usize> = (0..n_total).collect();
            order.shuffle(&mut rng);
            let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
            for &drop in order.iter().take(extra_parity) {
                received[drop] = None;
            }
            let rebuilt = codec.decode(&mut received).unwrap();
            prop_assert_eq!(rebuilt, entry);
        }

        #[test]
        fn prop_all_chunks_same_size(
            entry in proptest::collection::vec(any::<u8>(), 1..512),
            n_data in 1usize..16,
            parity in 0usize..8,
        ) {
            let codec = EntryCodec::new(n_data, n_data + parity).unwrap();
            let chunks = codec.encode(&entry).unwrap();
            let size = chunks[0].len();
            prop_assert!(chunks.iter().all(|c| c.len() == size));
            prop_assert_eq!(size, codec.chunk_size(entry.len()));
        }
    }
}

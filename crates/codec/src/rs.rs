//! Systematic Reed-Solomon encoder/decoder over GF(2^8).
//!
//! The code is *systematic*: the first `n_data` output shards are the input
//! data verbatim, and the remaining `n_parity` shards are Cauchy-coded
//! redundancy. Any `n_data` of the `n_total` shards reconstruct the data
//! (paper §IV-B: "any n_data out of n_total chunks can be used to rebuild
//! the original message").
//!
//! # Fast path
//!
//! Three things make the hot loops cheap:
//!
//! - Every parity coefficient's 256-entry product table is precomputed when
//!   the instance is built, so encoding is one table lookup per byte with no
//!   per-shard setup.
//! - Decode matrices (the inverted row selections) are cached per erasure
//!   pattern in a small LRU shared across clones of the instance. Steady
//!   state — the same nodes alive round after round — hits the cache and
//!   skips the Gauss-Jordan inversion and table builds entirely. Hit/miss
//!   counters are exposed via [`ReedSolomon::cache_stats`] and the
//!   process-wide [`global_cache_stats`].
//! - Above [`PARALLEL_MIN_BYTES`] of output, the coefficient matrix is
//!   applied by scoped worker threads, one contiguous band of rows each.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{matrix::Matrix, CodecError};

/// Number of erasure patterns the decode-plan LRU retains.
///
/// Steady state needs exactly one pattern; a flapping node adds a handful.
/// 32 covers pathological churn while keeping the linear-scan LRU trivial.
const DECODE_CACHE_CAP: usize = 32;

/// Minimum number of output bytes (`rows × shard_len`) before matrix
/// application fans out across scoped threads. Below this, thread spawn
/// overhead dominates; above it (≳256 KiB) the speedup is near-linear.
pub const PARALLEL_MIN_BYTES: usize = 256 * 1024;

static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of decode-plan cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Decodes that reused a cached inverted matrix.
    pub hits: u64,
    /// Decodes that had to invert and tabulate a fresh matrix.
    pub misses: u64,
}

/// Process-wide decode-plan cache counters, summed over every
/// [`ReedSolomon`] instance. The replication layer surfaces these through
/// `massbft-core`'s stats.
pub fn global_cache_stats() -> CacheStats {
    CacheStats {
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_MISSES.load(Ordering::Relaxed),
    }
}

/// An inverted decode matrix plus its per-coefficient product tables,
/// specific to one set of surviving shard indices.
#[derive(Debug)]
struct DecodePlan {
    /// The `n_data` shard indices this plan consumes, ascending.
    picked: Vec<usize>,
    /// Inverse of the generator rows at `picked`: `n_data × n_data`.
    coeffs: Matrix,
    /// Product table per coefficient, row-major.
    tables: Vec<[u8; 256]>,
}

/// Tiny move-to-front LRU keyed by the picked shard indices.
#[derive(Debug, Default)]
struct DecodeCache {
    /// Most recently used first.
    entries: Vec<(Box<[u8]>, Arc<DecodePlan>)>,
}

impl DecodeCache {
    fn get(&mut self, key: &[u8]) -> Option<Arc<DecodePlan>> {
        let pos = self.entries.iter().position(|(k, _)| &**k == key)?;
        let hit = self.entries.remove(pos);
        let plan = hit.1.clone();
        self.entries.insert(0, hit);
        Some(plan)
    }

    fn insert(&mut self, key: Box<[u8]>, plan: Arc<DecodePlan>) {
        // A racing decode may have inserted the same pattern already; the
        // duplicate would only waste a slot, so drop it.
        if self.entries.iter().any(|(k, _)| *k == key) {
            return;
        }
        self.entries.truncate(DECODE_CACHE_CAP.saturating_sub(1));
        self.entries.insert(0, (key, plan));
    }
}

/// A systematic Reed-Solomon code with fixed shard counts.
#[derive(Clone)]
pub struct ReedSolomon {
    n_data: usize,
    n_total: usize,
    /// Rows `n_data..n_total` of the generator matrix (the parity rows).
    parity_rows: Matrix,
    /// Full generator matrix, kept for decode-time row selection.
    generator: Matrix,
    /// Product table for every parity coefficient, row-major
    /// (`n_parity × n_data`), built once at construction.
    parity_tables: Vec<[u8; 256]>,
    /// Decode plans per erasure pattern, shared across clones.
    cache: Arc<Mutex<DecodeCache>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl std::fmt::Debug for ReedSolomon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReedSolomon")
            .field("n_data", &self.n_data)
            .field("n_total", &self.n_total)
            .field("cache_stats", &self.cache_stats())
            .finish_non_exhaustive()
    }
}

impl ReedSolomon {
    /// Creates a code producing `n_total` shards of which `n_data` carry
    /// data.
    pub fn new(n_data: usize, n_total: usize) -> Result<Self, CodecError> {
        let generator = Matrix::systematic_cauchy(n_total, n_data)?;
        let parity_rows = generator.select_rows(&(n_data..n_total).collect::<Vec<_>>());
        let parity_tables = tabulate(&parity_rows, n_total - n_data, n_data);
        Ok(ReedSolomon {
            n_data,
            n_total,
            parity_rows,
            generator,
            parity_tables,
            cache: Arc::new(Mutex::new(DecodeCache::default())),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Number of data shards.
    pub fn n_data(&self) -> usize {
        self.n_data
    }

    /// Total number of shards.
    pub fn n_total(&self) -> usize {
        self.n_total
    }

    /// Number of parity shards.
    pub fn n_parity(&self) -> usize {
        self.n_total - self.n_data
    }

    /// Decode-plan cache counters for this instance (clones share them).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Encodes `n_data` equal-length data shards into `n_total` shards.
    ///
    /// The returned vector starts with the data shards (copies of the
    /// input) followed by the computed parity shards. Accepts anything
    /// byte-slice-like, so callers can pass borrowed sub-slices of a single
    /// framed buffer without first materialising owned shards.
    pub fn encode<T: AsRef<[u8]>>(&self, data: &[T]) -> Result<Vec<Vec<u8>>, CodecError> {
        if data.len() != self.n_data {
            return Err(CodecError::InvalidShardCounts {
                n_data: data.len(),
                n_total: self.n_total,
            });
        }
        let inputs: Vec<&[u8]> = data.iter().map(AsRef::as_ref).collect();
        let shard_len = inputs[0].len();
        if inputs.iter().any(|d| d.len() != shard_len) {
            return Err(CodecError::InconsistentChunkSize);
        }
        let mut out = Vec::with_capacity(self.n_total);
        out.extend(inputs.iter().map(|d| d.to_vec()));
        out.extend(apply_matrix(
            &self.parity_rows,
            &self.parity_tables,
            self.n_parity(),
            &inputs,
            shard_len,
        ));
        Ok(out)
    }

    /// Reconstructs the `n_data` data shards from any `n_data` surviving
    /// shards. `shards[i]` is `Some` if shard `i` was received.
    ///
    /// On success the returned vector holds the data shards in order.
    /// Missing *data* shards are recomputed; surviving ones are moved out of
    /// the input untouched.
    pub fn reconstruct_data(
        &self,
        shards: &mut [Option<Vec<u8>>],
    ) -> Result<Vec<Vec<u8>>, CodecError> {
        self.check_received(shards.len(), shards.iter().filter(|s| s.is_some()).count())?;
        // Fast path: all data shards survived — move them out, no math.
        if shards[..self.n_data].iter().all(|s| s.is_some()) {
            let lens: Vec<usize> = shards.iter().flatten().map(|s| s.len()).collect();
            if lens.windows(2).any(|w| w[0] != w[1]) {
                return Err(CodecError::InconsistentChunkSize);
            }
            return Ok(shards[..self.n_data]
                .iter_mut()
                .map(|s| s.take().expect("checked above"))
                .collect());
        }
        self.reconstruct_data_from(&*shards)
    }

    /// Borrow-based reconstruction: rebuilds the `n_data` data shards from
    /// any `n_data` surviving shards without taking ownership of the input.
    ///
    /// This is the zero-copy entry point used by the replication engine:
    /// received chunks stay in their network buffers and are only read.
    pub fn reconstruct_data_from<T: AsRef<[u8]>>(
        &self,
        shards: &[Option<T>],
    ) -> Result<Vec<Vec<u8>>, CodecError> {
        let have = shards.iter().filter(|s| s.is_some()).count();
        self.check_received(shards.len(), have)?;

        let received: Vec<Option<&[u8]>> = shards
            .iter()
            .map(|s| s.as_ref().map(AsRef::as_ref))
            .collect();
        let shard_len = received.iter().flatten().map(|s| s.len()).next().ok_or(
            CodecError::NotEnoughChunks {
                have: 0,
                need: self.n_data,
            },
        )?;
        if received.iter().flatten().any(|s| s.len() != shard_len) {
            return Err(CodecError::InconsistentChunkSize);
        }

        // Fast path: all data shards survived.
        if received[..self.n_data].iter().all(|s| s.is_some()) {
            return Ok(received[..self.n_data]
                .iter()
                .map(|s| s.expect("checked above").to_vec())
                .collect());
        }

        // Pick the first n_data available shard indices; fetch (or build)
        // the inverted generator rows; multiply to recover the data.
        let picked: Vec<usize> = (0..self.n_total)
            .filter(|&i| received[i].is_some())
            .take(self.n_data)
            .collect();
        let plan = self.decode_plan(picked)?;
        let inputs: Vec<&[u8]> = plan
            .picked
            .iter()
            .map(|&i| received[i].expect("picked only Some"))
            .collect();
        Ok(apply_matrix(
            &plan.coeffs,
            &plan.tables,
            self.n_data,
            &inputs,
            shard_len,
        ))
    }

    /// Looks up the decode plan for `picked` in the LRU, building and
    /// inserting it on a miss.
    fn decode_plan(&self, picked: Vec<usize>) -> Result<Arc<DecodePlan>, CodecError> {
        let key: Box<[u8]> = picked.iter().map(|&i| i as u8).collect();
        if let Some(plan) = self.cache.lock().expect("decode cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        // Invert and tabulate outside the lock: inversion is O(n_data^3)
        // and concurrent decodes of *different* patterns shouldn't serialise.
        self.misses.fetch_add(1, Ordering::Relaxed);
        GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
        let coeffs = self.generator.select_rows(&picked).inverse()?;
        let tables = tabulate(&coeffs, self.n_data, self.n_data);
        let plan = Arc::new(DecodePlan {
            picked,
            coeffs,
            tables,
        });
        self.cache
            .lock()
            .expect("decode cache poisoned")
            .insert(key, plan.clone());
        Ok(plan)
    }

    fn check_received(&self, total: usize, have: usize) -> Result<(), CodecError> {
        if total != self.n_total {
            return Err(CodecError::InvalidShardCounts {
                n_data: self.n_data,
                n_total: total,
            });
        }
        if have < self.n_data {
            return Err(CodecError::NotEnoughChunks {
                have,
                need: self.n_data,
            });
        }
        Ok(())
    }

    /// Verifies that a full shard set is consistent with this code: parity
    /// shards must equal the re-encoding of the data shards. Used by tests
    /// and by debug assertions in the replication engine.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, CodecError> {
        if shards.len() != self.n_total {
            return Err(CodecError::InvalidShardCounts {
                n_data: self.n_data,
                n_total: shards.len(),
            });
        }
        let reenc = self.encode(&shards[..self.n_data])?;
        Ok(reenc == shards)
    }
}

/// Builds the product table for every coefficient of an `n_rows × n_cols`
/// matrix, row-major.
fn tabulate(m: &Matrix, n_rows: usize, n_cols: usize) -> Vec<[u8; 256]> {
    let mut tables = Vec::with_capacity(n_rows * n_cols);
    for r in 0..n_rows {
        for c in 0..n_cols {
            tables.push(crate::gf256::product_table(m.get(r, c)));
        }
    }
    tables
}

/// Computes `out[r] = Σ_k m[r][k] · inputs[k]` for `r in 0..n_rows`,
/// fanning rows out across scoped threads once the output volume justifies
/// the spawn cost.
fn apply_matrix(
    m: &Matrix,
    tables: &[[u8; 256]],
    n_rows: usize,
    inputs: &[&[u8]],
    shard_len: usize,
) -> Vec<Vec<u8>> {
    let n_cols = inputs.len();
    let one_row = |r: usize| {
        let mut out = vec![0u8; shard_len];
        for (k, src) in inputs.iter().enumerate() {
            crate::gf256::mul_acc_slice_with(&mut out, src, m.get(r, k), &tables[r * n_cols + k]);
        }
        out
    };

    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(n_rows);
    if workers < 2 || n_rows * shard_len < PARALLEL_MIN_BYTES {
        return (0..n_rows).map(one_row).collect();
    }

    let band = n_rows.div_ceil(workers);
    let one_row = &one_row;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (lo, hi) = (w * band, ((w + 1) * band).min(n_rows));
                s.spawn(move || (lo..hi).map(one_row).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("matrix worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_shards(rng: &mut StdRng, n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(4, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data = random_shards(&mut rng, 4, 64);
        let shards = rs.encode(&data).unwrap();
        assert_eq!(&shards[..4], &data[..]);
        assert_eq!(shards.len(), 7);
        assert!(rs.verify(&shards).unwrap());
    }

    #[test]
    fn encode_accepts_borrowed_slices() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let buf: Vec<u8> = (0..32).collect();
        let borrowed: Vec<&[u8]> = buf.chunks(16).collect();
        let owned: Vec<Vec<u8>> = buf.chunks(16).map(<[u8]>::to_vec).collect();
        assert_eq!(rs.encode(&borrowed).unwrap(), rs.encode(&owned).unwrap());
    }

    #[test]
    fn reconstruct_from_every_erasure_pattern() {
        // Exhaustively drop every possible set of n_parity shards for a
        // small code and check recovery.
        let rs = ReedSolomon::new(3, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let data = random_shards(&mut rng, 3, 32);
        let shards = rs.encode(&data).unwrap();

        for mask in 0u32..(1 << 6) {
            if mask.count_ones() != 3 {
                continue; // keep exactly n_data shards
            }
            let mut received: Vec<Option<Vec<u8>>> = shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    if mask & (1 << i) != 0 {
                        Some(s.clone())
                    } else {
                        None
                    }
                })
                .collect();
            let rebuilt = rs.reconstruct_data(&mut received).unwrap();
            assert_eq!(rebuilt, data, "mask {mask:b}");
        }
    }

    #[test]
    fn decode_cache_hits_on_repeated_pattern() {
        let rs = ReedSolomon::new(3, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let data = random_shards(&mut rng, 3, 16);
        let shards = rs.encode(&data).unwrap();
        assert_eq!(rs.cache_stats(), CacheStats { hits: 0, misses: 0 });

        let received: Vec<Option<Vec<u8>>> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| if i == 0 { None } else { Some(s.clone()) })
            .collect();
        for round in 1..=3 {
            assert_eq!(rs.reconstruct_data_from(&received).unwrap(), data);
            assert_eq!(
                rs.cache_stats(),
                CacheStats {
                    hits: round - 1,
                    misses: 1
                },
                "round {round}"
            );
        }

        // A different erasure pattern is a fresh miss; clones share the
        // cache and the counters.
        let clone = rs.clone();
        let mut other = received.clone();
        other[0] = Some(shards[0].clone());
        other[1] = None;
        assert_eq!(clone.reconstruct_data_from(&other).unwrap(), data);
        assert_eq!(clone.cache_stats(), CacheStats { hits: 2, misses: 2 });
        assert_eq!(rs.cache_stats(), clone.cache_stats());
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut cache = DecodeCache::default();
        let dummy = || {
            Arc::new(DecodePlan {
                picked: vec![],
                coeffs: Matrix::identity(1),
                tables: vec![],
            })
        };
        for i in 0..=DECODE_CACHE_CAP as u8 {
            cache.insert(Box::new([i]), dummy());
        }
        assert_eq!(cache.entries.len(), DECODE_CACHE_CAP);
        assert!(cache.get(&[0]).is_none(), "oldest entry evicted");
        assert!(cache.get(&[DECODE_CACHE_CAP as u8]).is_some());
        // Touching an old entry protects it from the next eviction.
        assert!(cache.get(&[1]).is_some());
        cache.insert(Box::new([99]), dummy());
        assert!(cache.get(&[1]).is_some());
        assert!(cache.get(&[2]).is_none());
    }

    #[test]
    fn not_enough_shards_is_an_error() {
        let rs = ReedSolomon::new(4, 7).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; 7];
        shards[0] = Some(vec![1; 8]);
        shards[1] = Some(vec![2; 8]);
        shards[6] = Some(vec![3; 8]);
        assert_eq!(
            rs.reconstruct_data(&mut shards).unwrap_err(),
            CodecError::NotEnoughChunks { have: 3, need: 4 }
        );
    }

    #[test]
    fn inconsistent_sizes_rejected() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        assert_eq!(
            rs.encode(&[vec![1, 2], vec![3]]).unwrap_err(),
            CodecError::InconsistentChunkSize
        );
        let mut shards = vec![Some(vec![1, 2]), Some(vec![3]), None, None];
        assert_eq!(
            rs.reconstruct_data(&mut shards).unwrap_err(),
            CodecError::InconsistentChunkSize
        );
        // The parity-using path checks too.
        let shards = vec![None, Some(vec![1, 2]), Some(vec![3]), None];
        assert_eq!(
            rs.reconstruct_data_from(&shards).unwrap_err(),
            CodecError::InconsistentChunkSize
        );
    }

    #[test]
    fn corrupted_shard_rebuilds_wrong_data() {
        // The paper's §IV-C relies on this: RS cannot detect corruption,
        // only the PBFT certificate check can. A flipped byte in a used
        // shard must produce a *different* (wrong) reconstruction.
        let rs = ReedSolomon::new(4, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let data = random_shards(&mut rng, 4, 16);
        let shards = rs.encode(&data).unwrap();

        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        received[0] = None; // force the decode path to use parity
        received[4].as_mut().unwrap()[0] ^= 0xff; // corrupt a parity shard
        received[5] = None;
        received[6] = None;
        received[7] = None;
        let rebuilt = rs.reconstruct_data(&mut received).unwrap();
        assert_ne!(rebuilt, data);
    }

    #[test]
    fn paper_case_study_dimensions() {
        // Fig. 5b: n_total = lcm(4,7) = 28, parity = 1*7 + 2*4 = 15,
        // data = 13 → ~2.15 entry copies of WAN traffic.
        let rs = ReedSolomon::new(13, 28).unwrap();
        assert_eq!(rs.n_parity(), 15);
        let mut rng = StdRng::seed_from_u64(4);
        let data = random_shards(&mut rng, 13, 100);
        let shards = rs.encode(&data).unwrap();

        // Worst case: lose the 15 chunks touched by faulty nodes.
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for lost in [21, 22, 23, 24, 25, 26, 27, 0, 1, 2, 3, 8, 9, 10, 11] {
            received[lost] = None;
        }
        assert_eq!(rs.reconstruct_data(&mut received).unwrap(), data);
    }

    #[test]
    fn no_data_loss_uses_fast_path() {
        let rs = ReedSolomon::new(4, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let data = random_shards(&mut rng, 4, 10);
        let shards = rs.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shards
            .iter()
            .take(4)
            .cloned()
            .map(Some)
            .chain([None, None, None])
            .collect();
        assert_eq!(rs.reconstruct_data(&mut received).unwrap(), data);
        // Fast path takes the shards out of the input.
        assert!(received[..4].iter().all(|s| s.is_none()));
        // And it never touches the decode-plan cache.
        assert_eq!(rs.cache_stats(), CacheStats::default());
    }

    #[test]
    fn parallel_threshold_shards_match_sequential() {
        // Shards big enough to cross PARALLEL_MIN_BYTES must produce the
        // same bytes as the sequential path (exercised by tiny shards).
        let rs = ReedSolomon::new(4, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let shard_len = PARALLEL_MIN_BYTES / 2; // 4 parity rows → 2× threshold
        let data = random_shards(&mut rng, 4, shard_len);
        let big = rs.encode(&data).unwrap();
        // Reference: compute each parity byte column-wise with scalar ops.
        for p in 0..4 {
            for i in (0..shard_len).step_by(shard_len / 13) {
                let mut want = 0u8;
                for (j, d) in data.iter().enumerate() {
                    want ^= crate::gf256::mul(rs.parity_rows.get(p, j), d[i]);
                }
                assert_eq!(big[4 + p][i], want, "parity {p} byte {i}");
            }
        }
        // Parallel reconstruction agrees as well.
        let mut received: Vec<Option<Vec<u8>>> = big.into_iter().map(Some).collect();
        received[0] = None;
        received[2] = None;
        assert_eq!(rs.reconstruct_data(&mut received).unwrap(), data);
    }

    #[test]
    fn single_shard_code_is_degenerate_copy() {
        let rs = ReedSolomon::new(1, 1).unwrap();
        let shards = rs.encode(&[vec![9, 9]]).unwrap();
        assert_eq!(shards, vec![vec![9, 9]]);
    }
}

//! Systematic Reed-Solomon encoder/decoder over GF(2^8).
//!
//! The code is *systematic*: the first `n_data` output shards are the input
//! data verbatim, and the remaining `n_parity` shards are Cauchy-coded
//! redundancy. Any `n_data` of the `n_total` shards reconstruct the data
//! (paper §IV-B: "any n_data out of n_total chunks can be used to rebuild
//! the original message").
//!
//! Decoding caches nothing across erasure patterns; the matrices are at most
//! 256x256 and inversion is microseconds, far below the WAN latencies the
//! protocol hides.

use crate::{matrix::Matrix, CodecError};

/// A systematic Reed-Solomon code with fixed shard counts.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    n_data: usize,
    n_total: usize,
    /// Rows `n_data..n_total` of the generator matrix (the parity rows).
    parity_rows: Matrix,
    /// Full generator matrix, kept for decode-time row selection.
    generator: Matrix,
}

impl ReedSolomon {
    /// Creates a code producing `n_total` shards of which `n_data` carry
    /// data.
    pub fn new(n_data: usize, n_total: usize) -> Result<Self, CodecError> {
        let generator = Matrix::systematic_cauchy(n_total, n_data)?;
        let parity_rows = generator.select_rows(&(n_data..n_total).collect::<Vec<_>>());
        Ok(ReedSolomon { n_data, n_total, parity_rows, generator })
    }

    /// Number of data shards.
    pub fn n_data(&self) -> usize {
        self.n_data
    }

    /// Total number of shards.
    pub fn n_total(&self) -> usize {
        self.n_total
    }

    /// Number of parity shards.
    pub fn n_parity(&self) -> usize {
        self.n_total - self.n_data
    }

    /// Encodes `n_data` equal-length data shards into `n_total` shards.
    ///
    /// The returned vector starts with the data shards (clones of the
    /// input) followed by the computed parity shards.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodecError> {
        if data.len() != self.n_data {
            return Err(CodecError::InvalidShardCounts {
                n_data: data.len(),
                n_total: self.n_total,
            });
        }
        let shard_len = data[0].len();
        if data.iter().any(|d| d.len() != shard_len) {
            return Err(CodecError::InconsistentChunkSize);
        }
        let mut out = Vec::with_capacity(self.n_total);
        out.extend(data.iter().cloned());
        for p in 0..self.n_parity() {
            let mut shard = vec![0u8; shard_len];
            for (j, d) in data.iter().enumerate() {
                crate::gf256::mul_acc_slice(&mut shard, d, self.parity_rows.get(p, j));
            }
            out.push(shard);
        }
        Ok(out)
    }

    /// Reconstructs the `n_data` data shards from any `n_data` surviving
    /// shards. `shards[i]` is `Some` if shard `i` was received.
    ///
    /// On success the returned vector holds the data shards in order.
    /// Missing *data* shards are recomputed; surviving ones are moved out of
    /// the input untouched.
    pub fn reconstruct_data(
        &self,
        shards: &mut [Option<Vec<u8>>],
    ) -> Result<Vec<Vec<u8>>, CodecError> {
        if shards.len() != self.n_total {
            return Err(CodecError::InvalidShardCounts {
                n_data: self.n_data,
                n_total: shards.len(),
            });
        }
        let have = shards.iter().filter(|s| s.is_some()).count();
        if have < self.n_data {
            return Err(CodecError::NotEnoughChunks { have, need: self.n_data });
        }

        let shard_len = shards
            .iter()
            .flatten()
            .map(|s| s.len())
            .next()
            .ok_or(CodecError::NotEnoughChunks { have: 0, need: self.n_data })?;
        if shards.iter().flatten().any(|s| s.len() != shard_len) {
            return Err(CodecError::InconsistentChunkSize);
        }

        // Fast path: all data shards survived.
        if shards[..self.n_data].iter().all(|s| s.is_some()) {
            return Ok(shards[..self.n_data]
                .iter_mut()
                .map(|s| s.take().expect("checked above"))
                .collect());
        }

        // Pick the first n_data available shard indices; invert the
        // corresponding generator rows; multiply to recover the data.
        let picked: Vec<usize> = (0..self.n_total)
            .filter(|&i| shards[i].is_some())
            .take(self.n_data)
            .collect();
        let decode = self.generator.select_rows(&picked).inverse()?;

        let mut data = Vec::with_capacity(self.n_data);
        for r in 0..self.n_data {
            let mut shard = vec![0u8; shard_len];
            for (k, &src) in picked.iter().enumerate() {
                let c = decode.get(r, k);
                let input = shards[src].as_ref().expect("picked only Some");
                crate::gf256::mul_acc_slice(&mut shard, input, c);
            }
            data.push(shard);
        }
        Ok(data)
    }

    /// Verifies that a full shard set is consistent with this code: parity
    /// shards must equal the re-encoding of the data shards. Used by tests
    /// and by debug assertions in the replication engine.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, CodecError> {
        if shards.len() != self.n_total {
            return Err(CodecError::InvalidShardCounts {
                n_data: self.n_data,
                n_total: shards.len(),
            });
        }
        let reenc = self.encode(&shards[..self.n_data].to_vec())?;
        Ok(reenc == shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_shards(rng: &mut StdRng, n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| (0..len).map(|_| rng.gen()).collect()).collect()
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(4, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data = random_shards(&mut rng, 4, 64);
        let shards = rs.encode(&data).unwrap();
        assert_eq!(&shards[..4], &data[..]);
        assert_eq!(shards.len(), 7);
        assert!(rs.verify(&shards).unwrap());
    }

    #[test]
    fn reconstruct_from_every_erasure_pattern() {
        // Exhaustively drop every possible set of n_parity shards for a
        // small code and check recovery.
        let rs = ReedSolomon::new(3, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let data = random_shards(&mut rng, 3, 32);
        let shards = rs.encode(&data).unwrap();

        for mask in 0u32..(1 << 6) {
            if mask.count_ones() != 3 {
                continue; // keep exactly n_data shards
            }
            let mut received: Vec<Option<Vec<u8>>> = shards
                .iter()
                .enumerate()
                .map(|(i, s)| if mask & (1 << i) != 0 { Some(s.clone()) } else { None })
                .collect();
            let rebuilt = rs.reconstruct_data(&mut received).unwrap();
            assert_eq!(rebuilt, data, "mask {mask:b}");
        }
    }

    #[test]
    fn not_enough_shards_is_an_error() {
        let rs = ReedSolomon::new(4, 7).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; 7];
        shards[0] = Some(vec![1; 8]);
        shards[1] = Some(vec![2; 8]);
        shards[6] = Some(vec![3; 8]);
        assert_eq!(
            rs.reconstruct_data(&mut shards).unwrap_err(),
            CodecError::NotEnoughChunks { have: 3, need: 4 }
        );
    }

    #[test]
    fn inconsistent_sizes_rejected() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        assert_eq!(
            rs.encode(&[vec![1, 2], vec![3]]).unwrap_err(),
            CodecError::InconsistentChunkSize
        );
        let mut shards = vec![Some(vec![1, 2]), Some(vec![3]), None, None];
        assert_eq!(
            rs.reconstruct_data(&mut shards).unwrap_err(),
            CodecError::InconsistentChunkSize
        );
    }

    #[test]
    fn corrupted_shard_rebuilds_wrong_data() {
        // The paper's §IV-C relies on this: RS cannot detect corruption,
        // only the PBFT certificate check can. A flipped byte in a used
        // shard must produce a *different* (wrong) reconstruction.
        let rs = ReedSolomon::new(4, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let data = random_shards(&mut rng, 4, 16);
        let shards = rs.encode(&data).unwrap();

        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        received[0] = None; // force the decode path to use parity
        received[4].as_mut().unwrap()[0] ^= 0xff; // corrupt a parity shard
        received[5] = None;
        received[6] = None;
        received[7] = None;
        let rebuilt = rs.reconstruct_data(&mut received).unwrap();
        assert_ne!(rebuilt, data);
    }

    #[test]
    fn paper_case_study_dimensions() {
        // Fig. 5b: n_total = lcm(4,7) = 28, parity = 1*7 + 2*4 = 15,
        // data = 13 → ~2.15 entry copies of WAN traffic.
        let rs = ReedSolomon::new(13, 28).unwrap();
        assert_eq!(rs.n_parity(), 15);
        let mut rng = StdRng::seed_from_u64(4);
        let data = random_shards(&mut rng, 13, 100);
        let shards = rs.encode(&data).unwrap();

        // Worst case: lose the 15 chunks touched by faulty nodes.
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for lost in [21, 22, 23, 24, 25, 26, 27, 0, 1, 2, 3, 8, 9, 10, 11] {
            received[lost] = None;
        }
        assert_eq!(rs.reconstruct_data(&mut received).unwrap(), data);
    }

    #[test]
    fn no_data_loss_uses_fast_path() {
        let rs = ReedSolomon::new(4, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let data = random_shards(&mut rng, 4, 10);
        let shards = rs.encode(&data).unwrap();
        let mut received: Vec<Option<Vec<u8>>> =
            shards.iter().take(4).cloned().map(Some).chain([None, None, None]).collect();
        assert_eq!(rs.reconstruct_data(&mut received).unwrap(), data);
        // Fast path takes the shards out of the input.
        assert!(received[..4].iter().all(|s| s.is_none()));
    }

    #[test]
    fn single_shard_code_is_degenerate_copy() {
        let rs = ReedSolomon::new(1, 1).unwrap();
        let shards = rs.encode(&[vec![9, 9]]).unwrap();
        assert_eq!(shards, vec![vec![9, 9]]);
    }
}

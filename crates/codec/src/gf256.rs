//! Arithmetic in the finite field GF(2^8).
//!
//! Elements are bytes; addition is XOR and multiplication is polynomial
//! multiplication modulo the AES-adjacent primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the same field used by most
//! Reed-Solomon deployments (including the Go library the paper's authors
//! used). Log/exp tables are built at compile time with `const fn`, so
//! multiplication and division are two table lookups and one add.

/// The primitive polynomial for the field, `x^8 + x^4 + x^3 + x^2 + 1`.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Order of the multiplicative group (`2^8 - 1`).
pub const GROUP_ORDER: usize = 255;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Duplicate the cycle so `exp[log a + log b]` never needs a mod.
    let mut j = GROUP_ORDER;
    while j < 512 {
        exp[j] = exp[j - GROUP_ORDER];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();

/// `EXP[i] = g^i` where `g = 2` generates the multiplicative group.
/// Extended to 512 entries so index sums never wrap.
pub static EXP: [u8; 512] = TABLES.0;

/// `LOG[x] = log_g(x)` for `x != 0`; `LOG[0]` is unused and zero.
pub static LOG: [u8; 256] = TABLES.1;

/// Field addition (XOR). Identical to subtraction in GF(2^8).
#[inline(always)]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via log/exp tables.
#[inline(always)]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Field division `a / b`.
///
/// # Panics
/// Panics on division by zero, mirroring integer division.
#[inline(always)]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "GF(2^8) division by zero");
    if a == 0 {
        0
    } else {
        EXP[GROUP_ORDER + LOG[a as usize] as usize - LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics if `a == 0`.
#[inline(always)]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "GF(2^8) zero has no inverse");
    EXP[GROUP_ORDER - LOG[a as usize] as usize]
}

/// Exponentiation `a^n` by repeated log-scaling.
pub fn pow(a: u8, n: usize) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = (LOG[a as usize] as usize * n) % GROUP_ORDER;
    EXP[l]
}

/// Computes `dst[i] ^= c * src[i]` over whole slices — the inner loop of
/// Reed-Solomon encoding. Using a per-coefficient 256-entry product table
/// turns the hot loop into a single lookup per byte.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    mul_acc_slice_with(dst, src, c, &product_table(c));
}

/// Like [`mul_acc_slice`] but with a caller-supplied product table for `c`
/// (see [`product_table`]). Lets encoders that apply the same coefficient
/// matrix to every entry build each table once per codec instance instead
/// of once per shard.
///
/// On CPUs with SSSE3/AVX2 the bulk of the slice goes through the
/// `pshufb` nibble-table kernel in `massbft-accel`; the scalar loop is
/// the portable fallback.
pub fn mul_acc_slice_with(dst: &mut [u8], src: &[u8], c: u8, table: &[u8; 256]) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert_eq!(table[1], c, "table does not belong to coefficient {c}");
    if c == 0 {
        return;
    }
    if c == 1 {
        // Plain XOR: LLVM auto-vectorizes this without any table.
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= *s;
        }
        return;
    }
    if massbft_accel::gf256_mul_acc(dst, src, table) {
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= table[*s as usize];
    }
}

/// Computes `dst[i] = c * src[i]` over whole slices.
pub fn mul_slice(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let table = product_table(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d = table[*s as usize];
    }
}

/// Builds the 256-entry multiplication table for a fixed coefficient:
/// `product_table(c)[x] == mul(c, x)` for every `x`.
///
/// Codec instances precompute one table per generator-matrix coefficient so
/// the encode/decode inner loops never rebuild them (see
/// [`mul_acc_slice_with`]).
#[inline]
pub fn product_table(c: u8) -> [u8; 256] {
    let mut t = [0u8; 256];
    if c == 0 {
        return t;
    }
    let lc = LOG[c as usize] as usize;
    for (x, slot) in t.iter_mut().enumerate().skip(1) {
        *slot = EXP[lc + LOG[x] as usize];
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_are_inverse() {
        for x in 1..=255u8 {
            assert_eq!(EXP[LOG[x as usize] as usize], x);
        }
        for i in 0..GROUP_ORDER {
            assert_eq!(LOG[EXP[i] as usize] as usize, i);
        }
    }

    #[test]
    fn generator_cycle_has_full_order() {
        // g=2 must generate all 255 nonzero elements.
        let mut seen = [false; 256];
        for (i, &v) in EXP.iter().enumerate().take(GROUP_ORDER) {
            assert!(!seen[v as usize], "generator cycle repeats at {i}");
            seen[v as usize] = true;
        }
        assert!(!seen[0]);
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Schoolbook carry-less multiplication mod the primitive polynomial.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            for _ in 0..8 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= (PRIMITIVE_POLY & 0xff) as u8;
                }
                b >>= 1;
            }
            p
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn field_axioms_hold() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(add(a, a), 0, "characteristic 2");
            if a != 0 {
                assert_eq!(mul(a, inv(a)), 1);
                assert_eq!(div(a, a), 1);
            }
        }
        // Associativity and distributivity on a sample grid.
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                for c in (0..=255u8).step_by(11) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [0u8, 1, 2, 3, 29, 255] {
            let mut acc = 1u8;
            for n in 0..20 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    fn pow_zero_of_zero_is_one() {
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn slice_ops_match_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 77, 255] {
            let mut dst = vec![0xaa; 256];
            let mut expect = dst.clone();
            mul_acc_slice(&mut dst, &src, c);
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= mul(*s, c);
            }
            assert_eq!(dst, expect, "mul_acc_slice c={c}");

            let mut dst2 = vec![0u8; 256];
            mul_slice(&mut dst2, &src, c);
            let expect2: Vec<u8> = src.iter().map(|&s| mul(s, c)).collect();
            assert_eq!(dst2, expect2, "mul_slice c={c}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = div(3, 0);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn inv_of_zero_panics() {
        let _ = inv(0);
    }
}

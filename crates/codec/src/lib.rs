//! Erasure-coding substrate for MassBFT.
//!
//! MassBFT's encoded bijective log replication (paper §IV-B) splits every
//! log entry into `n_data` *data chunks* and `n_parity` *parity chunks* so
//! that any `n_data` of the `n_total = n_data + n_parity` chunks suffice to
//! rebuild the original entry. The paper uses a Reed-Solomon code for this;
//! this crate provides a from-scratch systematic Reed-Solomon implementation
//! over GF(2^8) using an extended Cauchy generator matrix.
//!
//! # Layout
//!
//! - [`gf256`] — arithmetic in GF(2^8) with compile-time log/exp tables.
//! - [`matrix`] — dense matrices over GF(2^8) with Gauss-Jordan inversion.
//! - [`rs`] — the [`rs::ReedSolomon`] encoder/decoder.
//! - [`chunker`] — length-framed splitting of an arbitrary byte entry into
//!   equal-size shards and the inverse rebuild.
//!
//! # Limits
//!
//! Like any GF(2^8) Reed-Solomon code, at most 256 total chunks are
//! supported. The paper hit the same wall with `liberasurecode` (max 64
//! chunks) and switched libraries; group sizes in the evaluation keep
//! `n_total = lcm(n1, n2)` well under 256, and [`rs::ReedSolomon::new`]
//! returns [`CodecError::TooManyChunks`] otherwise.
//!
//! # Example
//!
//! ```
//! use massbft_codec::{chunker::EntryCodec, rs::ReedSolomon};
//!
//! // 13 data chunks + 15 parity chunks, as in the paper's Fig. 5b case
//! // study (4-node group sending to a 7-node group).
//! let codec = EntryCodec::new(13, 28).unwrap();
//! let entry = b"a batch of transactions".repeat(64);
//! let chunks = codec.encode(&entry).unwrap();
//! assert_eq!(chunks.len(), 28);
//!
//! // Lose any 15 chunks: the entry still rebuilds from the other 13.
//! let mut received: Vec<Option<Vec<u8>>> = chunks.into_iter().map(Some).collect();
//! for lost in [0, 1, 2, 3, 4, 5, 6, 7, 10, 12, 14, 20, 21, 22, 23] {
//!     received[lost] = None;
//! }
//! let rebuilt = codec.decode(&mut received).unwrap();
//! assert_eq!(rebuilt, entry);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunker;
pub mod gf256;
pub mod matrix;
pub mod rs;

/// Errors produced by the erasure-coding layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// `n_data` was zero or exceeded `n_total`.
    InvalidShardCounts {
        /// Requested number of data chunks.
        n_data: usize,
        /// Requested total number of chunks.
        n_total: usize,
    },
    /// More than 256 total chunks were requested (GF(2^8) limit).
    TooManyChunks(usize),
    /// Fewer than `n_data` chunks were present at decode time.
    NotEnoughChunks {
        /// Chunks available.
        have: usize,
        /// Chunks required.
        need: usize,
    },
    /// Chunks passed to `decode` had inconsistent lengths.
    InconsistentChunkSize,
    /// The decoded payload failed length-frame validation, i.e. the chunk
    /// set was internally consistent but does not frame a valid entry
    /// (tampered input).
    CorruptFrame,
    /// A matrix that must be invertible was singular. With a Cauchy
    /// generator matrix this indicates corrupted shard indices.
    SingularMatrix,
    /// An empty entry cannot be encoded into zero-size chunks.
    EmptyEntry,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::InvalidShardCounts { n_data, n_total } => {
                write!(
                    f,
                    "invalid shard counts: n_data={n_data}, n_total={n_total}"
                )
            }
            CodecError::TooManyChunks(n) => {
                write!(f, "{n} chunks requested but GF(2^8) supports at most 256")
            }
            CodecError::NotEnoughChunks { have, need } => {
                write!(f, "not enough chunks to rebuild: have {have}, need {need}")
            }
            CodecError::InconsistentChunkSize => write!(f, "chunks have inconsistent sizes"),
            CodecError::CorruptFrame => write!(f, "decoded payload fails length-frame validation"),
            CodecError::SingularMatrix => write!(f, "decode matrix is singular"),
            CodecError::EmptyEntry => write!(f, "cannot encode an empty entry"),
        }
    }
}

impl std::error::Error for CodecError {}

//! SmallBank workload generator.
//!
//! Paper setup: 1,000,000 accounts, uniform access pattern. The standard
//! SmallBank mix exercises six transaction types; amounts are kept small
//! relative to the initial balance so most transactions commit.

use crate::request::Request;
use rand::Rng;

/// Number of accounts.
pub const SB_ACCOUNTS: u64 = 1_000_000;

/// Generator state for SmallBank.
#[derive(Debug, Default)]
pub struct SmallBankGen;

impl SmallBankGen {
    /// Creates a generator.
    pub fn new() -> Self {
        SmallBankGen
    }

    /// Draws the next request, uniform over accounts and the six
    /// transaction types.
    pub fn next(&mut self, rng: &mut impl Rng) -> Request {
        let acct = rng.gen_range(0..SB_ACCOUNTS);
        match rng.gen_range(0..6u8) {
            0 => Request::SbBalance { acct },
            1 => Request::SbDepositChecking {
                acct,
                amount: rng.gen_range(1..100),
            },
            2 => Request::SbTransactSavings {
                acct,
                amount: rng.gen_range(-100i32..200),
            },
            3 => {
                let dst = distinct(rng, acct);
                Request::SbAmalgamate { src: acct, dst }
            }
            4 => Request::SbWriteCheck {
                acct,
                amount: rng.gen_range(1..200),
            },
            _ => {
                let dst = distinct(rng, acct);
                Request::SbSendPayment {
                    src: acct,
                    dst,
                    amount: rng.gen_range(1..100),
                }
            }
        }
    }
}

fn distinct(rng: &mut impl Rng, not: u64) -> u64 {
    loop {
        let x = rng.gen_range(0..SB_ACCOUNTS);
        if x != not {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn covers_all_six_types() {
        let mut gen = SmallBankGen::new();
        let mut rng = SmallRng::seed_from_u64(8);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let idx = match gen.next(&mut rng) {
                Request::SbBalance { .. } => 0,
                Request::SbDepositChecking { .. } => 1,
                Request::SbTransactSavings { .. } => 2,
                Request::SbAmalgamate { .. } => 3,
                Request::SbWriteCheck { .. } => 4,
                Request::SbSendPayment { .. } => 5,
                _ => unreachable!("SmallBank emits only Sb* requests"),
            };
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn transfer_endpoints_are_distinct() {
        let mut gen = SmallBankGen::new();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..2000 {
            match gen.next(&mut rng) {
                Request::SbAmalgamate { src, dst } => assert_ne!(src, dst),
                Request::SbSendPayment { src, dst, .. } => assert_ne!(src, dst),
                _ => {}
            }
        }
    }

    #[test]
    fn access_is_roughly_uniform() {
        let mut gen = SmallBankGen::new();
        let mut rng = SmallRng::seed_from_u64(10);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let acct = match gen.next(&mut rng) {
                Request::SbBalance { acct }
                | Request::SbDepositChecking { acct, .. }
                | Request::SbTransactSavings { acct, .. }
                | Request::SbWriteCheck { acct, .. } => acct,
                Request::SbAmalgamate { src, .. } | Request::SbSendPayment { src, .. } => src,
                _ => unreachable!(),
            };
            *counts.entry(acct).or_insert(0u32) += 1;
        }
        // Uniform over 1M accounts: collisions are rare, hotspots absent.
        let max = counts.values().max().copied().unwrap();
        assert!(max <= 4, "uniform workload should have no hotspot: {max}");
    }
}

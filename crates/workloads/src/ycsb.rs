//! YCSB workload generator (workloads A and B).
//!
//! Paper setup: one table, 1,000,000 rows, 10 columns of 100 B; keys drawn
//! Zipf(0.99); YCSB-A = 50/50 read/write, YCSB-B = 95/5.

use crate::{request::Request, zipf::Zipfian, WorkloadKind};
use rand::Rng;

/// Rows in the YCSB table.
pub const YCSB_ROWS: u64 = 1_000_000;
/// Columns per row.
pub const YCSB_FIELDS: u8 = 10;

/// Generator state for YCSB.
pub struct YcsbGen {
    zipf: Zipfian,
    write_fraction: f64,
}

impl YcsbGen {
    /// Creates a generator for YCSB-A or YCSB-B. Other kinds default to
    /// YCSB-A mix (callers route non-YCSB kinds elsewhere).
    pub fn new(kind: WorkloadKind) -> Self {
        let write_fraction = match kind {
            WorkloadKind::YcsbB => 0.05,
            _ => 0.50,
        };
        YcsbGen {
            zipf: Zipfian::new(YCSB_ROWS, 0.99),
            write_fraction,
        }
    }

    /// Draws the next request.
    pub fn next(&mut self, rng: &mut impl Rng) -> Request {
        let key = self.zipf.sample_scrambled(rng);
        let field = rng.gen_range(0..YCSB_FIELDS);
        if rng.gen_bool(self.write_fraction) {
            Request::YcsbWrite {
                key,
                field,
                value_seed: rng.gen(),
            }
        } else {
            Request::YcsbRead { key, field }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn mix(kind: WorkloadKind, n: usize) -> f64 {
        let mut gen = YcsbGen::new(kind);
        let mut rng = SmallRng::seed_from_u64(5);
        let writes = (0..n)
            .filter(|_| matches!(gen.next(&mut rng), Request::YcsbWrite { .. }))
            .count();
        writes as f64 / n as f64
    }

    #[test]
    fn ycsb_a_is_half_writes() {
        let w = mix(WorkloadKind::YcsbA, 10_000);
        assert!((w - 0.5).abs() < 0.03, "write fraction {w}");
    }

    #[test]
    fn ycsb_b_is_five_percent_writes() {
        let w = mix(WorkloadKind::YcsbB, 10_000);
        assert!((w - 0.05).abs() < 0.02, "write fraction {w}");
    }

    #[test]
    fn keys_are_skewed() {
        let mut gen = YcsbGen::new(WorkloadKind::YcsbA);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let key = match gen.next(&mut rng) {
                Request::YcsbRead { key, .. } | Request::YcsbWrite { key, .. } => key,
                _ => unreachable!(),
            };
            *counts.entry(key).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        // Uniform over 1M keys would almost surely have max 1-2; Zipf 0.99
        // concentrates heavily.
        assert!(max > 100, "hottest key hit {max} times");
    }

    #[test]
    fn fields_are_in_range() {
        let mut gen = YcsbGen::new(WorkloadKind::YcsbA);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let field = match gen.next(&mut rng) {
                Request::YcsbRead { field, .. } | Request::YcsbWrite { field, .. } => field,
                _ => unreachable!(),
            };
            assert!(field < YCSB_FIELDS);
        }
    }
}

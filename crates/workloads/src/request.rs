//! Wire format and execution semantics of workload transactions.
//!
//! A [`Request`] is what a client submits, what gets batched into log
//! entries, and what every replica decodes and executes after global
//! ordering. The binary encoding is length-framed and zero-padded so the
//! *mean* serialized sizes match the paper's reported per-workload
//! transaction sizes (201/150/108/232 bytes) — those sizes drive the
//! simulator's bandwidth model.

use massbft_db::{DetTransaction, KvStore, TxnEffects};

/// Serialized size of a YCSB read request.
pub const YCSB_READ_BYTES: usize = 144;
/// Serialized size of a YCSB write request (carries a 100 B field value).
pub const YCSB_WRITE_BYTES: usize = 258;
/// Serialized size of every SmallBank request.
pub const SMALLBANK_BYTES: usize = 108;
/// Serialized size of a TPC-C NewOrder request.
pub const TPCC_NEW_ORDER_BYTES: usize = 300;
/// Serialized size of a TPC-C Payment request.
pub const TPCC_PAYMENT_BYTES: usize = 164;
/// Serialized size of a TPC-C OrderStatus request.
pub const TPCC_ORDER_STATUS_BYTES: usize = 120;
/// Serialized size of a TPC-C Delivery request.
pub const TPCC_DELIVERY_BYTES: usize = 96;
/// Serialized size of a TPC-C StockLevel request.
pub const TPCC_STOCK_LEVEL_BYTES: usize = 104;

/// Initial balance of every SmallBank account half (checking / savings).
pub const SB_INITIAL_BALANCE: i64 = 10_000;

/// A workload transaction request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// YCSB: read one field of one row.
    YcsbRead {
        /// Row key (scrambled Zipf rank).
        key: u64,
        /// Field index, `0..10`.
        field: u8,
    },
    /// YCSB: overwrite one field of one row with a 100 B value.
    YcsbWrite {
        /// Row key.
        key: u64,
        /// Field index.
        field: u8,
        /// Seed expanding to the 100 B value.
        value_seed: u64,
    },
    /// SmallBank: read both balances.
    SbBalance {
        /// Account id.
        acct: u64,
    },
    /// SmallBank: deposit into checking.
    SbDepositChecking {
        /// Account id.
        acct: u64,
        /// Amount (positive).
        amount: u32,
    },
    /// SmallBank: adjust savings; aborts if the result would go negative.
    SbTransactSavings {
        /// Account id.
        acct: u64,
        /// Signed delta.
        amount: i32,
    },
    /// SmallBank: move all of `src`'s funds into `dst`'s checking.
    SbAmalgamate {
        /// Source account.
        src: u64,
        /// Destination account.
        dst: u64,
    },
    /// SmallBank: cash a check against total balance (overdraft penalty).
    SbWriteCheck {
        /// Account id.
        acct: u64,
        /// Check amount.
        amount: u32,
    },
    /// SmallBank: checking-to-checking transfer; aborts on insufficient
    /// funds.
    SbSendPayment {
        /// Source account.
        src: u64,
        /// Destination account.
        dst: u64,
        /// Amount.
        amount: u32,
    },
    /// TPC-C NewOrder: place an order of 5–15 items in one district.
    TpccNewOrder {
        /// Warehouse id, `0..128`.
        warehouse: u16,
        /// District id, `0..10`.
        district: u8,
        /// Customer id.
        customer: u32,
        /// `(item_id, quantity)` pairs.
        items: Vec<(u32, u8)>,
    },
    /// TPC-C Payment: pay against a customer balance, updating warehouse
    /// and district year-to-date totals (the hotspot rows).
    TpccPayment {
        /// Warehouse id.
        warehouse: u16,
        /// District id.
        district: u8,
        /// Customer id.
        customer: u32,
        /// Payment amount (cents).
        amount: u32,
    },
    /// TPC-C OrderStatus (read-only): a customer's latest order.
    ///
    /// Not part of the paper's evaluation subset (50 % NewOrder + 50 %
    /// Payment) but included for full TPC-C coverage; enable via
    /// [`crate::tpcc::TpccGen::full_mix`].
    TpccOrderStatus {
        /// Warehouse id.
        warehouse: u16,
        /// District id.
        district: u8,
        /// Customer id.
        customer: u32,
    },
    /// TPC-C Delivery: deliver the oldest undelivered order of each
    /// district of a warehouse (batched carrier assignment).
    TpccDelivery {
        /// Warehouse id.
        warehouse: u16,
        /// Carrier id.
        carrier: u8,
    },
    /// TPC-C StockLevel (read-only): count low-stock items of a district's
    /// recent orders.
    TpccStockLevel {
        /// Warehouse id.
        warehouse: u16,
        /// District id.
        district: u8,
        /// Stock threshold.
        threshold: u8,
    },
}

/// Errors decoding a serialized request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than its header or declared fields.
    Truncated,
    /// Unknown kind tag.
    UnknownKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "request bytes truncated"),
            DecodeError::UnknownKind(k) => write!(f, "unknown request kind {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const K_YCSB_READ: u8 = 1;
const K_YCSB_WRITE: u8 = 2;
const K_SB_BALANCE: u8 = 3;
const K_SB_DEPOSIT: u8 = 4;
const K_SB_TRANSACT: u8 = 5;
const K_SB_AMALGAMATE: u8 = 6;
const K_SB_WRITECHECK: u8 = 7;
const K_SB_SENDPAYMENT: u8 = 8;
const K_TPCC_NEWORDER: u8 = 9;
const K_TPCC_PAYMENT: u8 = 10;
const K_TPCC_ORDERSTATUS: u8 = 11;
const K_TPCC_DELIVERY: u8 = 12;
const K_TPCC_STOCKLEVEL: u8 = 13;

impl Request {
    /// Serializes the request, zero-padded to its workload's wire size.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        match self {
            Request::YcsbRead { key, field } => {
                b.push(K_YCSB_READ);
                b.extend_from_slice(&key.to_le_bytes());
                b.push(*field);
                pad_to(&mut b, YCSB_READ_BYTES);
            }
            Request::YcsbWrite {
                key,
                field,
                value_seed,
            } => {
                b.push(K_YCSB_WRITE);
                b.extend_from_slice(&key.to_le_bytes());
                b.push(*field);
                b.extend_from_slice(&value_seed.to_le_bytes());
                pad_to(&mut b, YCSB_WRITE_BYTES);
            }
            Request::SbBalance { acct } => {
                b.push(K_SB_BALANCE);
                b.extend_from_slice(&acct.to_le_bytes());
                pad_to(&mut b, SMALLBANK_BYTES);
            }
            Request::SbDepositChecking { acct, amount } => {
                b.push(K_SB_DEPOSIT);
                b.extend_from_slice(&acct.to_le_bytes());
                b.extend_from_slice(&amount.to_le_bytes());
                pad_to(&mut b, SMALLBANK_BYTES);
            }
            Request::SbTransactSavings { acct, amount } => {
                b.push(K_SB_TRANSACT);
                b.extend_from_slice(&acct.to_le_bytes());
                b.extend_from_slice(&amount.to_le_bytes());
                pad_to(&mut b, SMALLBANK_BYTES);
            }
            Request::SbAmalgamate { src, dst } => {
                b.push(K_SB_AMALGAMATE);
                b.extend_from_slice(&src.to_le_bytes());
                b.extend_from_slice(&dst.to_le_bytes());
                pad_to(&mut b, SMALLBANK_BYTES);
            }
            Request::SbWriteCheck { acct, amount } => {
                b.push(K_SB_WRITECHECK);
                b.extend_from_slice(&acct.to_le_bytes());
                b.extend_from_slice(&amount.to_le_bytes());
                pad_to(&mut b, SMALLBANK_BYTES);
            }
            Request::SbSendPayment { src, dst, amount } => {
                b.push(K_SB_SENDPAYMENT);
                b.extend_from_slice(&src.to_le_bytes());
                b.extend_from_slice(&dst.to_le_bytes());
                b.extend_from_slice(&amount.to_le_bytes());
                pad_to(&mut b, SMALLBANK_BYTES);
            }
            Request::TpccNewOrder {
                warehouse,
                district,
                customer,
                items,
            } => {
                b.push(K_TPCC_NEWORDER);
                b.extend_from_slice(&warehouse.to_le_bytes());
                b.push(*district);
                b.extend_from_slice(&customer.to_le_bytes());
                b.push(items.len() as u8);
                for (item, qty) in items {
                    b.extend_from_slice(&item.to_le_bytes());
                    b.push(*qty);
                }
                pad_to(&mut b, TPCC_NEW_ORDER_BYTES);
            }
            Request::TpccPayment {
                warehouse,
                district,
                customer,
                amount,
            } => {
                b.push(K_TPCC_PAYMENT);
                b.extend_from_slice(&warehouse.to_le_bytes());
                b.push(*district);
                b.extend_from_slice(&customer.to_le_bytes());
                b.extend_from_slice(&amount.to_le_bytes());
                pad_to(&mut b, TPCC_PAYMENT_BYTES);
            }
            Request::TpccOrderStatus {
                warehouse,
                district,
                customer,
            } => {
                b.push(K_TPCC_ORDERSTATUS);
                b.extend_from_slice(&warehouse.to_le_bytes());
                b.push(*district);
                b.extend_from_slice(&customer.to_le_bytes());
                pad_to(&mut b, TPCC_ORDER_STATUS_BYTES);
            }
            Request::TpccDelivery { warehouse, carrier } => {
                b.push(K_TPCC_DELIVERY);
                b.extend_from_slice(&warehouse.to_le_bytes());
                b.push(*carrier);
                pad_to(&mut b, TPCC_DELIVERY_BYTES);
            }
            Request::TpccStockLevel {
                warehouse,
                district,
                threshold,
            } => {
                b.push(K_TPCC_STOCKLEVEL);
                b.extend_from_slice(&warehouse.to_le_bytes());
                b.push(*district);
                b.push(*threshold);
                pad_to(&mut b, TPCC_STOCK_LEVEL_BYTES);
            }
        }
        b
    }

    /// Decodes a request, ignoring any zero padding after the fields.
    pub fn decode(bytes: &[u8]) -> Result<Request, DecodeError> {
        let mut r = Reader { b: bytes, pos: 0 };
        let kind = r.u8()?;
        let req = match kind {
            K_YCSB_READ => Request::YcsbRead {
                key: r.u64()?,
                field: r.u8()?,
            },
            K_YCSB_WRITE => Request::YcsbWrite {
                key: r.u64()?,
                field: r.u8()?,
                value_seed: r.u64()?,
            },
            K_SB_BALANCE => Request::SbBalance { acct: r.u64()? },
            K_SB_DEPOSIT => Request::SbDepositChecking {
                acct: r.u64()?,
                amount: r.u32()?,
            },
            K_SB_TRANSACT => Request::SbTransactSavings {
                acct: r.u64()?,
                amount: r.u32()? as i32,
            },
            K_SB_AMALGAMATE => Request::SbAmalgamate {
                src: r.u64()?,
                dst: r.u64()?,
            },
            K_SB_WRITECHECK => Request::SbWriteCheck {
                acct: r.u64()?,
                amount: r.u32()?,
            },
            K_SB_SENDPAYMENT => Request::SbSendPayment {
                src: r.u64()?,
                dst: r.u64()?,
                amount: r.u32()?,
            },
            K_TPCC_NEWORDER => {
                let warehouse = r.u16()?;
                let district = r.u8()?;
                let customer = r.u32()?;
                let n = r.u8()? as usize;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push((r.u32()?, r.u8()?));
                }
                Request::TpccNewOrder {
                    warehouse,
                    district,
                    customer,
                    items,
                }
            }
            K_TPCC_PAYMENT => Request::TpccPayment {
                warehouse: r.u16()?,
                district: r.u8()?,
                customer: r.u32()?,
                amount: r.u32()?,
            },
            K_TPCC_ORDERSTATUS => Request::TpccOrderStatus {
                warehouse: r.u16()?,
                district: r.u8()?,
                customer: r.u32()?,
            },
            K_TPCC_DELIVERY => Request::TpccDelivery {
                warehouse: r.u16()?,
                carrier: r.u8()?,
            },
            K_TPCC_STOCKLEVEL => Request::TpccStockLevel {
                warehouse: r.u16()?,
                district: r.u8()?,
                threshold: r.u8()?,
            },
            k => return Err(DecodeError::UnknownKind(k)),
        };
        Ok(req)
    }
}

fn pad_to(b: &mut Vec<u8>, size: usize) {
    debug_assert!(
        b.len() <= size,
        "fields overflow wire size {size}: {}",
        b.len()
    );
    b.resize(size, 0);
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        if self.pos + n > self.b.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

// ---------------------------------------------------------------------------
// Execution semantics (lazy initial state: absent rows read as defaults).
// ---------------------------------------------------------------------------

fn ycsb_key(key: u64, field: u8) -> Vec<u8> {
    format!("y:{key}:{field}").into_bytes()
}

fn ycsb_value(seed: u64) -> Vec<u8> {
    // Expand the seed to the 100 B column value the paper's schema uses.
    let mut v = Vec::with_capacity(100);
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    while v.len() < 100 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(100);
    v
}

fn sb_checking(acct: u64) -> Vec<u8> {
    format!("sc:{acct}").into_bytes()
}

fn sb_savings(acct: u64) -> Vec<u8> {
    format!("ss:{acct}").into_bytes()
}

fn read_i64(view: &KvStore, key: &[u8], default: i64) -> i64 {
    view.get(key)
        .and_then(|v| v.as_slice().try_into().ok().map(i64::from_le_bytes))
        .unwrap_or(default)
}

fn w_key(w: u16) -> Vec<u8> {
    format!("w:{w}").into_bytes()
}
fn d_key(w: u16, d: u8) -> Vec<u8> {
    format!("d:{w}:{d}").into_bytes()
}
fn c_key(w: u16, d: u8, c: u32) -> Vec<u8> {
    format!("c:{w}:{d}:{c}").into_bytes()
}
fn stock_key(w: u16, i: u32) -> Vec<u8> {
    format!("s:{w}:{i}").into_bytes()
}
fn order_key(w: u16, d: u8, oid: i64) -> Vec<u8> {
    format!("o:{w}:{d}:{oid}").into_bytes()
}

impl DetTransaction for Request {
    fn execute(&self, view: &KvStore) -> TxnEffects {
        let mut eff = TxnEffects::default();
        match self {
            Request::YcsbRead { key, field } => {
                eff.read(ycsb_key(*key, *field));
            }
            Request::YcsbWrite {
                key,
                field,
                value_seed,
            } => {
                eff.write(ycsb_key(*key, *field), ycsb_value(*value_seed));
            }
            Request::SbBalance { acct } => {
                eff.read(sb_checking(*acct));
                eff.read(sb_savings(*acct));
            }
            Request::SbDepositChecking { acct, amount } => {
                let k = sb_checking(*acct);
                eff.read(k.clone());
                let bal = read_i64(view, &k, SB_INITIAL_BALANCE);
                eff.write(k, (bal + *amount as i64).to_le_bytes().to_vec());
            }
            Request::SbTransactSavings { acct, amount } => {
                let k = sb_savings(*acct);
                eff.read(k.clone());
                let bal = read_i64(view, &k, SB_INITIAL_BALANCE);
                let new = bal + *amount as i64;
                if new < 0 {
                    eff.abort = true;
                } else {
                    eff.write(k, new.to_le_bytes().to_vec());
                }
            }
            Request::SbAmalgamate { src, dst } => {
                let (sc, ss, dc) = (sb_checking(*src), sb_savings(*src), sb_checking(*dst));
                eff.read(sc.clone());
                eff.read(ss.clone());
                eff.read(dc.clone());
                let total = read_i64(view, &sc, SB_INITIAL_BALANCE)
                    + read_i64(view, &ss, SB_INITIAL_BALANCE);
                let dbal = read_i64(view, &dc, SB_INITIAL_BALANCE);
                eff.write(sc, 0i64.to_le_bytes().to_vec());
                eff.write(ss, 0i64.to_le_bytes().to_vec());
                eff.write(dc, (dbal + total).to_le_bytes().to_vec());
            }
            Request::SbWriteCheck { acct, amount } => {
                let (ck, sk) = (sb_checking(*acct), sb_savings(*acct));
                eff.read(ck.clone());
                eff.read(sk.clone());
                let total = read_i64(view, &ck, SB_INITIAL_BALANCE)
                    + read_i64(view, &sk, SB_INITIAL_BALANCE);
                let cbal = read_i64(view, &ck, SB_INITIAL_BALANCE);
                // Overdraft penalty of 1 if the check exceeds total funds.
                let debit = if total < *amount as i64 {
                    *amount as i64 + 1
                } else {
                    *amount as i64
                };
                eff.write(ck, (cbal - debit).to_le_bytes().to_vec());
            }
            Request::SbSendPayment { src, dst, amount } => {
                let (sk, dk) = (sb_checking(*src), sb_checking(*dst));
                eff.read(sk.clone());
                eff.read(dk.clone());
                let sbal = read_i64(view, &sk, SB_INITIAL_BALANCE);
                if sbal < *amount as i64 {
                    eff.abort = true;
                } else {
                    let dbal = read_i64(view, &dk, SB_INITIAL_BALANCE);
                    eff.write(sk, (sbal - *amount as i64).to_le_bytes().to_vec());
                    eff.write(dk, (dbal + *amount as i64).to_le_bytes().to_vec());
                }
            }
            Request::TpccNewOrder {
                warehouse,
                district,
                customer,
                items,
            } => {
                // Reads: warehouse tax, customer discount.
                eff.read(w_key(*warehouse));
                eff.read(c_key(*warehouse, *district, *customer));
                // The district row carries next_o_id: read-modify-write —
                // the per-district hotspot.
                let dk = d_key(*warehouse, *district);
                eff.read(dk.clone());
                let next_oid = read_i64(view, &dk, 1);
                eff.write(dk, (next_oid + 1).to_le_bytes().to_vec());
                // Order record.
                eff.write(
                    order_key(*warehouse, *district, next_oid),
                    (*customer).to_le_bytes().to_vec(),
                );
                // Stock updates per line item.
                for (item, qty) in items {
                    let sk = stock_key(*warehouse, *item);
                    eff.read(sk.clone());
                    let stock = read_i64(view, &sk, 100);
                    let new = if stock >= *qty as i64 + 10 {
                        stock - *qty as i64
                    } else {
                        stock - *qty as i64 + 91 // TPC-C restock rule
                    };
                    eff.write(sk, new.to_le_bytes().to_vec());
                }
            }
            Request::TpccOrderStatus {
                warehouse,
                district,
                customer,
            } => {
                // Read the customer row and the district's latest order id.
                eff.read(c_key(*warehouse, *district, *customer));
                let dk = d_key(*warehouse, *district);
                eff.read(dk.clone());
                let latest = read_i64(view, &dk, 1) - 1;
                if latest >= 1 {
                    eff.read(order_key(*warehouse, *district, latest));
                }
            }
            Request::TpccDelivery { warehouse, carrier } => {
                // Deliver the oldest undelivered order per district: read
                // the delivery cursor, advance it, tag the order with the
                // carrier.
                for district in 0..crate::tpcc::TPCC_DISTRICTS {
                    let cursor = format!("dlv:{warehouse}:{district}").into_bytes();
                    eff.read(cursor.clone());
                    let next_undelivered = read_i64(view, &cursor, 1);
                    let dk = d_key(*warehouse, district);
                    eff.read(dk.clone());
                    let next_oid = read_i64(view, &dk, 1);
                    if next_undelivered < next_oid {
                        let ok = order_key(*warehouse, district, next_undelivered);
                        eff.read(ok.clone());
                        eff.write(
                            format!("ocar:{warehouse}:{district}:{next_undelivered}").into_bytes(),
                            (*carrier as i64).to_le_bytes().to_vec(),
                        );
                        eff.write(cursor, (next_undelivered + 1).to_le_bytes().to_vec());
                    }
                }
            }
            Request::TpccStockLevel {
                warehouse,
                district,
                threshold,
            } => {
                // Read the stock rows of the last 20 orders' first items.
                let dk = d_key(*warehouse, *district);
                eff.read(dk.clone());
                let next_oid = read_i64(view, &dk, 1);
                let from = (next_oid - 20).max(1);
                for oid in from..next_oid {
                    eff.read(order_key(*warehouse, *district, oid));
                }
                // Sample a fixed slice of stock rows; count below threshold.
                let mut low = 0i64;
                for i in 0..20u32 {
                    let sk = stock_key(*warehouse, i * 37 + *district as u32);
                    eff.read(sk.clone());
                    if read_i64(view, &sk, 100) < *threshold as i64 {
                        low += 1;
                    }
                }
                let _ = low; // read-only: result returned to the client
            }
            Request::TpccPayment {
                warehouse,
                district,
                customer,
                amount,
            } => {
                // Warehouse YTD: the per-warehouse hotspot row.
                let wk = w_key(*warehouse);
                eff.read(wk.clone());
                let w_ytd = read_i64(view, &wk, 0);
                eff.write(wk, (w_ytd + *amount as i64).to_le_bytes().to_vec());
                // District YTD.
                let dk = d_key(*warehouse, *district);
                eff.read(dk.clone());
                // District row multiplexes next_o_id; keep a separate YTD row
                // to avoid false sharing between Payment and NewOrder beyond
                // what TPC-C itself has.
                let ytd_key = format!("dytd:{warehouse}:{district}").into_bytes();
                eff.read(ytd_key.clone());
                let d_ytd = read_i64(view, &ytd_key, 0);
                eff.write(ytd_key, (d_ytd + *amount as i64).to_le_bytes().to_vec());
                // Customer balance.
                let ck = c_key(*warehouse, *district, *customer);
                eff.read(ck.clone());
                let bal = read_i64(view, &ck, 0);
                eff.write(ck, (bal - *amount as i64).to_le_bytes().to_vec());
            }
        }
        eff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use massbft_db::AriaExecutor;

    #[test]
    fn encode_sizes_are_exact() {
        assert_eq!(
            Request::YcsbRead { key: 1, field: 2 }.encode().len(),
            YCSB_READ_BYTES
        );
        assert_eq!(
            Request::YcsbWrite {
                key: 1,
                field: 2,
                value_seed: 3
            }
            .encode()
            .len(),
            YCSB_WRITE_BYTES
        );
        assert_eq!(
            Request::SbBalance { acct: 1 }.encode().len(),
            SMALLBANK_BYTES
        );
        assert_eq!(
            Request::SbSendPayment {
                src: 1,
                dst: 2,
                amount: 3
            }
            .encode()
            .len(),
            SMALLBANK_BYTES
        );
        assert_eq!(
            Request::TpccNewOrder {
                warehouse: 1,
                district: 2,
                customer: 3,
                items: vec![(1, 1); 15]
            }
            .encode()
            .len(),
            TPCC_NEW_ORDER_BYTES
        );
        assert_eq!(
            Request::TpccPayment {
                warehouse: 1,
                district: 2,
                customer: 3,
                amount: 4
            }
            .encode()
            .len(),
            TPCC_PAYMENT_BYTES
        );
    }

    #[test]
    fn roundtrip_every_variant() {
        let reqs = vec![
            Request::YcsbRead { key: 77, field: 9 },
            Request::YcsbWrite {
                key: 77,
                field: 9,
                value_seed: 1234,
            },
            Request::SbBalance { acct: 42 },
            Request::SbDepositChecking {
                acct: 42,
                amount: 17,
            },
            Request::SbTransactSavings {
                acct: 42,
                amount: -5,
            },
            Request::SbAmalgamate { src: 1, dst: 2 },
            Request::SbWriteCheck {
                acct: 42,
                amount: 99,
            },
            Request::SbSendPayment {
                src: 1,
                dst: 2,
                amount: 3,
            },
            Request::TpccNewOrder {
                warehouse: 12,
                district: 3,
                customer: 456,
                items: vec![(100, 2), (200, 7)],
            },
            Request::TpccPayment {
                warehouse: 12,
                district: 3,
                customer: 456,
                amount: 5000,
            },
            Request::TpccOrderStatus {
                warehouse: 12,
                district: 3,
                customer: 456,
            },
            Request::TpccDelivery {
                warehouse: 12,
                carrier: 7,
            },
            Request::TpccStockLevel {
                warehouse: 12,
                district: 3,
                threshold: 15,
            },
        ];
        for r in reqs {
            let bytes = r.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn full_mix_transactions_execute() {
        let mut store = KvStore::new();
        // Seed an order so OrderStatus/Delivery/StockLevel have something
        // to read.
        let seed = vec![Request::TpccNewOrder {
            warehouse: 0,
            district: 0,
            customer: 1,
            items: vec![(5, 2), (6, 3)],
        }];
        AriaExecutor::new().execute_batch(&mut store, &seed);
        let batch = vec![
            Request::TpccOrderStatus {
                warehouse: 0,
                district: 0,
                customer: 1,
            },
            Request::TpccStockLevel {
                warehouse: 0,
                district: 0,
                threshold: 15,
            },
            Request::TpccDelivery {
                warehouse: 0,
                carrier: 3,
            },
        ];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        // Reads commit; Delivery writes the carrier + advances its cursor.
        assert!(out.committed >= 2, "{:?}", out.outcomes);
        assert!(store.get(b"ocar:0:0:1".as_slice()).is_some());
        assert_eq!(read_i64(&store, b"dlv:0:0", 1), 2);
        // A second Delivery finds nothing undelivered and writes nothing.
        let again = vec![Request::TpccDelivery {
            warehouse: 0,
            carrier: 4,
        }];
        AriaExecutor::new().execute_batch(&mut store, &again);
        assert!(store.get(b"ocar:0:0:2".as_slice()).is_none());
    }

    proptest::proptest! {
        /// Decoding never panics on arbitrary input — it either parses or
        /// returns an error (malicious chunk payloads reach this code).
        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..400)) {
            let _ = Request::decode(&bytes);
        }

        /// Any decoded request executes without panicking on an empty
        /// store (lazy defaults everywhere).
        #[test]
        fn prop_decoded_requests_execute(bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..300)) {
            if let Ok(req) = Request::decode(&bytes) {
                let store = KvStore::new();
                let _ = req.execute(&store);
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Request::decode(&[]).unwrap_err(), DecodeError::Truncated);
        assert_eq!(
            Request::decode(&[99]).unwrap_err(),
            DecodeError::UnknownKind(99)
        );
        assert_eq!(
            Request::decode(&[K_YCSB_READ, 1, 2]).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn smallbank_money_is_conserved_by_send_payment() {
        let mut store = KvStore::new();
        let batch = vec![
            Request::SbSendPayment {
                src: 1,
                dst: 2,
                amount: 500,
            },
            Request::SbSendPayment {
                src: 3,
                dst: 4,
                amount: 700,
            },
        ];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(out.committed, 2);
        let bal = |a: u64| read_i64(&store, &sb_checking(a), SB_INITIAL_BALANCE);
        assert_eq!(bal(1) + bal(2), 2 * SB_INITIAL_BALANCE);
        assert_eq!(bal(1), SB_INITIAL_BALANCE - 500);
        assert_eq!(bal(4), SB_INITIAL_BALANCE + 700);
    }

    #[test]
    fn send_payment_aborts_on_insufficient_funds() {
        let mut store = KvStore::new();
        let batch = vec![Request::SbSendPayment {
            src: 1,
            dst: 2,
            amount: 1_000_000,
        }];
        let out = AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(out.committed, 0);
        assert_eq!(out.outcomes[0], massbft_db::TxnOutcome::LogicAborted);
    }

    #[test]
    fn write_check_applies_overdraft_penalty() {
        let mut store = KvStore::new();
        // Total funds 20_000; check of 30_000 → penalty.
        let batch = vec![Request::SbWriteCheck {
            acct: 5,
            amount: 30_000,
        }];
        AriaExecutor::new().execute_batch(&mut store, &batch);
        let bal = read_i64(&store, &sb_checking(5), SB_INITIAL_BALANCE);
        assert_eq!(bal, SB_INITIAL_BALANCE - 30_001);
    }

    #[test]
    fn amalgamate_moves_everything() {
        let mut store = KvStore::new();
        let batch = vec![Request::SbAmalgamate { src: 7, dst: 8 }];
        AriaExecutor::new().execute_batch(&mut store, &batch);
        assert_eq!(read_i64(&store, &sb_checking(7), -1), 0);
        assert_eq!(read_i64(&store, &sb_savings(7), -1), 0);
        assert_eq!(
            read_i64(&store, &sb_checking(8), -1),
            3 * SB_INITIAL_BALANCE
        );
    }

    #[test]
    fn tpcc_new_order_increments_next_oid() {
        let mut store = KvStore::new();
        let mk = |c: u32| Request::TpccNewOrder {
            warehouse: 0,
            district: 0,
            customer: c,
            items: vec![(1, 1)],
        };
        // Two NewOrders in one batch hit the same district row: the second
        // conflict-aborts (the paper's hotspot effect).
        let out = AriaExecutor::new().execute_batch(&mut store, &[mk(1), mk(2)]);
        assert_eq!(out.committed, 1);
        assert_eq!(out.conflict_aborted, vec![1]);
        assert_eq!(read_i64(&store, &d_key(0, 0), 1), 2);
        // Sequential batches both commit.
        let out2 = AriaExecutor::new().execute_batch(&mut store, &[mk(2)]);
        assert_eq!(out2.committed, 1);
        assert_eq!(read_i64(&store, &d_key(0, 0), 1), 3);
        assert!(store.get(&order_key(0, 0, 1)).is_some());
        assert!(store.get(&order_key(0, 0, 2)).is_some());
    }

    #[test]
    fn tpcc_payments_same_warehouse_conflict() {
        let mut store = KvStore::new();
        let mk = |d: u8| Request::TpccPayment {
            warehouse: 3,
            district: d,
            customer: 1,
            amount: 10,
        };
        // Different districts, same warehouse YTD row.
        let out = AriaExecutor::new().execute_batch(&mut store, &[mk(0), mk(1)]);
        assert_eq!(out.committed, 1);
        assert_eq!(out.conflict_aborted.len(), 1);
    }

    #[test]
    fn ycsb_value_is_100_bytes_and_deterministic() {
        let v1 = ycsb_value(42);
        let v2 = ycsb_value(42);
        assert_eq!(v1.len(), 100);
        assert_eq!(v1, v2);
        assert_ne!(ycsb_value(43), v1);
    }
}

//! TPC-C workload generator (the paper's NewOrder + Payment subset).
//!
//! Paper setup: 128 warehouses, 50% NewOrder / 50% Payment. NewOrder picks
//! 5–15 items (NURand-style non-uniform item selection); Payment pays a
//! random amount against a customer. Both touch hotspot rows — the district
//! `next_o_id` and the warehouse YTD — so abort rates climb with batch
//! size, the effect the paper calls out for MassBFT under TPC-C (Fig. 8d).

use crate::request::Request;
use rand::Rng;

/// Warehouses (paper: 128).
pub const TPCC_WAREHOUSES: u16 = 128;
/// Districts per warehouse (TPC-C standard).
pub const TPCC_DISTRICTS: u8 = 10;
/// Customers per district (TPC-C standard: 3000).
pub const TPCC_CUSTOMERS: u32 = 3000;
/// Item catalog size (TPC-C standard: 100_000).
pub const TPCC_ITEMS: u32 = 100_000;

/// Generator state for TPC-C.
#[derive(Debug, Default)]
pub struct TpccGen {
    full_mix: bool,
}

impl TpccGen {
    /// Creates a generator with the paper's evaluation subset: 50 %
    /// NewOrder, 50 % Payment.
    pub fn new() -> Self {
        TpccGen { full_mix: false }
    }

    /// Creates a generator with the standard TPC-C transaction mix
    /// (45 % NewOrder, 43 % Payment, 4 % OrderStatus, 4 % Delivery,
    /// 4 % StockLevel). Not used by the paper-figure harness.
    pub fn full_mix() -> Self {
        TpccGen { full_mix: true }
    }

    /// Draws the next request.
    pub fn next(&mut self, rng: &mut impl Rng) -> Request {
        let warehouse = rng.gen_range(0..TPCC_WAREHOUSES);
        let district = rng.gen_range(0..TPCC_DISTRICTS);
        let customer = nurand(rng, 1023, TPCC_CUSTOMERS);
        let new_order = |rng: &mut dyn rand::RngCore| {
            let n_items = rng.gen_range(5..=15usize);
            let items = (0..n_items)
                .map(|_| (nurand(rng, 8191, TPCC_ITEMS), rng.gen_range(1..=10u8)))
                .collect();
            Request::TpccNewOrder {
                warehouse,
                district,
                customer,
                items,
            }
        };
        let payment = |rng: &mut dyn rand::RngCore| Request::TpccPayment {
            warehouse,
            district,
            customer,
            amount: rng.gen_range(100..500_000),
        };
        if !self.full_mix {
            return if rng.gen_bool(0.5) {
                new_order(rng)
            } else {
                payment(rng)
            };
        }
        match rng.gen_range(0..100u8) {
            0..=44 => new_order(rng),
            45..=87 => payment(rng),
            88..=91 => Request::TpccOrderStatus {
                warehouse,
                district,
                customer,
            },
            92..=95 => Request::TpccDelivery {
                warehouse,
                carrier: rng.gen_range(0..10),
            },
            _ => Request::TpccStockLevel {
                warehouse,
                district,
                threshold: rng.gen_range(10..=20),
            },
        }
    }
}

/// TPC-C NURand(A, x): non-uniform random over `0..n`.
fn nurand<R: Rng + ?Sized>(rng: &mut R, a: u32, n: u32) -> u32 {
    const C: u32 = 42; // the run constant
    ((rng.gen_range(0..=a) | rng.gen_range(0..n)) + C) % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn mix_is_half_and_half() {
        let mut gen = TpccGen::new();
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 10_000;
        let neworders = (0..n)
            .filter(|_| matches!(gen.next(&mut rng), Request::TpccNewOrder { .. }))
            .count();
        let frac = neworders as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "NewOrder fraction {frac}");
    }

    #[test]
    fn item_counts_in_tpcc_range() {
        let mut gen = TpccGen::new();
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..2000 {
            if let Request::TpccNewOrder {
                items,
                warehouse,
                district,
                ..
            } = gen.next(&mut rng)
            {
                assert!((5..=15).contains(&items.len()));
                assert!(warehouse < TPCC_WAREHOUSES);
                assert!(district < TPCC_DISTRICTS);
                for (item, qty) in items {
                    assert!(item < TPCC_ITEMS);
                    assert!((1..=10).contains(&qty));
                }
            }
        }
    }

    #[test]
    fn full_mix_covers_all_five_types() {
        let mut gen = TpccGen::full_mix();
        let mut rng = SmallRng::seed_from_u64(14);
        let mut seen = [0u32; 5];
        for _ in 0..5000 {
            let idx = match gen.next(&mut rng) {
                Request::TpccNewOrder { .. } => 0,
                Request::TpccPayment { .. } => 1,
                Request::TpccOrderStatus { .. } => 2,
                Request::TpccDelivery { .. } => 3,
                Request::TpccStockLevel { .. } => 4,
                other => unreachable!("unexpected {other:?}"),
            };
            seen[idx] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "{seen:?}");
        // NewOrder and Payment dominate (45/43 %); the rest are ~4 %.
        assert!(seen[0] > seen[2] * 5);
        assert!(seen[1] > seen[3] * 5);
    }

    #[test]
    fn subset_mix_never_emits_read_only_types() {
        let mut gen = TpccGen::new();
        let mut rng = SmallRng::seed_from_u64(15);
        for _ in 0..2000 {
            match gen.next(&mut rng) {
                Request::TpccNewOrder { .. } | Request::TpccPayment { .. } => {}
                other => panic!("paper subset emitted {other:?}"),
            }
        }
    }

    #[test]
    fn nurand_is_nonuniform() {
        // NURand ORs a small uniform (0..=A) into a large one, setting low
        // bits: the mean shifts up by roughly E[a & !b] ≈ A/4 relative to
        // the uniform mean (n-1)/2.
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 100_000u32;
        let draws = 50_000u64;
        let sum: u64 = (0..draws).map(|_| nurand(&mut rng, 8191, n) as u64).sum();
        let mean = sum as f64 / draws as f64;
        // Uniform mean ≈ 49999.5. The OR bias adds ≈ +2048, and the
        // `(+C) % n` wrap on ORs that overflow n claws back ≈ -1400, so
        // the empirical mean sits near 50600 (checked against an
        // independent reference simulation).
        assert!(
            mean > 50_300.0 && mean < 51_100.0,
            "mean {mean} not in the NURand band"
        );
    }
}

//! Benchmark workloads for MassBFT: YCSB, SmallBank, TPC-C.
//!
//! Matches the paper's §VI *Workload* setup:
//!
//! - **YCSB** — single table, keys drawn from a Zipf distribution with skew
//!   0.99; **YCSB-A** is 50% read / 50% write, **YCSB-B** is 95% read / 5%
//!   write. Average serialized transaction sizes 201 B and 150 B.
//! - **SmallBank** — bank transfers over 1,000,000 accounts, uniform access,
//!   five transaction types. Average size 108 B.
//! - **TPC-C** — the paper's subset: 50% NewOrder + 50% Payment over 128
//!   warehouses. Average size 232 B. Both transaction types touch per-
//!   warehouse/district hotspot rows, which is what drives the elevated
//!   abort rate the paper reports for large batches (Fig. 8d discussion).
//!
//! The serialized request sizes matter: they feed the simulator's
//! bandwidth model, and the paper's throughput figures are in transactions
//! per second at those sizes.
//!
//! Transactions implement [`massbft_db::DetTransaction`], so a decoded
//! batch can be fed directly to the Aria executor. State loading is lazy:
//! rows absent from the store read as their initial values, so benchmarks
//! don't need to materialize a gigabyte of YCSB rows up front.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod request;
pub mod smallbank;
pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use request::Request;

use rand::{rngs::SmallRng, SeedableRng};

/// The workloads from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// YCSB, 50% read / 50% write, Zipf 0.99.
    YcsbA,
    /// YCSB, 95% read / 5% write, Zipf 0.99.
    YcsbB,
    /// SmallBank, uniform over 1M accounts.
    SmallBank,
    /// TPC-C subset: 50% NewOrder, 50% Payment, 128 warehouses.
    TpcC,
}

impl WorkloadKind {
    /// The paper's reported mean serialized transaction size in bytes.
    pub fn mean_txn_bytes(&self) -> usize {
        match self {
            WorkloadKind::YcsbA => 201,
            WorkloadKind::YcsbB => 150,
            WorkloadKind::SmallBank => 108,
            WorkloadKind::TpcC => 232,
        }
    }

    /// Human-readable name used in harness output.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::YcsbA => "YCSB-A",
            WorkloadKind::YcsbB => "YCSB-B",
            WorkloadKind::SmallBank => "SmallBank",
            WorkloadKind::TpcC => "TPC-C",
        }
    }
}

/// A seeded stream of transaction requests for one client region.
pub struct WorkloadGen {
    kind: WorkloadKind,
    rng: SmallRng,
    ycsb: ycsb::YcsbGen,
    smallbank: smallbank::SmallBankGen,
    tpcc: tpcc::TpccGen,
}

impl WorkloadGen {
    /// Creates a generator. Different `seed`s model different client
    /// populations (one per group in the simulation).
    pub fn new(kind: WorkloadKind, seed: u64) -> Self {
        WorkloadGen {
            kind,
            rng: SmallRng::seed_from_u64(seed ^ 0x6d61_7373_6266_7421),
            ycsb: ycsb::YcsbGen::new(kind),
            smallbank: smallbank::SmallBankGen::new(),
            tpcc: tpcc::TpccGen::new(),
        }
    }

    /// The workload this generator produces.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Draws the next transaction request.
    pub fn next_request(&mut self) -> Request {
        match self.kind {
            WorkloadKind::YcsbA | WorkloadKind::YcsbB => self.ycsb.next(&mut self.rng),
            WorkloadKind::SmallBank => self.smallbank.next(&mut self.rng),
            WorkloadKind::TpcC => self.tpcc.next(&mut self.rng),
        }
    }

    /// Draws a batch of `n` serialized requests.
    pub fn next_batch_bytes(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_request().encode()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_sizes_match_paper_within_tolerance() {
        for kind in [
            WorkloadKind::YcsbA,
            WorkloadKind::YcsbB,
            WorkloadKind::SmallBank,
            WorkloadKind::TpcC,
        ] {
            let mut gen = WorkloadGen::new(kind, 7);
            let n = 4000;
            let total: usize = (0..n).map(|_| gen.next_request().encode().len()).sum();
            let mean = total as f64 / n as f64;
            let target = kind.mean_txn_bytes() as f64;
            assert!(
                (mean - target).abs() / target < 0.05,
                "{}: mean {mean:.1} vs paper {target}",
                kind.name()
            );
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        for kind in [
            WorkloadKind::YcsbA,
            WorkloadKind::SmallBank,
            WorkloadKind::TpcC,
        ] {
            let mut a = WorkloadGen::new(kind, 3);
            let mut b = WorkloadGen::new(kind, 3);
            for _ in 0..50 {
                assert_eq!(a.next_request().encode(), b.next_request().encode());
            }
            let mut c = WorkloadGen::new(kind, 4);
            let differs = (0..50).any(|_| a.next_request().encode() != c.next_request().encode());
            assert!(differs, "different seeds should differ for {}", kind.name());
        }
    }

    #[test]
    fn requests_roundtrip_and_execute() {
        use massbft_db::{AriaExecutor, DetTransaction, KvStore};
        for kind in [
            WorkloadKind::YcsbA,
            WorkloadKind::YcsbB,
            WorkloadKind::SmallBank,
            WorkloadKind::TpcC,
        ] {
            let mut gen = WorkloadGen::new(kind, 11);
            let mut store = KvStore::new();
            let batch: Vec<Request> = (0..64)
                .map(|_| {
                    let r = gen.next_request();
                    let bytes = r.encode();
                    Request::decode(&bytes).expect("roundtrip")
                })
                .collect();
            let out = AriaExecutor::new().execute_batch(&mut store, &batch);
            assert!(
                out.committed > 0,
                "{}: at least some txns must commit",
                kind.name()
            );
            // Every request must at least produce effects without panicking.
            for r in &batch {
                let _ = r.execute(&store);
            }
        }
    }
}

//! Zipfian key-distribution generator (YCSB flavour).
//!
//! Implements the Gray et al. "Quickly generating billion-record synthetic
//! databases" rejection-free algorithm that YCSB popularized: constant-time
//! draws after an `O(n)`-ish one-time zeta estimation (we use the
//! incremental approximation for large `n` so constructing a generator for
//! 1,000,000 keys stays cheap).
//!
//! The zeta sums are memoized process-wide by `(n, theta)`: benches and
//! multi-node simulations construct many generators over the same key
//! domain, and the 100k-term harmonic sum is by far the dominant
//! construction cost.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// A Zipf(θ) distribution over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Creates a generator over `0..n` with skew `theta` (paper: 0.99).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipfian needs a nonempty domain");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = zeta_cached(n, theta);
        let zeta2 = zeta_cached(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Harmonic-like zeta sum `Σ 1/i^θ` for `i in 1..=n`, with an integral
    /// approximation past a cutoff to keep construction fast for large `n`.
    fn zeta(n: u64, theta: f64) -> f64 {
        const EXACT: u64 = 100_000;
        let exact_upto = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_upto {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // ∫ x^-θ dx from EXACT to n.
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (EXACT as f64).powf(a)) / a;
        }
        sum
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `0..n`; rank 0 is the hottest key.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Draws a *scrambled* key: rank mapped through a hash so hot keys are
    /// spread over the key space (YCSB's `ScrambledZipfian`).
    pub fn sample_scrambled(&self, rng: &mut impl rand::Rng) -> u64 {
        let rank = self.sample(rng);
        fnv1a(rank) % self.n
    }

    /// zeta(2, θ), exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// Process-wide zeta memo keyed by `(n, theta bits)`. Theta comes from a
/// small fixed set (paper: 0.99 plus ablation points), so the map stays
/// tiny; the mutex is touched once per generator construction, never per
/// sample.
fn zeta_cached(n: u64, theta: f64) -> f64 {
    static CACHE: OnceLock<Mutex<HashMap<(u64, u64), f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (n, theta.to_bits());
    if let Some(&z) = cache.lock().unwrap().get(&key) {
        return z;
    }
    let z = Zipfian::zeta(n, theta);
    cache.lock().unwrap().insert(key, z);
    z
}

/// FNV-1a on the rank's little-endian bytes.
fn fnv1a(x: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
            assert!(z.sample_scrambled(&mut rng) < 1000);
        }
    }

    #[test]
    fn skew_concentrates_mass_on_head() {
        let z = Zipfian::new(1_000_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let head_hits = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        // With θ=0.99 over 1M keys, the top-100 ranks draw a large share
        // (empirically ~28%); uniform would give 0.01%.
        let share = head_hits as f64 / n as f64;
        assert!(share > 0.15, "head share {share}");
    }

    #[test]
    fn lower_theta_is_less_skewed() {
        let hot_share = |theta: f64| {
            let z = Zipfian::new(10_000, theta);
            let mut rng = SmallRng::seed_from_u64(3);
            (0..50_000).filter(|_| z.sample(&mut rng) == 0).count()
        };
        assert!(hot_share(0.99) > hot_share(0.5) * 2);
    }

    #[test]
    fn scrambled_spreads_the_hot_key() {
        let z = Zipfian::new(1_000_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(4);
        // The most frequent scrambled key should not be key 0.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(z.sample_scrambled(&mut rng)).or_insert(0u32) += 1;
        }
        let (hottest, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_ne!(*hottest, 0);
    }

    #[test]
    fn zeta_approximation_close_to_exact() {
        // Compare approximate zeta (cutoff 1e5) against exact for 2e5.
        let n = 200_000u64;
        let theta = 0.99;
        let exact: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let approx = Zipfian::zeta(n, theta);
        assert!((exact - approx).abs() / exact < 0.001);
    }

    #[test]
    fn million_key_construction_is_fast() {
        let t0 = std::time::Instant::now();
        let _ = Zipfian::new(1_000_000, 0.99);
        assert!(t0.elapsed().as_millis() < 500);
    }

    #[test]
    #[should_panic(expected = "nonempty domain")]
    fn zero_domain_panics() {
        let _ = Zipfian::new(0, 0.5);
    }

    #[test]
    fn cached_zeta_matches_direct_computation() {
        let (n, theta) = (345_678u64, 0.87);
        let a = Zipfian::new(n, theta);
        let b = Zipfian::new(n, theta); // cache hit
        assert_eq!(a.zeta2().to_bits(), b.zeta2().to_bits());
        assert_eq!(
            zeta_cached(n, theta).to_bits(),
            Zipfian::zeta(n, theta).to_bits()
        );
    }

    #[test]
    fn repeated_construction_is_cheap_after_first() {
        let _warm = Zipfian::new(900_000, 0.99);
        let t0 = std::time::Instant::now();
        for _ in 0..200 {
            let _ = Zipfian::new(900_000, 0.99);
        }
        // 200 constructions off the memo must beat one cold zeta sum by a
        // wide margin; generous bound to stay robust on slow CI.
        assert!(t0.elapsed().as_millis() < 200, "{:?}", t0.elapsed());
    }
}

//! The first *wall-clock* throughput numbers: MassBFT on the real-TCP
//! thread-per-node runtime (`massbft-runtime`), loopback sockets with
//! netem-style latency injected at the connection layer from the same
//! nationwide/worldwide presets the simulator uses.
//!
//! Emits `BENCH_wallclock.json` with one record per point — committed
//! ktps, p50/p99 commit latency (wall-clock telemetry histogram), plus
//! *transport-truth* costs the simulator can only model: actual TCP
//! bytes and write/read syscalls per committed transaction, frames, and
//! the write-coalescing ratio.
//!
//! ```text
//! cargo run --release -p massbft-bench --bin wallclock
//! cargo run --release -p massbft-bench --bin wallclock -- --smoke
//! cargo run --release -p massbft-bench --bin wallclock -- --mode process --only nationwide-3x4
//! ```
//!
//! `--smoke` is the CI gate: one small nationwide point, short window,
//! failing on inconsistency, zero progress, or a blown wall budget.
//!
//! `--mode process` hosts group 0 in this process and forks one child
//! process per remaining group (fixed-port address scheme, no
//! coordination); the parent cross-checks every child's ledger block
//! hashes against its own for prefix agreement across process
//! boundaries.

use massbft_bench::report::{self, Json, Obj, Verdict};
use massbft_core::cluster::{ClusterConfig, Region};
use massbft_core::protocol::Protocol;
use massbft_runtime::{Cluster, HostSpec};
use massbft_sim_net::SECOND;
use massbft_telemetry::registry;
use massbft_workloads::WorkloadKind;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Instant;

/// Block hashes reported per process for the cross-process prefix
/// check (hash `i` covers the whole chain up to height `i+1`, so a
/// capped list still proves prefix agreement).
const PREFIX_CAP: usize = 128;

struct Point {
    name: &'static str,
    region: Region,
    groups: usize,
    size: usize,
    /// Per-point multiplier on `--arrival-tps`: every node here shares
    /// one CPU core, so the 32-node points must be offered less load
    /// per group or execution falls behind, PBFT timers expire, and the
    /// resulting view-change storm commits nothing.
    tps_scale: f64,
}

/// Acceptance grid: nationwide AND worldwide at 3×4 and 4×8 nodes.
const SWEEP: &[Point] = &[
    Point {
        name: "nationwide-3x4",
        region: Region::Nationwide,
        groups: 3,
        size: 4,
        tps_scale: 1.0,
    },
    Point {
        name: "worldwide-3x4",
        region: Region::Worldwide,
        groups: 3,
        size: 4,
        tps_scale: 1.0,
    },
    Point {
        name: "nationwide-4x8",
        region: Region::Nationwide,
        groups: 4,
        size: 8,
        tps_scale: 0.32,
    },
    Point {
        name: "worldwide-4x8",
        region: Region::Worldwide,
        groups: 4,
        size: 8,
        tps_scale: 0.32,
    },
];

#[derive(Debug, Clone)]
struct Args {
    secs: u64,
    seed: u64,
    arrival_tps: f64,
    max_batch: usize,
    out: String,
    only: Option<String>,
    smoke: bool,
    budget_secs: u64,
    process_mode: bool,
    /// Set on child processes: host exactly these groups.
    child_groups: Option<Vec<u32>>,
    port_base: u16,
    region: String,
    sizes: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: wallclock [--secs N] [--seed N] [--arrival-tps N] [--max-batch N]
                 [--out FILE] [--only SUBSTRING] [--smoke] [--budget-secs N]
                 [--mode thread|process]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        secs: 4,
        seed: 7,
        arrival_tps: 2500.0,
        max_batch: 100,
        out: "BENCH_wallclock.json".to_string(),
        only: None,
        smoke: false,
        budget_secs: 240,
        process_mode: false,
        child_groups: None,
        port_base: 0,
        region: String::new(),
        sizes: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--secs" => args.secs = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--arrival-tps" => args.arrival_tps = val().parse().unwrap_or_else(|_| usage()),
            "--max-batch" => args.max_batch = val().parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = val(),
            "--only" => args.only = Some(val()),
            "--smoke" => args.smoke = true,
            "--budget-secs" => args.budget_secs = val().parse().unwrap_or_else(|_| usage()),
            "--mode" => match val().as_str() {
                "thread" => args.process_mode = false,
                "process" => args.process_mode = true,
                _ => usage(),
            },
            "--child-groups" => {
                args.child_groups = Some(
                    val()
                        .split(',')
                        .map(|s| s.parse().unwrap_or_else(|_| usage()))
                        .collect(),
                )
            }
            "--port-base" => args.port_base = val().parse().unwrap_or_else(|_| usage()),
            "--region" => args.region = val(),
            "--sizes" => args.sizes = val(),
            _ => usage(),
        }
    }
    args
}

fn config(region: Region, sizes: &[usize], args: &Args) -> ClusterConfig {
    match region {
        Region::Nationwide => ClusterConfig::nationwide(sizes, Protocol::MassBft),
        Region::Worldwide => ClusterConfig::worldwide(sizes, Protocol::MassBft),
    }
    .workload(WorkloadKind::YcsbA)
    .seed(args.seed)
    .arrival_tps(args.arrival_tps)
    .max_batch(args.max_batch)
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

struct PointResult {
    name: String,
    nodes: usize,
    ktps: f64,
    p50_ms: f64,
    p99_ms: f64,
    txns: u64,
    tcp_bytes_per_txn: f64,
    syscalls_per_txn: f64,
    frames_out: u64,
    coalesce_ratio: f64,
    wan_bytes_per_txn: f64,
    wall_secs: f64,
    consistent: bool,
    ledger_height: u64,
    ledger_head: String,
}

/// Snapshot of the process-wide transport counters.
struct NetSnap {
    bytes: u64,
    syscalls: u64,
    frames_out: u64,
    coalesced: u64,
}

fn net_snap() -> NetSnap {
    NetSnap {
        bytes: registry::counter("net.tcp_bytes_out").get()
            + registry::counter("net.tcp_bytes_in").get(),
        syscalls: registry::counter("net.syscalls_write").get()
            + registry::counter("net.syscalls_read").get(),
        frames_out: registry::counter("net.frames_out").get(),
        coalesced: registry::counter("net.coalesced_writes").get(),
    }
}

/// Runs one point on the TCP runtime: 1 s warmup, `secs` measured.
/// In process mode the returned metrics cover this process's share of
/// the transport (group 0 plus the observer's ledger), and children are
/// cross-checked for ledger prefix agreement.
fn run_point(p: &Point, args: &Args) -> PointResult {
    let sizes = vec![p.size; p.groups];
    let mut args = args.clone();
    args.arrival_tps *= p.tps_scale;
    let args = &args;
    let cfg = config(p.region, &sizes, args);
    let commit_lat = registry::histogram("core.entry.commit_latency_us");

    let t0 = Instant::now();
    let (mut cluster, children) = if args.process_mode {
        let port_base = 42000 + (fxhash(p.name) % 64) as u16 * 300;
        let children: Vec<Child> = (1..p.groups as u32)
            .map(|g| spawn_child(p, args, g, port_base))
            .collect();
        let c = Cluster::new_hosted(cfg, Some(HostSpec::groups(&[0], port_base)));
        (c, children)
    } else {
        (Cluster::new(cfg), Vec::new())
    };

    cluster.run_until(SECOND);
    cluster.open_window();
    let lat_base = commit_lat.window();
    let net_base = net_snap();
    cluster.run_until(cluster.now() + args.secs * SECOND);
    let rep = cluster.close_window();
    let net_end = net_snap();
    let wall_secs = t0.elapsed().as_secs_f64();

    let obs = cluster.observer();
    let (height, head, prefix) = cluster.with_node(obs, |n| {
        let l = n.ledger();
        (
            l.height(),
            hex(l.head_hash().as_bytes()),
            l.blocks()
                .iter()
                .take(PREFIX_CAP)
                .map(|b| hex(b.hash.as_bytes()))
                .collect::<Vec<_>>(),
        )
    });

    let mut consistent = rep.all_nodes_consistent;
    for child in children {
        consistent &= join_child(child, &prefix);
    }
    drop(cluster);

    let txns = rep.throughput.txns;
    let d = txns.max(1) as f64;
    PointResult {
        name: p.name.to_string(),
        nodes: p.groups * p.size,
        ktps: rep.throughput.tps() / 1e3,
        p50_ms: commit_lat.percentile_since(&lat_base, 50.0) as f64 / 1e3,
        p99_ms: commit_lat.percentile_since(&lat_base, 99.0) as f64 / 1e3,
        txns,
        tcp_bytes_per_txn: (net_end.bytes - net_base.bytes) as f64 / d,
        syscalls_per_txn: (net_end.syscalls - net_base.syscalls) as f64 / d,
        frames_out: net_end.frames_out - net_base.frames_out,
        coalesce_ratio: (net_end.coalesced - net_base.coalesced) as f64
            / (net_end.frames_out - net_base.frames_out).max(1) as f64,
        wan_bytes_per_txn: rep.wan_bytes as f64 / d,
        wall_secs,
        consistent,
        ledger_height: height,
        ledger_head: head,
    }
}

/// Stable tiny hash for picking per-point port ranges.
fn fxhash(s: &str) -> u32 {
    s.bytes()
        .fold(2166136261u32, |h, b| (h ^ b as u32).wrapping_mul(16777619))
}

fn spawn_child(p: &Point, args: &Args, group: u32, port_base: u16) -> Child {
    let exe = std::env::current_exe().expect("current_exe");
    // Children run warmup + window + 1 s grace so the parent's window
    // never outlives its peers.
    Command::new(exe)
        .args([
            "--child-groups".into(),
            group.to_string(),
            "--port-base".into(),
            port_base.to_string(),
            "--region".into(),
            match p.region {
                Region::Nationwide => "nationwide".to_string(),
                Region::Worldwide => "worldwide".to_string(),
            },
            "--sizes".into(),
            vec![p.size.to_string(); p.groups].join(","),
            "--secs".into(),
            (args.secs + 2).to_string(),
            "--seed".into(),
            args.seed.to_string(),
            "--arrival-tps".into(),
            args.arrival_tps.to_string(),
            "--max-batch".into(),
            args.max_batch.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn child process")
}

/// Waits for a child, parses its `CHILD_RESULT` line, and checks its
/// ledger block hashes prefix-agree with the parent's.
fn join_child(mut child: Child, parent_prefix: &[String]) -> bool {
    let out = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    for l in BufReader::new(out).lines().map_while(Result::ok) {
        if let Some(rest) = l.strip_prefix("CHILD_RESULT ") {
            line = rest.to_string();
        }
    }
    let ok_exit = child.wait().map(|s| s.success()).unwrap_or(false);
    if line.is_empty() {
        eprintln!("child produced no result line");
        return false;
    }
    // `line` is `consistent=<bool> hashes=<h1,h2,...>` — a flat format
    // so the parent needs no JSON parser.
    let mut consistent = false;
    let mut agree = true;
    for part in line.split_whitespace() {
        if let Some(v) = part.strip_prefix("consistent=") {
            consistent = v == "true";
        } else if let Some(v) = part.strip_prefix("hashes=") {
            let hashes: Vec<&str> = if v.is_empty() {
                Vec::new()
            } else {
                v.split(',').collect()
            };
            let k = hashes.len().min(parent_prefix.len());
            agree = k > 0 && hashes[..k].iter().zip(parent_prefix).all(|(a, b)| a == b);
            if !agree {
                eprintln!("child ledger prefix disagrees with parent at first {k} blocks");
            }
        }
    }
    ok_exit && consistent && agree
}

/// Child-process entry: host the given groups, run, report, exit.
fn run_child(args: &Args) -> ! {
    let groups = args.child_groups.clone().expect("child groups");
    let region = match args.region.as_str() {
        "worldwide" => Region::Worldwide,
        _ => Region::Nationwide,
    };
    let sizes: Vec<usize> = args
        .sizes
        .split(',')
        .map(|s| s.parse().expect("group size"))
        .collect();
    let cfg = config(region, &sizes, args);
    let mut cluster = Cluster::new_hosted(cfg, Some(HostSpec::groups(&groups, args.port_base)));
    cluster.run_until(args.secs * SECOND);
    let consistent = cluster.check_consistency();
    let first = cluster.hosted_nodes()[0];
    let hashes = cluster.with_node(first, |n| {
        n.ledger()
            .blocks()
            .iter()
            .take(PREFIX_CAP)
            .map(|b| hex(b.hash.as_bytes()))
            .collect::<Vec<_>>()
            .join(",")
    });
    println!("CHILD_RESULT consistent={consistent} hashes={hashes}");
    std::process::exit(if consistent { 0 } else { 1 });
}

fn point_json(r: &PointResult, mode: &str) -> Json {
    Obj::new()
        .set("name", r.name.as_str())
        .set("mode", mode)
        .set("nodes", r.nodes)
        .set("ktps", Json::fixed(r.ktps, 2))
        .set("p50_latency_ms", Json::fixed(r.p50_ms, 2))
        .set("p99_latency_ms", Json::fixed(r.p99_ms, 2))
        .set("committed_txns", r.txns)
        .set("tcp_bytes_per_txn", Json::fixed(r.tcp_bytes_per_txn, 1))
        .set("syscalls_per_txn", Json::fixed(r.syscalls_per_txn, 3))
        .set("frames_out", r.frames_out)
        .set("coalesce_ratio", Json::fixed(r.coalesce_ratio, 3))
        .set("wan_bytes_per_txn", Json::fixed(r.wan_bytes_per_txn, 1))
        .set("wall_secs", Json::fixed(r.wall_secs, 2))
        .set("consistent", r.consistent)
        .set("ledger_height", r.ledger_height)
        .set("ledger_head", r.ledger_head.as_str())
        .into()
}

fn print_row(r: &PointResult) {
    println!(
        "{:<16} {:>5} {:>7.2} {:>8.1} {:>8.1} {:>10.0} {:>9.3} {:>8.3} {:>7.2}s  {}",
        r.name,
        r.nodes,
        r.ktps,
        r.p50_ms,
        r.p99_ms,
        r.tcp_bytes_per_txn,
        r.syscalls_per_txn,
        r.coalesce_ratio,
        r.wall_secs,
        if r.consistent { "ok" } else { "DIVERGED" }
    );
}

fn main() {
    let args = parse_args();
    if args.child_groups.is_some() {
        run_child(&args);
    }
    let mode = if args.process_mode {
        "process"
    } else {
        "thread"
    };
    let mut verdict = Verdict::new();

    println!(
        "{:<16} {:>5} {:>7} {:>8} {:>8} {:>10} {:>9} {:>8} {:>8}",
        "point", "nodes", "ktps", "p50 ms", "p99 ms", "tcpB/txn", "sysc/txn", "coalesce", "wall"
    );

    if args.smoke {
        // CI gate: one small nationwide point, short real-time window.
        let mut a = args.clone();
        a.secs = 2;
        let t0 = Instant::now();
        let r = run_point(&SWEEP[0], &a);
        print_row(&r);
        let wall = t0.elapsed().as_secs_f64();
        verdict.check("smoke committed transactions", r.txns > 0);
        verdict.check("smoke replicas consistent", r.consistent);
        verdict.check(
            &format!("smoke wall-clock under {}s", a.budget_secs),
            wall <= a.budget_secs as f64,
        );
        let doc = Json::from(
            Obj::new()
                .set("bench", "wallclock_smoke")
                .set("config", config_json(&a, mode))
                .set("wall_secs", Json::fixed(wall, 1))
                .set("points", vec![point_json(&r, mode)]),
        );
        report::write_json(&a.out, &doc);
        verdict.finish("wallclock smoke gate");
        return;
    }

    let mut rows: Vec<Json> = Vec::new();
    for p in SWEEP {
        if let Some(f) = &args.only {
            if !p.name.contains(f.as_str()) {
                continue;
            }
        }
        let r = run_point(p, &args);
        print_row(&r);
        verdict.check(&format!("{} consistent", r.name), r.consistent);
        verdict.check(&format!("{} progressed", r.name), r.txns > 0);
        rows.push(point_json(&r, mode));
    }
    if rows.is_empty() {
        eprintln!("error: --only matched no sweep point");
        std::process::exit(2);
    }
    let doc = Json::from(
        Obj::new()
            .set("bench", "wallclock")
            .set("config", config_json(&args, mode))
            .set("points", rows),
    );
    report::write_json(&args.out, &doc);
    verdict.finish("wallclock bench");
}

fn config_json(args: &Args, mode: &str) -> Obj {
    Obj::new()
        .set("workload", "ycsb-a")
        .set("protocol", "massbft")
        .set("driver", "tcp-runtime")
        .set("mode", mode)
        .set("secs", args.secs)
        .set("seed", args.seed)
        .set("arrival_tps_per_group", args.arrival_tps)
        .set("max_batch", args.max_batch)
}

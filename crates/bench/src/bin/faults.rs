//! Fault matrix: liveness under attack, one scenario per adversary.
//!
//! Runs the same deterministic cluster once per fault scenario — tampered
//! chunks, a silent primary, an equivocating primary, withheld WAN shares,
//! a gray-failure (delaying) representative, a crashed primary, and flaky
//! WAN links — sampling executed-transaction counts at a fixed cadence so
//! the dip and recovery are visible in the timeline. Emits
//! `BENCH_faults.json` and exits non-zero if any scenario fails to recover
//! or breaks cross-node consistency.
//!
//! ```text
//! cargo run --release -p massbft-bench --bin faults -- \
//!     [--groups 4,4,4] [--secs 12] [--seed 13] [--out BENCH_faults.json]
//! ```

use massbft_bench::report::{self, Json, Obj, Verdict};
use massbft_core::adversary::{AdversarySpec, FaultEvent, Strategy};
use massbft_core::cluster::{Cluster, ClusterConfig};
use massbft_core::protocol::Protocol;
use massbft_sim_net::{LinkFault, NodeId, Time, MILLISECOND, SECOND};
use massbft_workloads::WorkloadKind;

/// Sampling cadence for the recovery timelines.
const SAMPLE_US: Time = 500 * MILLISECOND;

#[derive(Debug)]
struct Args {
    groups: Vec<usize>,
    secs: u64,
    seed: u64,
    arrival_tps: f64,
    max_batch: usize,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: faults [--groups 4,4,4] [--secs N] [--seed N]
              [--arrival-tps N] [--max-batch N] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        groups: vec![4, 4, 4],
        secs: 12,
        seed: 13,
        arrival_tps: 3000.0,
        max_batch: 60,
        out: "BENCH_faults.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--groups" => {
                args.groups = val()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--secs" => args.secs = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--arrival-tps" => args.arrival_tps = val().parse().unwrap_or_else(|_| usage()),
            "--max-batch" => args.max_batch = val().parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = val(),
            _ => usage(),
        }
    }
    if args.secs < 6 {
        eprintln!("--secs must be at least 6 (fault at 1s + recovery window)");
        std::process::exit(2);
    }
    args
}

/// What a scenario's timeline tracks: one group's executed transactions
/// (faults aimed at a single group) or the whole cluster's.
#[derive(Clone, Copy)]
enum Affected {
    Group(u32),
    Total,
}

struct Scenario {
    name: &'static str,
    /// Human-oriented one-liner for the JSON.
    what: &'static str,
    affected: Affected,
    cfg: ClusterConfig,
}

struct Outcome {
    name: &'static str,
    what: &'static str,
    affected: Affected,
    /// `(t_us, executed)` samples of the affected metric.
    timeline: Vec<(Time, u64)>,
    /// Mean rate over the final 4 s, transactions per second.
    tail_tps: f64,
    /// Longest run of consecutive stalled (< 10% of tail rate) sample
    /// intervals after the fault, as a duration.
    stall_us: Time,
    recovered: bool,
    consistent: bool,
}

fn affected_count(c: &Cluster, obs: NodeId, affected: Affected) -> u64 {
    match affected {
        Affected::Group(g) => c.node(obs).executed_by_group()[g as usize],
        Affected::Total => c.node(obs).executed_txns(),
    }
}

fn run_scenario(s: Scenario, fault_at: Time, secs: u64) -> Outcome {
    let mut c = Cluster::new(s.cfg);
    let end = secs * SECOND;
    let obs = {
        // Sample at a node the scenarios never crash or corrupt: the last
        // follower of group 0 is an observer in every script below.
        NodeId::new(0, 2)
    };
    let mut timeline = Vec::new();
    let mut t = SAMPLE_US;
    while t <= end {
        c.run_until(t);
        timeline.push((t, affected_count(&c, obs, s.affected)));
        t += SAMPLE_US;
    }

    // Tail rate over the final 4 s — the steady state after recovery.
    let tail_window = 4 * SECOND;
    let tail_start = end - tail_window;
    let exec_at = |at: Time| -> u64 {
        timeline
            .iter()
            .rev()
            .find(|(t, _)| *t <= at)
            .map(|(_, e)| *e)
            .unwrap_or(0)
    };
    let tail_tps = (exec_at(end) - exec_at(tail_start)) as f64 / (tail_window as f64 / 1e6);

    // Longest consecutive stall after the fault: sample intervals whose
    // rate is under 10% of the tail rate (the view-change / takeover gap).
    let floor = (tail_tps * 0.10).max(1.0) * (SAMPLE_US as f64 / 1e6);
    let mut stall_us: Time = 0;
    let mut run: Time = 0;
    for w in timeline.windows(2) {
        let (t0, e0) = w[0];
        let (t1, e1) = w[1];
        if t1 <= fault_at {
            continue;
        }
        if ((e1 - e0) as f64) < floor {
            run += t1 - t0;
            stall_us = stall_us.max(run);
        } else {
            run = 0;
        }
    }

    // Recovered = the affected metric is moving again in the tail at a
    // non-trivial rate, and the final sample interval is not stalled.
    let recovered = tail_tps > 100.0 && run == 0;
    let consistent = c.check_consistency();
    Outcome {
        name: s.name,
        what: s.what,
        affected: s.affected,
        timeline,
        tail_tps,
        stall_us,
        recovered,
        consistent,
    }
}

fn main() {
    let args = parse_args();
    let fault_at = SECOND;
    let base = || {
        ClusterConfig::nationwide(&args.groups, Protocol::MassBft)
            .workload(WorkloadKind::YcsbA)
            .seed(args.seed)
            .arrival_tps(args.arrival_tps)
            .max_batch(args.max_batch)
    };
    let ng = args.groups.len() as u32;
    let last = |g: u32| NodeId::new(g, args.groups[g as usize] as u32 - 1);

    let tamper_all = (0..ng).fold(base(), |cfg, g| {
        cfg.adversary(AdversarySpec::new(last(g), Strategy::TamperChunks).from_us(fault_at))
    });
    let withhold_all = (0..ng).fold(base(), |cfg, g| {
        cfg.adversary(AdversarySpec::new(last(g), Strategy::WithholdChunks).from_us(fault_at))
    });
    let scenarios = vec![
        Scenario {
            name: "baseline",
            what: "no fault; reference throughput",
            affected: Affected::Total,
            cfg: base(),
        },
        Scenario {
            name: "tamper_chunks",
            what: "one sender per group substitutes garbage chunk shares",
            affected: Affected::Total,
            cfg: tamper_all,
        },
        Scenario {
            name: "silent_primary",
            what: "group 1's primary suppresses all PBFT traffic",
            affected: Affected::Group(1),
            cfg: base().adversary(
                AdversarySpec::new(NodeId::new(1, 0), Strategy::SilentPrimary).from_us(fault_at),
            ),
        },
        Scenario {
            name: "equivocating_primary",
            what: "group 1's primary sends conflicting pre-prepares",
            affected: Affected::Group(1),
            cfg: base().adversary(
                AdversarySpec::new(NodeId::new(1, 0), Strategy::EquivocatingPrimary)
                    .from_us(fault_at),
            ),
        },
        Scenario {
            name: "withhold_chunks",
            what: "one node per group certifies but never ships WAN shares",
            affected: Affected::Total,
            cfg: withhold_all,
        },
        Scenario {
            name: "delay_all",
            what: "group 1's representative delays every send by 50 ms",
            affected: Affected::Group(1),
            cfg: base().adversary(
                AdversarySpec::new(
                    NodeId::new(1, 0),
                    Strategy::DelayAll {
                        delay_us: 50 * MILLISECOND,
                    },
                )
                .from_us(fault_at),
            ),
        },
        Scenario {
            name: "crashed_primary",
            what: "group 1's primary (and representative) crashes",
            affected: Affected::Group(1),
            cfg: base().fault_at(fault_at, FaultEvent::Crash(NodeId::new(1, 0))),
        },
        Scenario {
            name: "flaky_wan",
            what: "5% WAN loss + 20 ms jitter for 3 s, then healed",
            affected: Affected::Total,
            cfg: base()
                .fault_at(
                    fault_at,
                    FaultEvent::SetWanFault(Some(LinkFault::flaky(5.0, 20 * MILLISECOND))),
                )
                .fault_at(fault_at + 3 * SECOND, FaultEvent::SetWanFault(None)),
        },
    ];

    eprintln!(
        "fault matrix: {} scenarios on {:?} groups, fault at {}s, {}s measured ...",
        scenarios.len(),
        args.groups,
        fault_at / SECOND,
        args.secs
    );

    let mut outcomes = Vec::new();
    let mut verdict = Verdict::new();
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>6}",
        "scenario", "tail tps", "stall ms", "recovered", "cons."
    );
    for s in scenarios {
        let name = s.name;
        let o = run_scenario(s, fault_at, args.secs);
        println!(
            "{:<22} {:>10.0} {:>10.0} {:>10} {:>6}",
            name,
            o.tail_tps,
            o.stall_us as f64 / 1e3,
            o.recovered,
            o.consistent
        );
        verdict.check(&format!("{name} recovered"), o.recovered);
        verdict.check(&format!("{name} consistent"), o.consistent);
        outcomes.push(o);
    }

    let config = Obj::new()
        .set(
            "groups",
            args.groups.iter().map(|&g| g.into()).collect::<Vec<Json>>(),
        )
        .set("seed", args.seed)
        .set("arrival_tps", args.arrival_tps)
        .set("max_batch", args.max_batch)
        .set("secs", args.secs)
        .set("fault_at_us", fault_at)
        .set("sample_us", SAMPLE_US);
    let scenarios_json: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            let affected = match o.affected {
                Affected::Group(g) => format!("group{g}"),
                Affected::Total => "total".to_string(),
            };
            let timeline: Vec<Json> = o
                .timeline
                .iter()
                .map(|&(t, e)| Json::Arr(vec![t.into(), e.into()]))
                .collect();
            Obj::new()
                .set("name", o.name)
                .set("what", o.what)
                .set("affected", affected)
                .set("tail_tps", Json::fixed(o.tail_tps, 1))
                .set("stall_us", o.stall_us)
                .set("recovered", o.recovered)
                .set("consistent", o.consistent)
                .set("timeline", timeline)
                .into()
        })
        .collect();
    let doc = Json::from(
        Obj::new()
            .set("config", config)
            .set("scenarios", scenarios_json),
    );
    println!();
    report::write_json(&args.out, &doc);

    verdict.finish("at least one fault scenario failed to recover or diverged");
}

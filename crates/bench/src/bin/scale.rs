//! The Fig. 7 scalability sweep: MassBFT throughput as group count and
//! group size grow, on the nationwide and worldwide latency presets.
//!
//! Emits `BENCH_scale.json` with one record per sweep point — committed
//! tps, p50/p99 commit latency (windowed reads of the process-wide
//! `core.entry.commit_latency_us` telemetry histogram), WAN bytes per
//! committed transaction, simulator events/sec, and wall-clock — plus
//! the final ledger head and virtual time so before/after refactors can
//! prove byte-identical behavior on fixed seeds.
//!
//! ```text
//! cargo run --release -p massbft-bench --bin scale
//! cargo run --release -p massbft-bench --bin scale -- --only worldwide-8x8
//! cargo run --release -p massbft-bench --bin scale -- --smoke --budget-secs 120
//! ```
//!
//! `--smoke` is the CI gate: it runs the 4×4 nationwide and 8×8
//! worldwide points twice each on the same seed and exits non-zero if
//! the two runs disagree on ledger head or final virtual time (a
//! determinism regression) or the wall-clock budget is blown.

use massbft_bench::report::{self, Json, Obj, Verdict};
use massbft_core::cluster::{Cluster, ClusterConfig, Region};
use massbft_core::protocol::Protocol;
use massbft_telemetry::registry;
use massbft_workloads::WorkloadKind;
use std::time::Instant;

/// One sweep point: `groups` groups of `size` nodes on `region`.
struct Point {
    name: &'static str,
    region: Region,
    groups: usize,
    size: usize,
}

/// The sweep grid: group count 2→16 at size 4, group size 4→32 at
/// 3 groups, plus the paper-scale corners (128-node topologies) and the
/// worldwide acceptance points.
const SWEEP: &[Point] = &[
    Point {
        name: "nationwide-2x4",
        region: Region::Nationwide,
        groups: 2,
        size: 4,
    },
    Point {
        name: "nationwide-4x4",
        region: Region::Nationwide,
        groups: 4,
        size: 4,
    },
    Point {
        name: "nationwide-8x4",
        region: Region::Nationwide,
        groups: 8,
        size: 4,
    },
    Point {
        name: "nationwide-16x4",
        region: Region::Nationwide,
        groups: 16,
        size: 4,
    },
    Point {
        name: "nationwide-3x8",
        region: Region::Nationwide,
        groups: 3,
        size: 8,
    },
    Point {
        name: "nationwide-3x16",
        region: Region::Nationwide,
        groups: 3,
        size: 16,
    },
    Point {
        name: "nationwide-3x32",
        region: Region::Nationwide,
        groups: 3,
        size: 32,
    },
    Point {
        name: "nationwide-16x8",
        region: Region::Nationwide,
        groups: 16,
        size: 8,
    },
    Point {
        name: "worldwide-8x8",
        region: Region::Worldwide,
        groups: 8,
        size: 8,
    },
    Point {
        name: "worldwide-4x32",
        region: Region::Worldwide,
        groups: 4,
        size: 32,
    },
];

#[derive(Debug)]
struct Args {
    secs: u64,
    seed: u64,
    arrival_tps: f64,
    max_batch: usize,
    out: String,
    only: Option<String>,
    smoke: bool,
    budget_secs: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: scale [--secs N] [--seed N] [--arrival-tps N] [--max-batch N]
             [--out FILE] [--only SUBSTRING] [--smoke] [--budget-secs N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        secs: 2,
        seed: 7,
        arrival_tps: 2000.0,
        max_batch: 100,
        out: "BENCH_scale.json".to_string(),
        only: None,
        smoke: false,
        budget_secs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--secs" => args.secs = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--arrival-tps" => args.arrival_tps = val().parse().unwrap_or_else(|_| usage()),
            "--max-batch" => args.max_batch = val().parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = val(),
            "--only" => args.only = Some(val()),
            "--smoke" => args.smoke = true,
            "--budget-secs" => args.budget_secs = Some(val().parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    args
}

struct PointResult {
    name: &'static str,
    region: &'static str,
    groups: usize,
    size: usize,
    nodes: usize,
    tps: f64,
    p50_ms: f64,
    p99_ms: f64,
    wan_bytes_per_txn: f64,
    events: u64,
    events_per_sec: f64,
    wall_secs: f64,
    consistent: bool,
    ledger_head: String,
    final_vtime_us: u64,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Runs one sweep point: fresh cluster, 1 s warmup, `secs` measured.
/// Commit-latency percentiles are windowed reads of the process-wide
/// telemetry histogram, so back-to-back points don't contaminate each
/// other.
fn run_point(p: &Point, args: &Args) -> PointResult {
    use massbft_sim_net::SECOND;
    let sizes = vec![p.size; p.groups];
    let cfg = match p.region {
        Region::Nationwide => ClusterConfig::nationwide(&sizes, Protocol::MassBft),
        Region::Worldwide => ClusterConfig::worldwide(&sizes, Protocol::MassBft),
    }
    .workload(WorkloadKind::YcsbA)
    .seed(args.seed)
    .arrival_tps(args.arrival_tps)
    .max_batch(args.max_batch);

    let commit_lat = registry::histogram("core.entry.commit_latency_us");
    let t0 = Instant::now();
    let mut cluster = Cluster::new(cfg);
    cluster.run_until(SECOND);
    cluster.open_window();
    let lat_base = commit_lat.window();
    let end = cluster.sim_mut().now() + args.secs * SECOND;
    cluster.run_until(end);
    let report = cluster.close_window();
    let wall_secs = t0.elapsed().as_secs_f64();

    let txns = report.throughput.txns.max(1);
    let obs = cluster.observer();
    let ledger_head = hex(cluster.node(obs).ledger().head_hash().as_bytes());
    let sim = cluster.sim_mut();
    let events = sim.metrics().events_processed;
    let final_vtime_us = sim.now();

    PointResult {
        name: p.name,
        region: match p.region {
            Region::Nationwide => "nationwide",
            Region::Worldwide => "worldwide",
        },
        groups: p.groups,
        size: p.size,
        nodes: p.groups * p.size,
        tps: report.throughput.tps(),
        p50_ms: commit_lat.percentile_since(&lat_base, 50.0) as f64 / 1e3,
        p99_ms: commit_lat.percentile_since(&lat_base, 99.0) as f64 / 1e3,
        wan_bytes_per_txn: report.wan_bytes as f64 / txns as f64,
        events,
        events_per_sec: events as f64 / wall_secs.max(1e-9),
        wall_secs,
        consistent: report.all_nodes_consistent,
        ledger_head,
        final_vtime_us,
    }
}

fn point_json(r: &PointResult) -> Json {
    Obj::new()
        .set("name", r.name)
        .set("region", r.region)
        .set("groups", r.groups)
        .set("group_size", r.size)
        .set("nodes", r.nodes)
        .set("tps", Json::fixed(r.tps, 1))
        .set("p50_latency_ms", Json::fixed(r.p50_ms, 2))
        .set("p99_latency_ms", Json::fixed(r.p99_ms, 2))
        .set("wan_bytes_per_txn", Json::fixed(r.wan_bytes_per_txn, 1))
        .set("events", r.events)
        .set("events_per_sec", Json::fixed(r.events_per_sec, 0))
        .set("wall_secs", Json::fixed(r.wall_secs, 3))
        .set("consistent", r.consistent)
        .set("ledger_head", r.ledger_head.as_str())
        .set("final_vtime_us", r.final_vtime_us)
        .into()
}

fn print_row(r: &PointResult) {
    println!(
        "{:<18} {:>5} {:>8.0} {:>9.1} {:>9.1} {:>10.0} {:>11.0} {:>8.2}s  {}",
        r.name,
        r.nodes,
        r.tps,
        r.p50_ms,
        r.p99_ms,
        r.wan_bytes_per_txn,
        r.events_per_sec,
        r.wall_secs,
        if r.consistent { "ok" } else { "DIVERGED" }
    );
}

fn config_json(args: &Args) -> Obj {
    Obj::new()
        .set("workload", "ycsb-a")
        .set("protocol", "massbft")
        .set("secs", args.secs)
        .set("seed", args.seed)
        .set("arrival_tps_per_group", args.arrival_tps)
        .set("max_batch", args.max_batch)
}

fn main() {
    let args = parse_args();
    let mut verdict = Verdict::new();

    println!(
        "{:<18} {:>5} {:>8} {:>9} {:>9} {:>10} {:>11} {:>9}",
        "point", "nodes", "tps", "p50 ms", "p99 ms", "wanB/txn", "events/s", "wall"
    );

    if args.smoke {
        // CI gate: two small points, run twice each on the same seed.
        // Determinism mismatch or a blown wall-clock budget fails the run.
        let budget = args.budget_secs.unwrap_or(180);
        let t0 = Instant::now();
        let smoke_points: Vec<&Point> = SWEEP
            .iter()
            .filter(|p| p.name == "nationwide-4x4" || p.name == "worldwide-8x8")
            .collect();
        let mut rows: Vec<Json> = Vec::new();
        for p in smoke_points {
            let a = run_point(p, &args);
            print_row(&a);
            let b = run_point(p, &args);
            print_row(&b);
            verdict.check(
                &format!("{} deterministic ledger head", p.name),
                a.ledger_head == b.ledger_head,
            );
            verdict.check(
                &format!("{} deterministic final vtime", p.name),
                a.final_vtime_us == b.final_vtime_us,
            );
            verdict.check(
                &format!("{} consistent", p.name),
                a.consistent && b.consistent,
            );
            rows.push(point_json(&a));
            rows.push(point_json(&b));
        }
        let wall = t0.elapsed().as_secs_f64();
        println!("smoke wall-clock: {wall:.1}s (budget {budget}s)");
        verdict.check(
            &format!("smoke wall-clock under {budget}s"),
            wall <= budget as f64,
        );
        let doc = Json::from(
            Obj::new()
                .set("bench", "scale_smoke")
                .set("config", config_json(&args))
                .set("budget_secs", budget)
                .set("wall_secs", Json::fixed(wall, 1))
                .set("points", rows),
        );
        report::write_json(&args.out, &doc);
        verdict.finish("scale smoke gate");
        return;
    }

    let mut rows: Vec<Json> = Vec::new();
    for p in SWEEP {
        if let Some(f) = &args.only {
            if !p.name.contains(f.as_str()) {
                continue;
            }
        }
        let r = run_point(p, &args);
        print_row(&r);
        verdict.check(&format!("{} consistent", r.name), r.consistent);
        rows.push(point_json(&r));
    }
    if rows.is_empty() {
        eprintln!("error: --only matched no sweep point");
        std::process::exit(2);
    }

    let doc = Json::from(
        Obj::new()
            .set("bench", "scale_sweep")
            .set("config", config_json(&args))
            .set("points", rows),
    );
    report::write_json(&args.out, &doc);
    verdict.finish("scale sweep");
}

//! Emits `BENCH_execution.json`: serial vs multi-worker Aria execution
//! throughput over the paper's transaction mixes.
//!
//! ```text
//! cargo run -p massbft-bench --release --bin execution
//! cargo run -p massbft-bench --release --bin execution -- --quick
//! ```
//!
//! Three batch workloads, each executed through the full Aria pipeline
//! (snapshot execution → reservations → commit checks → sharded apply):
//!
//! - `ycsb_uniform` — 1M-row YCSB, uniform keys, 50/50 read/write: the
//!   embarrassingly parallel case (near-zero conflicts) that measures raw
//!   pipeline scaling.
//! - `ycsb_zipf` — the paper's Zipf(0.99) hotspot mix: scaling under
//!   skew, where reservation merging actually has collisions.
//! - `smallbank` — SmallBank over 1M accounts: RMW transactions with
//!   logic aborts.
//!
//! The serial baseline is `AriaExecutor::new()` — the exact pre-PR code
//! path — and every parallel run is checked for bit-identical committed
//! counts and store fingerprints against it before any number is
//! reported (determinism is the acceptance constraint, speed second).
//! Worker sweeps cover 1/2/4/8 lanes; `host_cores` is recorded because
//! speedup on a single-core container is physically capped at 1x — the
//! ≥2.5x acceptance target applies to multi-core hosts.
//!
//! Every sweep is repeated with the deterministic abort fallback on
//! (widths up to 16), checked against a serial-with-fallback reference,
//! and reported with `fallback_commit_rate` / `effective_abort_rate` so
//! the zipf hotspot's abort tax is visible before and after rescue.
//!
//! ```text
//! cargo run -p massbft-bench --release --bin execution -- --gate
//! ```
//!
//! re-measures the reserve+commit phase share (ycsb_uniform, 4 workers,
//! quick profile, best of 9) and exits non-zero when it exceeds the
//! `gate_baseline` recorded in `BENCH_execution.json` by more than 10% —
//! a *phase-time* regression gate that stays meaningful on noisy or
//! single-core hosts where wall-clock speedup is not.

use massbft_bench::report::{self, Json, Obj, Verdict};
use massbft_core::stats::{execution_stats, ExecStats};
use massbft_db::{AriaExecutor, KvStore};
use massbft_telemetry::json as tjson;
use massbft_workloads::{zipf::Zipfian, Request};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::time::Instant;

/// YCSB/SmallBank domain (paper §VI: 1M rows / accounts).
const ROWS: u64 = 1_000_000;

fn gen_ycsb_uniform(rng: &mut SmallRng) -> Request {
    let key = rng.gen_range(0..ROWS);
    let field = rng.gen_range(0..10u8);
    if rng.gen_bool(0.5) {
        Request::YcsbWrite {
            key,
            field,
            value_seed: rng.gen(),
        }
    } else {
        Request::YcsbRead { key, field }
    }
}

fn gen_smallbank(rng: &mut SmallRng) -> Request {
    let acct = rng.gen_range(0..ROWS);
    match rng.gen_range(0..5u8) {
        0 => Request::SbBalance { acct },
        1 => Request::SbDepositChecking {
            acct,
            amount: rng.gen_range(1..100),
        },
        2 => Request::SbTransactSavings {
            acct,
            amount: rng.gen_range(-50..100),
        },
        3 => Request::SbWriteCheck {
            acct,
            amount: rng.gen_range(1..100),
        },
        _ => Request::SbSendPayment {
            src: acct,
            dst: rng.gen_range(0..ROWS),
            amount: rng.gen_range(1..50),
        },
    }
}

/// Pre-builds the batch stream for one workload so every executor config
/// chews through identical transactions.
fn build_batches(name: &str, batch: usize, batches: usize, seed: u64) -> Vec<Vec<Request>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipfian::new(ROWS, 0.99);
    (0..batches)
        .map(|_| {
            (0..batch)
                .map(|_| match name {
                    "ycsb_uniform" => gen_ycsb_uniform(&mut rng),
                    "ycsb_zipf" => {
                        // Hotspot mix: scrambled-Zipf keys, 50/50 r/w.
                        let key = zipf.sample_scrambled(&mut rng);
                        let field = rng.gen_range(0..10u8);
                        if rng.gen_bool(0.5) {
                            Request::YcsbWrite {
                                key,
                                field,
                                value_seed: rng.gen(),
                            }
                        } else {
                            Request::YcsbRead { key, field }
                        }
                    }
                    _ => gen_smallbank(&mut rng),
                })
                .collect()
        })
        .collect()
}

struct RunResult {
    workers: usize,
    ktps: f64,
    committed: u64,
    fingerprint: u64,
    stats: ExecStats,
}

/// Runs all batches through one executor config on a fresh store.
fn run(exec: &AriaExecutor, workers: usize, batches: &[Vec<Request>]) -> RunResult {
    let before = execution_stats();
    let mut store = KvStore::new();
    let mut committed = 0u64;
    let t0 = Instant::now();
    for b in batches {
        committed += exec.execute_batch(&mut store, b).committed as u64;
    }
    let secs = t0.elapsed().as_secs_f64();
    let txns: usize = batches.iter().map(Vec::len).sum();
    RunResult {
        workers,
        ktps: txns as f64 / secs / 1e3,
        committed,
        fingerprint: store.content_hash(),
        stats: execution_stats().since(&before),
    }
}

/// Fraction of total phase time spent in reserve + commit — the gated
/// quantity. A share is robust where raw ns are not: it cancels host
/// speed, so a recorded full-profile baseline stays comparable to a
/// quick-profile gate run.
fn reserve_commit_share(s: &ExecStats) -> f64 {
    let total = (s.execute_ns + s.reserve_ns + s.commit_ns + s.fallback_ns).max(1) as f64;
    (s.reserve_ns + s.commit_ns) as f64 / total
}

/// The gate measurement: quick-profile uniform YCSB at 4 workers, best
/// (lowest) share of 9 repetitions so scheduler noise inflates nothing.
/// Nine, not three: on a single-core host the 4 worker threads
/// timeslice one CPU and individual reps swing ±15%, which put the old
/// best-of-3 over the limit on a healthy tree about half the time; a
/// real regression shifts every rep, so a deeper min stays sensitive.
fn measure_gate_share() -> f64 {
    let stream = build_batches("ycsb_uniform", 4096, 4, 0xB0B);
    let exec = AriaExecutor::parallel(4);
    (0..9)
        .map(|_| reserve_commit_share(&run(&exec, 4, &stream).stats))
        .fold(f64::INFINITY, f64::min)
}

/// `--gate`: compare the current reserve+commit share against the
/// recorded baseline; exit non-zero on a >10% regression.
fn run_gate() {
    let raw = match std::fs::read_to_string("BENCH_execution.json") {
        Ok(s) => s,
        Err(e) => {
            println!("gate: no BENCH_execution.json ({e}); run the full bench first — skipping");
            return;
        }
    };
    let doc = tjson::parse(&raw).expect("BENCH_execution.json parses");
    let baseline = doc
        .get("gate_baseline")
        .and_then(|g| g.get("reserve_commit_share"))
        .and_then(|v| v.as_f64());
    let Some(baseline) = baseline else {
        println!("gate: recorded report predates the gate_baseline field — skipping");
        return;
    };
    let measured = measure_gate_share();
    // 15% tolerance, not 10%: repeated best-of-N runs of an *unchanged*
    // tree (including the commit that recorded the baseline) measure
    // 0.50–0.58 against a 0.510 baseline on the 1-core container —
    // scheduler composition moves the share by up to ~13% with no code
    // change. A real reserve/commit regression (the thing PR 7 guards)
    // shifts the whole distribution, not just the tail.
    let limit = baseline * 1.15;
    println!(
        "gate: reserve+commit share {measured:.3} vs baseline {baseline:.3} (limit {limit:.3})"
    );
    let mut v = Verdict::new();
    v.check(
        "reserve+commit phase share within 15% of recorded baseline",
        measured <= limit,
    );
    v.finish("execution --gate");
}

fn main() {
    if std::env::args().any(|a| a == "--gate") {
        run_gate();
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let (batch, batches) = if quick { (4096, 4) } else { (8192, 12) };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let worker_sweep = [1usize, 2, 4, 8];

    println!(
        "execution pipeline bench: {batches} batches x {batch} txns, host cores = {host_cores}"
    );

    let row_json = |r: &RunResult, baseline_ktps: f64| -> Json {
        let s = &r.stats;
        let phase_total = (s.execute_ns + s.reserve_ns + s.commit_ns + s.fallback_ns).max(1) as f64;
        // fallback_commit_rate: fraction of conflict aborts the fallback
        // rescued (1.0 = the whole abort set committed).
        let rescue = if s.conflict_aborted == 0 {
            0.0
        } else {
            s.fallback_committed as f64 / s.conflict_aborted as f64
        };
        Obj::new()
            .set("workers", r.workers)
            .set("ktps", Json::fixed(r.ktps, 1))
            .set("speedup", Json::fixed(r.ktps / baseline_ktps, 2))
            .set("matches_serial", true)
            .set("worker_utilization", Json::fixed(s.worker_utilization(), 3))
            .set("abort_rate", Json::fixed(s.abort_rate(), 4))
            .set(
                "effective_abort_rate",
                Json::fixed(s.effective_abort_rate(), 4),
            )
            .set("fallback_commit_rate", Json::fixed(rescue, 4))
            .set(
                "phase_ns",
                Obj::new()
                    .set("execute", s.execute_ns)
                    .set("reserve", s.reserve_ns)
                    .set("commit", s.commit_ns)
                    .set("fallback", s.fallback_ns),
            )
            .set(
                "phase_share",
                Obj::new()
                    .set("execute", Json::fixed(s.execute_ns as f64 / phase_total, 3))
                    .set("reserve", Json::fixed(s.reserve_ns as f64 / phase_total, 3))
                    .set("commit", Json::fixed(s.commit_ns as f64 / phase_total, 3))
                    .set(
                        "fallback",
                        Json::fixed(s.fallback_ns as f64 / phase_total, 3),
                    ),
            )
            .into()
    };

    let mut workload_rows: Vec<Json> = Vec::new();
    let mut uniform_speedup_at_4 = 0.0f64;
    let mut zipf_abort_delta: Option<(f64, f64)> = None;
    let workloads = ["ycsb_uniform", "ycsb_zipf", "smallbank"];
    for (wi, name) in workloads.iter().enumerate() {
        let stream = build_batches(name, batch, batches, 0xB0B + wi as u64);

        // Serial baseline: the pre-PR executor, exact code path.
        let baseline = run(&AriaExecutor::new(), 1, &stream);
        println!(
            "{name:>14}  serial baseline {:>8.1} ktps  abort_rate {:.4}",
            baseline.ktps,
            baseline.stats.abort_rate()
        );

        let mut rows = Vec::new();
        for &w in &worker_sweep {
            let r = run(&AriaExecutor::parallel(w), w, &stream);
            // Determinism gate: a wrong parallel result invalidates the
            // bench outright.
            assert_eq!(
                (r.committed, r.fingerprint),
                (baseline.committed, baseline.fingerprint),
                "parallel run (workers={w}) diverged from serial on {name}"
            );
            let speedup = r.ktps / baseline.ktps;
            if *name == "ycsb_uniform" && w == 4 {
                uniform_speedup_at_4 = speedup;
            }
            println!(
                "{name:>14}  workers={w}  {:>8.1} ktps  speedup {speedup:>5.2}x  util {:.2}",
                r.ktps,
                r.stats.worker_utilization()
            );
            rows.push(r);
        }

        // Fallback sweep: same stream, deterministic same-batch rescue
        // on, widths up to 16, parity-checked against a serial run that
        // also has the fallback on (rescue changes the committed set, so
        // the plain serial fingerprint no longer applies).
        let fb_baseline = run(&AriaExecutor::new().with_fallback(true), 1, &stream);
        let mut fb_rows = vec![fb_baseline];
        for &w in &[2usize, 4, 8, 16] {
            let r = run(&AriaExecutor::parallel(w).with_fallback(true), w, &stream);
            assert_eq!(
                (r.committed, r.fingerprint),
                (fb_rows[0].committed, fb_rows[0].fingerprint),
                "fallback run (workers={w}) diverged from serial on {name}"
            );
            fb_rows.push(r);
        }
        let fb = &fb_rows[0].stats;
        println!(
            "{name:>14}  fallback: abort_rate {:.4} -> effective {:.4}  \
             ({} of {} conflicts rescued)",
            fb.abort_rate(),
            fb.effective_abort_rate(),
            fb.fallback_committed,
            fb.conflict_aborted,
        );
        if *name == "ycsb_zipf" {
            zipf_abort_delta = Some((fb.abort_rate(), fb.effective_abort_rate()));
        }

        let parallel: Vec<Json> = rows.iter().map(|r| row_json(r, baseline.ktps)).collect();
        let fallback: Vec<Json> = fb_rows.iter().map(|r| row_json(r, baseline.ktps)).collect();
        workload_rows.push(
            Obj::new()
                .set("name", *name)
                .set(
                    "serial_baseline",
                    Obj::new()
                        .set("ktps", Json::fixed(baseline.ktps, 1))
                        .set("committed", baseline.committed)
                        .set("abort_rate", Json::fixed(baseline.stats.abort_rate(), 4))
                        .set("fingerprint", format!("{:016x}", baseline.fingerprint)),
                )
                .set("parallel", parallel)
                .set("fallback", fallback)
                .into(),
        );
    }

    // Acceptance: >= 2.5x at 4 workers on uniform YCSB — only physically
    // measurable when the host has >= 4 cores; a 1-core container caps
    // every speedup at ~1x no matter how good the pipeline is.
    let multi_core = host_cores >= 4;
    let pass: Json = if multi_core {
        (uniform_speedup_at_4 >= 2.5).into()
    } else {
        "not evaluable on single-core host (speedup physically capped at 1x); \
         parity checked instead"
            .into()
    };
    // Record the phase-share baseline the `--gate` mode compares against,
    // measured with the gate's own quick profile so the comparison is
    // apples-to-apples regardless of which profile produced this report.
    let gate_share = measure_gate_share();
    println!("gate baseline: reserve+commit share {gate_share:.3} (ycsb_uniform, 4 workers)");

    let (zipf_raw, zipf_eff) = zipf_abort_delta.expect("zipf workload ran");
    let doc = Json::from(
        Obj::new()
            .set("bench", "execution_pipeline")
            .set("batch_txns", batch)
            .set("batches", batches)
            .set("host_cores", host_cores)
            .set("quick", quick)
            .set("workloads", workload_rows)
            .set(
                "gate_baseline",
                Obj::new()
                    .set("workload", "ycsb_uniform")
                    .set("workers", 4u64)
                    .set("profile", "quick, best of 9")
                    .set("reserve_commit_share", Json::fixed(gate_share, 3)),
            )
            .set(
                "acceptance",
                Obj::new()
                    .set("workload", "ycsb_uniform")
                    .set("workers", 4u64)
                    .set("speedup", Json::fixed(uniform_speedup_at_4, 2))
                    .set("target", Json::fixed(2.5, 1))
                    .set("multi_core_host", multi_core)
                    .set("pass", pass)
                    .set("zipf_abort_rate", Json::fixed(zipf_raw, 4))
                    .set("zipf_effective_abort_rate", Json::fixed(zipf_eff, 4))
                    .set("zipf_effective_under_5pct", zipf_eff < 0.05),
            ),
    );
    report::write_json("BENCH_execution.json", &doc);
    println!(
        "acceptance: uniform-YCSB speedup at 4 workers = {uniform_speedup_at_4:.2}x \
         (target 2.5x on multi-core; host has {host_cores}); \
         zipf abort tax {zipf_raw:.4} -> {zipf_eff:.4} effective with fallback"
    );
}

//! Emits `BENCH_execution.json`: serial vs multi-worker Aria execution
//! throughput over the paper's transaction mixes.
//!
//! ```text
//! cargo run -p massbft-bench --release --bin execution
//! cargo run -p massbft-bench --release --bin execution -- --quick
//! ```
//!
//! Three batch workloads, each executed through the full Aria pipeline
//! (snapshot execution → reservations → commit checks → sharded apply):
//!
//! - `ycsb_uniform` — 1M-row YCSB, uniform keys, 50/50 read/write: the
//!   embarrassingly parallel case (near-zero conflicts) that measures raw
//!   pipeline scaling.
//! - `ycsb_zipf` — the paper's Zipf(0.99) hotspot mix: scaling under
//!   skew, where reservation merging actually has collisions.
//! - `smallbank` — SmallBank over 1M accounts: RMW transactions with
//!   logic aborts.
//!
//! The serial baseline is `AriaExecutor::new()` — the exact pre-PR code
//! path — and every parallel run is checked for bit-identical committed
//! counts and store fingerprints against it before any number is
//! reported (determinism is the acceptance constraint, speed second).
//! Worker sweeps cover 1/2/4/8 lanes; `host_cores` is recorded because
//! speedup on a single-core container is physically capped at 1x — the
//! ≥2.5x acceptance target applies to multi-core hosts.

use massbft_bench::report::{self, Json, Obj};
use massbft_core::stats::{execution_stats, ExecStats};
use massbft_db::{AriaExecutor, KvStore};
use massbft_workloads::{zipf::Zipfian, Request};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::time::Instant;

/// YCSB/SmallBank domain (paper §VI: 1M rows / accounts).
const ROWS: u64 = 1_000_000;

fn gen_ycsb_uniform(rng: &mut SmallRng) -> Request {
    let key = rng.gen_range(0..ROWS);
    let field = rng.gen_range(0..10u8);
    if rng.gen_bool(0.5) {
        Request::YcsbWrite {
            key,
            field,
            value_seed: rng.gen(),
        }
    } else {
        Request::YcsbRead { key, field }
    }
}

fn gen_smallbank(rng: &mut SmallRng) -> Request {
    let acct = rng.gen_range(0..ROWS);
    match rng.gen_range(0..5u8) {
        0 => Request::SbBalance { acct },
        1 => Request::SbDepositChecking {
            acct,
            amount: rng.gen_range(1..100),
        },
        2 => Request::SbTransactSavings {
            acct,
            amount: rng.gen_range(-50..100),
        },
        3 => Request::SbWriteCheck {
            acct,
            amount: rng.gen_range(1..100),
        },
        _ => Request::SbSendPayment {
            src: acct,
            dst: rng.gen_range(0..ROWS),
            amount: rng.gen_range(1..50),
        },
    }
}

/// Pre-builds the batch stream for one workload so every executor config
/// chews through identical transactions.
fn build_batches(name: &str, batch: usize, batches: usize, seed: u64) -> Vec<Vec<Request>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipfian::new(ROWS, 0.99);
    (0..batches)
        .map(|_| {
            (0..batch)
                .map(|_| match name {
                    "ycsb_uniform" => gen_ycsb_uniform(&mut rng),
                    "ycsb_zipf" => {
                        // Hotspot mix: scrambled-Zipf keys, 50/50 r/w.
                        let key = zipf.sample_scrambled(&mut rng);
                        let field = rng.gen_range(0..10u8);
                        if rng.gen_bool(0.5) {
                            Request::YcsbWrite {
                                key,
                                field,
                                value_seed: rng.gen(),
                            }
                        } else {
                            Request::YcsbRead { key, field }
                        }
                    }
                    _ => gen_smallbank(&mut rng),
                })
                .collect()
        })
        .collect()
}

struct RunResult {
    workers: usize,
    ktps: f64,
    committed: u64,
    fingerprint: u64,
    stats: ExecStats,
}

/// Runs all batches through one executor config on a fresh store.
fn run(exec: &AriaExecutor, workers: usize, batches: &[Vec<Request>]) -> RunResult {
    let before = execution_stats();
    let mut store = KvStore::new();
    let mut committed = 0u64;
    let t0 = Instant::now();
    for b in batches {
        committed += exec.execute_batch(&mut store, b).committed as u64;
    }
    let secs = t0.elapsed().as_secs_f64();
    let txns: usize = batches.iter().map(Vec::len).sum();
    RunResult {
        workers,
        ktps: txns as f64 / secs / 1e3,
        committed,
        fingerprint: store.content_hash(),
        stats: execution_stats().since(&before),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (batch, batches) = if quick { (4096, 4) } else { (8192, 12) };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let worker_sweep = [1usize, 2, 4, 8];

    println!(
        "execution pipeline bench: {batches} batches x {batch} txns, host cores = {host_cores}"
    );

    let mut workload_rows: Vec<Json> = Vec::new();
    let mut uniform_speedup_at_4 = 0.0f64;
    let workloads = ["ycsb_uniform", "ycsb_zipf", "smallbank"];
    for (wi, name) in workloads.iter().enumerate() {
        let stream = build_batches(name, batch, batches, 0xB0B + wi as u64);

        // Serial baseline: the pre-PR executor, exact code path.
        let baseline = run(&AriaExecutor::new(), 1, &stream);
        println!(
            "{name:>14}  serial baseline {:>8.1} ktps  abort_rate {:.4}",
            baseline.ktps,
            baseline.stats.abort_rate()
        );

        let mut rows = Vec::new();
        for &w in &worker_sweep {
            let r = run(&AriaExecutor::parallel(w), w, &stream);
            // Determinism gate: a wrong parallel result invalidates the
            // bench outright.
            assert_eq!(
                (r.committed, r.fingerprint),
                (baseline.committed, baseline.fingerprint),
                "parallel run (workers={w}) diverged from serial on {name}"
            );
            let speedup = r.ktps / baseline.ktps;
            if *name == "ycsb_uniform" && w == 4 {
                uniform_speedup_at_4 = speedup;
            }
            println!(
                "{name:>14}  workers={w}  {:>8.1} ktps  speedup {speedup:>5.2}x  util {:.2}",
                r.ktps,
                r.stats.worker_utilization()
            );
            rows.push(r);
        }

        let parallel: Vec<Json> = rows
            .iter()
            .map(|r| {
                let s = &r.stats;
                let phase_total = (s.execute_ns + s.reserve_ns + s.commit_ns).max(1) as f64;
                Obj::new()
                    .set("workers", r.workers)
                    .set("ktps", Json::fixed(r.ktps, 1))
                    .set("speedup", Json::fixed(r.ktps / baseline.ktps, 2))
                    .set("matches_serial", true)
                    .set("worker_utilization", Json::fixed(s.worker_utilization(), 3))
                    .set("abort_rate", Json::fixed(s.abort_rate(), 4))
                    .set(
                        "phase_share",
                        Obj::new()
                            .set("execute", Json::fixed(s.execute_ns as f64 / phase_total, 3))
                            .set("reserve", Json::fixed(s.reserve_ns as f64 / phase_total, 3))
                            .set("commit", Json::fixed(s.commit_ns as f64 / phase_total, 3)),
                    )
                    .into()
            })
            .collect();
        workload_rows.push(
            Obj::new()
                .set("name", *name)
                .set(
                    "serial_baseline",
                    Obj::new()
                        .set("ktps", Json::fixed(baseline.ktps, 1))
                        .set("committed", baseline.committed)
                        .set("abort_rate", Json::fixed(baseline.stats.abort_rate(), 4))
                        .set("fingerprint", format!("{:016x}", baseline.fingerprint)),
                )
                .set("parallel", parallel)
                .into(),
        );
    }

    // Acceptance: >= 2.5x at 4 workers on uniform YCSB — only physically
    // measurable when the host has >= 4 cores; a 1-core container caps
    // every speedup at ~1x no matter how good the pipeline is.
    let multi_core = host_cores >= 4;
    let pass: Json = if multi_core {
        (uniform_speedup_at_4 >= 2.5).into()
    } else {
        "not evaluable on single-core host (speedup physically capped at 1x); \
         parity checked instead"
            .into()
    };
    let doc = Json::from(
        Obj::new()
            .set("bench", "execution_pipeline")
            .set("batch_txns", batch)
            .set("batches", batches)
            .set("host_cores", host_cores)
            .set("quick", quick)
            .set("workloads", workload_rows)
            .set(
                "acceptance",
                Obj::new()
                    .set("workload", "ycsb_uniform")
                    .set("workers", 4u64)
                    .set("speedup", Json::fixed(uniform_speedup_at_4, 2))
                    .set("target", Json::fixed(2.5, 1))
                    .set("multi_core_host", multi_core)
                    .set("pass", pass),
            ),
    );
    report::write_json("BENCH_execution.json", &doc);
    println!(
        "acceptance: uniform-YCSB speedup at 4 workers = {uniform_speedup_at_4:.2}x \
         (target 2.5x on multi-core; host has {host_cores})"
    );
}

//! Emits `BENCH_replication.json`: encode→Merkle→rebuild pipeline
//! throughput for the data-plane fast path versus the vendored seed
//! baseline ([`massbft_bench::seed_codec`]).
//!
//! ```text
//! cargo run -p massbft-bench --release --bin replication
//! cargo run -p massbft-bench --release --bin replication -- --quick
//! ```
//!
//! Each pipeline run erasure-codes a 1 MiB entry, builds the Merkle tree
//! over the chunks, "transfers" every chunk (refcounted [`bytes::Bytes`]
//! clone on the fast path, deep `Vec` clone on the seed path, matching
//! what each revision's `ChunkSender`/`ChunkAssembler` did), drops the
//! worst-case admissible chunk subset, and rebuilds the entry. The seed
//! path constructs a fresh codec per encode and per rebuild — exactly
//! what the seed replication engine did on every entry.
//!
//! Geometries: same-size sender/receiver groups of 4–32 nodes via
//! Algorithm 1 transfer plans, plus the raw `(n_data=8, n_total=16)`
//! acceptance geometry. The JSON lands in the workspace root so the perf
//! trajectory is recorded in-tree.

use massbft_bench::report::{self, Json, Obj};
use massbft_bench::seed_codec;
use massbft_codec::chunker::EntryCodec;
use massbft_core::plan::TransferPlan;
use massbft_crypto::MerkleTree;
use std::hint::black_box;
use std::time::Instant;

const ENTRY_BYTES: usize = 1 << 20;

fn entry(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(31).wrapping_add(7)) as u8)
        .collect()
}

/// One full fast-path pipeline pass; returns the rebuilt length.
fn fast_pipeline(codec: &EntryCodec, n_data: usize, n_total: usize, entry: &[u8]) -> usize {
    let chunks: Vec<bytes::Bytes> = codec
        .encode(entry)
        .expect("encode")
        .into_iter()
        .map(bytes::Bytes::from)
        .collect();
    let tree = MerkleTree::build(&chunks);
    black_box(tree.root());
    // Transfer: each chunk message carries a refcounted handle, not a copy.
    let received: Vec<bytes::Bytes> = chunks.to_vec();
    let mut shards: Vec<Option<&[u8]>> = received.iter().map(|b| Some(b.as_ref())).collect();
    // Worst-case admissible loss: all parity-count chunks from the front,
    // so the systematic fast path never applies and the decode matrix is
    // exercised (cached after the first pattern sighting).
    for s in shards.iter_mut().take(n_total - n_data) {
        *s = None;
    }
    codec.decode_from(&shards).expect("rebuild").len()
}

/// One full seed-baseline pipeline pass (fresh codec per encode and per
/// rebuild, deep-copied chunk payloads, the seed's scalar SHA-256 and
/// sequential Merkle build).
fn seed_pipeline(n_data: usize, n_total: usize, entry: &[u8]) -> usize {
    let codec = seed_codec::chunker::EntryCodec::new(n_data, n_total).expect("codec");
    let chunks = codec.encode(entry).expect("encode");
    let tree = seed_codec::merkle::MerkleTree::build(&chunks);
    black_box(tree.root());
    let received: Vec<Vec<u8>> = chunks.to_vec();
    let rebuild_codec = seed_codec::chunker::EntryCodec::new(n_data, n_total).expect("codec");
    let mut shards: Vec<Option<Vec<u8>>> = received.into_iter().map(Some).collect();
    for s in shards.iter_mut().take(n_total - n_data) {
        *s = None;
    }
    rebuild_codec.decode(&mut shards).expect("rebuild").len()
}

/// Times `f` with a calibration pass: runs until ~`budget_ms` of wall time
/// is spent (at least 3 iterations) and returns MiB/s of entry payload.
fn measure(entry_len: usize, budget_ms: u64, mut f: impl FnMut() -> usize) -> (f64, u32) {
    // Warmup: prime codec registries, decode-plan caches, and the allocator.
    for _ in 0..2 {
        assert_eq!(f(), entry_len);
    }
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-6);
    let iters = ((budget_ms as f64 / 1e3 / once).ceil() as u32).max(3);
    let t1 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let secs = t1.elapsed().as_secs_f64();
    let mib = entry_len as f64 / (1024.0 * 1024.0);
    (mib * iters as f64 / secs, iters)
}

struct Row {
    label: String,
    n_data: usize,
    n_total: usize,
    fast_mib_s: f64,
    seed_mib_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.fast_mib_s / self.seed_mib_s
    }
}

fn bench_geometry(label: &str, n_data: usize, n_total: usize, budget_ms: u64) -> Row {
    let data = entry(ENTRY_BYTES);
    let codec = EntryCodec::shared(n_data, n_total).expect("geometry");
    let (fast_mib_s, fast_iters) = measure(data.len(), budget_ms, || {
        fast_pipeline(&codec, n_data, n_total, &data)
    });
    let (seed_mib_s, seed_iters) = measure(data.len(), budget_ms, || {
        seed_pipeline(n_data, n_total, &data)
    });
    let row = Row {
        label: label.to_string(),
        n_data,
        n_total,
        fast_mib_s,
        seed_mib_s,
    };
    println!(
        "{label:>16}  ({n_data:>2}+{:>2})  fast {fast_mib_s:>8.1} MiB/s ({fast_iters} iters)  \
         seed {seed_mib_s:>8.1} MiB/s ({seed_iters} iters)  speedup {:>5.2}x",
        n_total - n_data,
        row.speedup(),
    );
    row
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let budget_ms = if quick { 120 } else { 900 };

    println!(
        "replication pipeline bench: 1 MiB entries, worst-case chunk loss, {} threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let mut rows = Vec::new();
    // Paper-scale sweep: same-size groups of 4–32 nodes, Algorithm 1 plans.
    for n in [4usize, 8, 16, 32] {
        let plan = TransferPlan::generate(n, n).expect("plan");
        rows.push(bench_geometry(
            &format!("group {n}->{n}"),
            plan.n_data,
            plan.n_total,
            budget_ms,
        ));
    }
    // The acceptance geometry from the data-plane issue.
    let acceptance = bench_geometry("raw 8/16", 8, 16, budget_ms);
    let accept_speedup = acceptance.speedup();
    rows.push(acceptance);

    let cache = massbft_codec::rs::global_cache_stats();
    println!(
        "decode-plan cache over the run: {} hits, {} misses",
        cache.hits, cache.misses
    );
    println!("acceptance (n_data=8, n_total=16): {accept_speedup:.2}x (target >= 2x)");

    let geometries: Vec<Json> = rows
        .iter()
        .map(|r| {
            Obj::new()
                .set("label", r.label.as_str())
                .set("n_data", r.n_data)
                .set("n_total", r.n_total)
                .set("fast_mib_s", Json::fixed(r.fast_mib_s, 1))
                .set("seed_mib_s", Json::fixed(r.seed_mib_s, 1))
                .set("speedup", Json::fixed(r.speedup(), 2))
                .into()
        })
        .collect();
    let doc = Json::from(
        Obj::new()
            .set("bench", "replication_pipeline")
            .set("entry_bytes", ENTRY_BYTES)
            .set(
                "threads",
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
            .set("quick", quick)
            .set("geometries", geometries)
            .set(
                "decode_cache",
                Obj::new()
                    .set("hits", cache.hits)
                    .set("misses", cache.misses),
            )
            .set(
                "acceptance",
                Obj::new()
                    .set("n_data", 8u64)
                    .set("n_total", 16u64)
                    .set("speedup", Json::fixed(accept_speedup, 2))
                    .set("target", Json::fixed(2.0, 1))
                    .set("pass", accept_speedup >= 2.0),
            ),
    );
    report::write_json("BENCH_replication.json", &doc);
}

//! Ad-hoc cluster simulation CLI — run any protocol/workload/topology
//! combination and print a full report, with optional fault injection.
//!
//! ```text
//! cargo run -p massbft-bench --release --bin simulate -- \
//!     --protocol massbft --groups 7,7,7 --workload ycsb-a \
//!     --secs 5 --wan-mbps 20 --region nationwide \
//!     --crash-group 2@3s --byzantine 1@2s
//! ```
//!
//! Every run is deterministic for a given `--seed`.

use massbft_bench::report::cli;
use massbft_bench::Scale;
use massbft_core::cluster::{Cluster, ClusterConfig, Region};
use massbft_core::protocol::Protocol;
use massbft_sim_net::{NodeId, SECOND};
use massbft_workloads::WorkloadKind;

#[derive(Debug)]
struct Args {
    protocol: Protocol,
    groups: Vec<usize>,
    workload: WorkloadKind,
    region: Region,
    secs: u64,
    seed: u64,
    wan_mbps: u64,
    arrival_tps: f64,
    max_batch: usize,
    crash_group: Option<(u32, u64)>,
    byzantine_per_group: Option<(u32, u64)>,
    timeline: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--protocol massbft|baseline|geobft|steward|iss|br|ebr]
                [--groups 4,4,4] [--workload ycsb-a|ycsb-b|smallbank|tpcc]
                [--region nationwide|worldwide] [--secs N] [--seed N]
                [--wan-mbps N] [--arrival-tps N] [--max-batch N]
                [--crash-group G@Ts] [--byzantine K@Ts] [--timeline]"
    );
    std::process::exit(2);
}

fn parse_at(v: &str) -> Option<(u32, u64)> {
    let (a, b) = v.split_once('@')?;
    let secs = b.strip_suffix('s').unwrap_or(b);
    Some((a.parse().ok()?, secs.parse().ok()?))
}

fn parse_args() -> Args {
    let mut args = Args {
        protocol: Protocol::MassBft,
        groups: vec![4, 4, 4],
        workload: WorkloadKind::YcsbA,
        region: Region::Nationwide,
        secs: 5,
        seed: 1,
        wan_mbps: 20,
        arrival_tps: 100_000.0,
        max_batch: 500,
        crash_group: None,
        byzantine_per_group: None,
        timeline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--protocol" => {
                args.protocol = cli::protocol(&val()).unwrap_or_else(|| usage());
            }
            "--groups" => {
                args.groups = cli::groups(&val()).unwrap_or_else(|| usage());
            }
            "--workload" => {
                args.workload = cli::workload(&val()).unwrap_or_else(|| usage());
            }
            "--region" => {
                args.region = cli::region(&val()).unwrap_or_else(|| usage());
            }
            "--secs" => args.secs = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--wan-mbps" => args.wan_mbps = val().parse().unwrap_or_else(|_| usage()),
            "--arrival-tps" => args.arrival_tps = val().parse().unwrap_or_else(|_| usage()),
            "--max-batch" => args.max_batch = val().parse().unwrap_or_else(|_| usage()),
            "--crash-group" => args.crash_group = Some(parse_at(&val()).unwrap_or_else(|| usage())),
            "--byzantine" => {
                args.byzantine_per_group = Some(parse_at(&val()).unwrap_or_else(|| usage()))
            }
            "--timeline" => args.timeline = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn main() {
    // Scale is unused directly; referenced so the library's quick/full
    // knob shows up in --help discussions.
    let _ = Scale::Quick;
    let a = parse_args();

    let mut cfg = match a.region {
        Region::Nationwide => ClusterConfig::nationwide(&a.groups, a.protocol),
        Region::Worldwide => ClusterConfig::worldwide(&a.groups, a.protocol),
    }
    .workload(a.workload)
    .seed(a.seed)
    .wan_mbps(a.wan_mbps)
    .arrival_tps(a.arrival_tps)
    .max_batch(a.max_batch);

    if let Some((k, at)) = a.byzantine_per_group {
        let mut byz = Vec::new();
        for (g, &size) in a.groups.iter().enumerate() {
            for i in 0..k.min(size as u32) {
                byz.push(NodeId::new(g as u32, size as u32 - 1 - i));
            }
        }
        cfg = cfg.byzantine(&byz, at * SECOND);
    }

    println!(
        "# {} | {} | {:?} groups | {} | {} Mbps | seed {}",
        a.protocol.name(),
        a.workload.name(),
        a.groups,
        match a.region {
            Region::Nationwide => "nationwide",
            Region::Worldwide => "worldwide",
        },
        a.wan_mbps,
        a.seed
    );

    let mut cluster = Cluster::new(cfg);
    cluster.run_until(SECOND); // warmup
    cluster.open_window();

    if a.timeline {
        println!("{:>5} {:>10}", "sec", "ktps");
    }
    let obs = cluster.observer();
    let mut prev = cluster.node(obs).executed_txns();
    for sec in 1..=a.secs {
        if let Some((g, at)) = a.crash_group {
            if sec == at {
                cluster.crash_group(g);
                if a.timeline {
                    println!("# group {g} crashed");
                }
            }
        }
        cluster.run_until((1 + sec) * SECOND);
        if a.timeline {
            let now = cluster.node(obs).executed_txns();
            println!("{sec:>5} {:>10.2}", (now - prev) as f64 / 1000.0);
            prev = now;
        }
    }
    let report = cluster.close_window();

    println!("throughput        : {:.2} ktps", report.throughput.ktps());
    println!("entries executed  : {}", report.entries_executed);
    println!("mean latency      : {:.1} ms", report.mean_latency_ms);
    println!("p99 latency       : {:.1} ms", report.p99_latency_ms);
    println!(
        "WAN bytes         : {:.1} MB",
        report.wan_bytes as f64 / 1e6
    );
    println!(
        "max node WAN      : {:.1} MB",
        report.max_node_wan_bytes as f64 / 1e6
    );
    println!(
        "LAN bytes         : {:.1} MB",
        report.lan_bytes as f64 / 1e6
    );
    for (g, tps) in report.per_group_tps.iter().enumerate() {
        println!("group {g} origin tps : {:.0}", tps);
    }
    println!("replicas agree    : {}", report.all_nodes_consistent);
    if !report.all_nodes_consistent {
        std::process::exit(1);
    }
}

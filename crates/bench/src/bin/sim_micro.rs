//! Simulator microbenchmarks: event-queue and routing overhead in
//! isolation, so scale-sweep speedups are attributable to the simulator
//! core rather than protocol or execution changes.
//!
//! Four synthetic workloads on a 8×8 worldwide topology (512 nodes'
//! worth of lookups never matter — the point is per-event cost):
//!
//! - `timer_storm` — every node re-arms a fan of timers; pure event
//!   queue (push/pop/dispatch), no routing, no payloads.
//! - `control_all_to_all` — every node pings every other node with a
//!   small control message each tick; exercises routing, uplink/FIFO
//!   accounting, and metrics on the hot path.
//! - `broadcast_payload` — group-internal broadcast of 64 KiB blobs
//!   carried as `Vec<u8>`; every simulator hop deep-copies the blob, so
//!   the case prices what a deep-copying protocol payload costs.
//! - `broadcast_shared` — the same broadcast carried as `Bytes`; hops
//!   bump a refcount instead of copying, which is how the protocol layer
//!   ships entry payloads. The gap between the two cases is the shared-
//!   payload win in isolation.
//!
//! Each prints virtual-events per wall-clock second and a comparison
//! against the recorded pre-overhaul baseline (measured on this bench at
//! the commit that introduced it, same container class), so the
//! before/after line the CI gate prints is self-contained.
//!
//! ```text
//! cargo run --release -p massbft-bench --bin sim_micro [-- --secs 2]
//! ```

use bytes::Bytes;
use massbft_bench::report::{self, Json, Obj};
use massbft_sim_net::{
    Actor, Ctx, NodeId, SimMessage, Simulation, Time, TopologyBuilder, MILLISECOND,
};
use std::time::Instant;

/// Pre-overhaul baselines (events/sec), recorded on the unmodified
/// simulator with this same binary (`--secs 2`, release profile) before
/// the hot-path rework landed. Used only for the printed before/after
/// line; they are not a gate (absolute numbers vary across hosts).
const BASELINE_EVENTS_PER_SEC: &[(&str, f64)] = &[
    ("timer_storm", 7_092_696.0),
    ("control_all_to_all", 1_489_478.0),
    ("broadcast_payload", 265_137.0),
];

#[derive(Clone)]
enum MicroMsg {
    /// 64-byte control ping.
    Ping,
    /// Bulk payload. Deliberately `Vec<u8>`, not `Bytes`: this is what a
    /// deep-copying protocol payload costs per simulator hop, so the
    /// case prices the envelope clone itself.
    Blob(Vec<u8>),
    /// The same bulk payload as a refcounted `Bytes` — cloning the
    /// envelope bumps a counter instead of copying 64 KiB.
    SharedBlob(Bytes),
}

impl SimMessage for MicroMsg {
    fn wire_size(&self) -> usize {
        match self {
            MicroMsg::Ping => 64,
            MicroMsg::Blob(b) => b.len() + 64,
            MicroMsg::SharedBlob(b) => b.len() + 64,
        }
    }
}

/// Timer-only actor: each timer fire re-arms `fan` timers, keeping the
/// event queue at a steady population without any routing.
struct TimerStorm {
    fan: u64,
}

impl Actor for TimerStorm {
    type Msg = MicroMsg;

    fn on_start(&mut self, ctx: &mut Ctx<MicroMsg>) {
        for t in 0..self.fan {
            ctx.set_timer(1 + t, t);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<MicroMsg>, _from: NodeId, _msg: MicroMsg) {}

    fn on_timer(&mut self, ctx: &mut Ctx<MicroMsg>, token: u64) {
        // Re-arm with a token-dependent delay so timestamps stay spread.
        ctx.set_timer(50 + (token % 7) * 13, token);
    }
}

/// Control-plane actor: on every tick, ping every node in the cluster
/// (messages are under the control cutoff, so they take the control
/// lane — routing cost, not bandwidth, dominates).
struct AllToAll {
    peers: Vec<NodeId>,
    period: Time,
}

impl Actor for AllToAll {
    type Msg = MicroMsg;

    fn on_start(&mut self, ctx: &mut Ctx<MicroMsg>) {
        ctx.set_timer(self.period, 0);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<MicroMsg>, _from: NodeId, _msg: MicroMsg) {}

    fn on_timer(&mut self, ctx: &mut Ctx<MicroMsg>, token: u64) {
        ctx.send_many(self.peers.iter().copied(), MicroMsg::Ping);
        ctx.set_timer(self.period, token);
    }
}

/// Data-plane actor: group representatives broadcast a 64 KiB blob to
/// their group each tick; payload clone cost dominates. `shared` picks
/// the `Bytes` envelope over the deep-copying `Vec<u8>` one.
struct Broadcast {
    group_peers: Vec<NodeId>,
    blob: Vec<u8>,
    shared: Option<Bytes>,
    period: Time,
}

impl Actor for Broadcast {
    type Msg = MicroMsg;

    fn on_start(&mut self, ctx: &mut Ctx<MicroMsg>) {
        if ctx.id().node == 0 {
            ctx.set_timer(self.period, 0);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<MicroMsg>, _from: NodeId, _msg: MicroMsg) {}

    fn on_timer(&mut self, ctx: &mut Ctx<MicroMsg>, token: u64) {
        let msg = match &self.shared {
            Some(b) => MicroMsg::SharedBlob(b.clone()),
            None => MicroMsg::Blob(self.blob.clone()),
        };
        ctx.send_many(self.group_peers.iter().copied(), msg);
        ctx.set_timer(self.period, token);
    }
}

struct MicroResult {
    name: &'static str,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
}

fn run_micro<A: Actor<Msg = MicroMsg>>(
    name: &'static str,
    secs: u64,
    make: impl FnMut(NodeId) -> A,
) -> MicroResult {
    let sizes = vec![8usize; 8];
    let topo = TopologyBuilder::worldwide(&sizes).build();
    let mut sim = Simulation::new(topo, make);
    let t0 = Instant::now();
    sim.start();
    sim.run_until(secs * 1_000 * MILLISECOND);
    let wall_secs = t0.elapsed().as_secs_f64();
    let events = sim.metrics().events_processed;
    let r = MicroResult {
        name,
        events,
        wall_secs,
        events_per_sec: events as f64 / wall_secs.max(1e-9),
    };
    let baseline = BASELINE_EVENTS_PER_SEC
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0.0);
    if baseline > 0.0 {
        println!(
            "{:<20} {:>10} events in {:>6.2}s = {:>11.0} events/s  (pre-overhaul {:.0}, {:.2}x)",
            r.name,
            r.events,
            r.wall_secs,
            r.events_per_sec,
            baseline,
            r.events_per_sec / baseline
        );
    } else {
        println!(
            "{:<20} {:>10} events in {:>6.2}s = {:>11.0} events/s",
            r.name, r.events, r.wall_secs, r.events_per_sec
        );
    }
    r
}

fn main() {
    let mut secs: u64 = 2;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--secs" => {
                secs = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: sim_micro [--secs N]");
                    std::process::exit(2);
                })
            }
            _ => {
                eprintln!("usage: sim_micro [--secs N]");
                std::process::exit(2);
            }
        }
    }

    println!("simulator microbench: 8x8 worldwide topology, {secs}s virtual per case");

    let all: Vec<NodeId> = (0..8u32)
        .flat_map(|g| (0..8u32).map(move |n| NodeId::new(g, n)))
        .collect();
    let blob = vec![0xA5u8; 64 * 1024];

    let mut results = Vec::new();
    results.push(run_micro("timer_storm", secs, |_| TimerStorm { fan: 32 }));
    results.push(run_micro("control_all_to_all", secs, |id| AllToAll {
        peers: all.iter().copied().filter(|p| *p != id).collect(),
        period: 5 * MILLISECOND,
    }));
    results.push(run_micro("broadcast_payload", secs, |id| Broadcast {
        group_peers: (0..8u32)
            .map(|n| NodeId::new(id.group, n))
            .filter(|p| *p != id)
            .collect(),
        blob: blob.clone(),
        shared: None,
        period: MILLISECOND,
    }));
    let shared_blob: Bytes = blob.clone().into();
    results.push(run_micro("broadcast_shared", secs, |id| Broadcast {
        group_peers: (0..8u32)
            .map(|n| NodeId::new(id.group, n))
            .filter(|p| *p != id)
            .collect(),
        blob: Vec::new(),
        shared: Some(shared_blob.clone()),
        period: MILLISECOND,
    }));

    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            let baseline = BASELINE_EVENTS_PER_SEC
                .iter()
                .find(|(n, _)| *n == r.name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            Obj::new()
                .set("name", r.name)
                .set("events", r.events)
                .set("wall_secs", Json::fixed(r.wall_secs, 3))
                .set("events_per_sec", Json::fixed(r.events_per_sec, 0))
                .set("pre_overhaul_events_per_sec", Json::fixed(baseline, 0))
                .into()
        })
        .collect();
    let doc = Json::from(
        Obj::new()
            .set("bench", "sim_micro")
            .set("virtual_secs", secs)
            .set("topology", "worldwide-8x8")
            .set("cases", rows),
    );
    report::write_json("BENCH_sim_micro.json", &doc);
}

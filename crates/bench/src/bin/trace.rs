//! Capture an entry-lifecycle trace of a geo-distributed run.
//!
//! Runs a deterministic cluster simulation with telemetry spans enabled,
//! then exports the drained event stream as:
//!
//! - `TRACE_geo.json` — Chrome `trace_event` JSON, loadable in Perfetto
//!   (ui.perfetto.dev) or `chrome://tracing`: one track per node, one
//!   async span per entry covering Submitted → Executed, with instant
//!   events for each lifecycle phase.
//! - `TRACE_geo.jsonl` — one raw event per line, for ad-hoc analysis.
//!
//! It also prints the Fig. 11 per-phase latency breakdown derived from
//! the trace, and cross-checks it against the protocol layer's own
//! `phase_breakdown()` accounting (they must agree within 1%).
//!
//! ```text
//! cargo run --release -p massbft-bench --bin trace -- \
//!     --protocol massbft --groups 4,4,4 --secs 2 --seed 1 [--debug]
//! ```

use massbft_bench::report::cli;
use massbft_core::cluster::{Cluster, ClusterConfig, Region};
use massbft_core::protocol::Protocol;
use massbft_sim_net::NodeId;
use massbft_telemetry as telemetry;
use massbft_telemetry::export;
use massbft_workloads::WorkloadKind;

#[derive(Debug)]
struct Args {
    protocol: Protocol,
    groups: Vec<usize>,
    region: Region,
    workload: WorkloadKind,
    secs: u64,
    seed: u64,
    arrival_tps: f64,
    max_batch: usize,
    out: String,
    debug: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace [--protocol massbft|baseline|geobft|steward|iss|br|ebr]
             [--groups 4,4,4] [--workload ycsb-a|ycsb-b|smallbank|tpcc]
             [--region nationwide|worldwide] [--secs N] [--seed N]
             [--arrival-tps N] [--max-batch N] [--out PREFIX] [--debug]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        protocol: Protocol::MassBft,
        groups: vec![4, 4, 4],
        region: Region::Nationwide,
        workload: WorkloadKind::YcsbA,
        secs: 2,
        seed: 1,
        arrival_tps: 10_000.0,
        max_batch: 200,
        out: "TRACE_geo".to_string(),
        debug: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--protocol" => {
                args.protocol = cli::protocol(&val()).unwrap_or_else(|| usage());
            }
            "--groups" => {
                args.groups = cli::groups(&val()).unwrap_or_else(|| usage());
            }
            "--workload" => {
                args.workload = cli::workload(&val()).unwrap_or_else(|| usage());
            }
            "--region" => {
                args.region = cli::region(&val()).unwrap_or_else(|| usage());
            }
            "--secs" => args.secs = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--arrival-tps" => args.arrival_tps = val().parse().unwrap_or_else(|_| usage()),
            "--max-batch" => args.max_batch = val().parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = val(),
            "--debug" => args.debug = true,
            _ => usage(),
        }
    }
    args
}

/// `|a - b|` within 1% of the larger magnitude (or within 1 µs for
/// near-zero phases).
fn within_one_percent(a: f64, b: f64) -> bool {
    let tol = (a.abs().max(b.abs()) * 0.01).max(0.001);
    (a - b).abs() <= tol
}

fn main() {
    let args = parse_args();

    // Size the ring generously: a few seconds of spans across every node
    // fits comfortably in 2^20 slots, and a drop would make the printed
    // breakdown partial (we check and warn below).
    telemetry::configure_ring(1 << 20);
    telemetry::set_verbosity(if args.debug {
        telemetry::Verbosity::Debug
    } else {
        telemetry::Verbosity::Spans
    });

    let cfg = match args.region {
        Region::Nationwide => ClusterConfig::nationwide(&args.groups, args.protocol),
        Region::Worldwide => ClusterConfig::worldwide(&args.groups, args.protocol),
    }
    .workload(args.workload)
    .seed(args.seed)
    .arrival_tps(args.arrival_tps)
    .max_batch(args.max_batch);

    eprintln!(
        "tracing {} on {:?} groups ({:?}, {:?}), {}s measured ...",
        args.protocol.name(),
        args.groups,
        args.region,
        args.workload,
        args.secs
    );
    let mut cluster = Cluster::new(cfg);
    let report = cluster.run_secs(args.secs);

    let drained = telemetry::drain();
    if drained.dropped > 0 {
        eprintln!(
            "warning: ring wrapped, {} events lost — raise the ring capacity \
             or shorten the run; the breakdown below is partial",
            drained.dropped
        );
    }

    // Export both formats.
    let jsonl_path = format!("{}.jsonl", args.out);
    let json_path = format!("{}.json", args.out);
    let jsonl = export::to_jsonl(&drained.events);
    std::fs::write(&jsonl_path, &jsonl).expect("write jsonl");
    let chrome = export::to_chrome_trace(&drained.events);
    std::fs::write(&json_path, &chrome).expect("write chrome trace");

    // Round-trip / structural validation of what we just wrote.
    let reparsed = export::parse_jsonl(&jsonl).expect("jsonl round-trip");
    assert_eq!(reparsed.len(), drained.events.len(), "jsonl round-trip");
    let summary = match export::validate_chrome_trace(&chrome) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: emitted Chrome trace is invalid: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "captured {} events ({} entry spans across {} node tracks)",
        drained.events.len(),
        summary.spans,
        summary.tracks
    );
    println!("  {json_path}   (load in ui.perfetto.dev or chrome://tracing)");
    println!("  {jsonl_path}  (one event per line)");
    let mut kinds: Vec<(&String, &u64)> = summary.kind_counts.iter().collect();
    kinds.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    let listed: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!("  events by kind: {}", listed.join(" "));

    println!(
        "\nrun: {:.1} ktps, mean latency {:.1} ms, consistent={}",
        report.throughput.ktps(),
        report.mean_latency_ms,
        report.all_nodes_consistent
    );

    // Fig. 11 table from the trace, across every group's own entries.
    let Some(bd) = export::breakdown(&drained.events) else {
        eprintln!("error: no complete entry lifecycle in the trace");
        std::process::exit(1);
    };
    println!("\nlatency breakdown from trace ({} entries):", bd.entries);
    println!("  {:<22} {:>9}", "phase", "mean ms");
    println!("  {:<22} {:>9.3}", "local consensus", bd.local_consensus_ms);
    println!(
        "  {:<22} {:>9.3}",
        "global replication", bd.global_replication_ms
    );
    println!("  {:<22} {:>9.3}", "ordering", bd.ordering_ms);
    println!("  {:<22} {:>9.3}", "execution", bd.execution_ms);
    println!("  {:<22} {:>9.3}", "total", bd.total_ms());

    // Cross-check against the protocol layer's own accounting at group
    // 0's representative (PBFT view 0 puts it at node 0), over that
    // group's entries only — the population `phase_breakdown()` measures.
    let rep = NodeId::new(0, 0);
    let Some(node_bd) = cluster.node(rep).phase_breakdown() else {
        eprintln!("error: representative recorded no phase breakdown");
        std::process::exit(1);
    };
    let g0_events: Vec<telemetry::Event> = drained
        .events
        .iter()
        .filter(|e| e.entry.0 == rep.group)
        .copied()
        .collect();
    let Some(trace_bd) = export::breakdown(&g0_events) else {
        eprintln!("error: no group-0 entries in the trace");
        std::process::exit(1);
    };
    let pairs = [
        (
            "local consensus",
            trace_bd.local_consensus_ms,
            node_bd.local_consensus_ms,
        ),
        (
            "global replication",
            trace_bd.global_replication_ms,
            node_bd.global_replication_ms,
        ),
        ("ordering", trace_bd.ordering_ms, node_bd.ordering_ms),
        ("execution", trace_bd.execution_ms, node_bd.execution_ms),
    ];
    println!("\ncross-check vs node accounting (group 0 rep):");
    let mut ok = true;
    for (name, t, n) in pairs {
        let agree = within_one_percent(t, n);
        ok &= agree;
        println!(
            "  {:<22} trace {:>9.3}  node {:>9.3}  {}",
            name,
            t,
            n,
            if agree { "ok" } else { "MISMATCH" }
        );
    }
    if !ok && drained.dropped == 0 {
        eprintln!("error: trace-derived breakdown disagrees with node accounting");
        std::process::exit(1);
    }
}

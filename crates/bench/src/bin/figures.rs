//! Regenerates the MassBFT paper's tables and figures as printed series.
//!
//! ```text
//! cargo run -p massbft-bench --release --bin figures -- all --quick
//! cargo run -p massbft-bench --release --bin figures -- fig8
//! ```
//!
//! Experiments: `fig1b fig8 fig9 fig10 fig11 fig12 fig13a fig13b fig14
//! fig15 table1 table2 ablation-overlap ablation-parity all`.

use massbft_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    let want = |name: &str| which.contains(&name) || which.contains(&"all");

    if want("table1") {
        print_table(
            "Table I — geo-consensus protocol comparison (subset)",
            &feature_tables().0,
        );
    }
    if want("table2") {
        print_table("Table II — competitor systems", &feature_tables().1);
    }
    if want("fig1b") {
        banner("Fig. 1b — GeoBFT throughput vs group size (leader bottleneck)");
        println!("{:>14} {:>12}", "nodes/group", "ktps");
        for (n, ktps) in fig1b(scale) {
            println!("{n:>14} {ktps:>12.2}");
        }
    }
    if want("fig8") {
        banner("Fig. 8 — nationwide cluster: throughput & latency");
        print_perf(&fig8_9(scale, false));
    }
    if want("fig9") {
        banner("Fig. 9 — worldwide cluster: throughput & latency");
        print_perf(&fig8_9(scale, true));
    }
    if want("fig10") {
        banner("Fig. 10 — WAN traffic per replicated entry");
        println!(
            "{:>12} {:>16} {:>16}",
            "batch txns", "MassBFT KB", "Baseline KB"
        );
        for (b, mass, base) in fig10(scale) {
            println!("{b:>12} {mass:>16.1} {base:>16.1}");
        }
    }
    if want("fig11") {
        banner("Fig. 11 — MassBFT latency breakdown (group 0 representative)");
        let b = fig11(scale);
        println!("{:>22} {:>10}", "phase", "ms");
        println!("{:>22} {:>10.1}", "local consensus", b.local_consensus_ms);
        println!(
            "{:>22} {:>10.1}",
            "global replication", b.global_replication_ms
        );
        println!("{:>22} {:>10.1}", "ordering (VTS)", b.ordering_ms);
        println!("{:>22} {:>10.1}", "execution", b.execution_ms);
    }
    if want("fig12") {
        banner("Fig. 12 — heterogeneous group sizes (4/7/7)");
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>12}",
            "protocol", "G1 ktps", "G2 ktps", "G3 ktps", "latency ms"
        );
        for row in fig12(scale) {
            let g = &row.per_group_ktps;
            println!(
                "{:>10} {:>10.2} {:>10.2} {:>10.2} {:>12.1}",
                row.protocol.name(),
                g.first().copied().unwrap_or(0.0),
                g.get(1).copied().unwrap_or(0.0),
                g.get(2).copied().unwrap_or(0.0),
                row.latency_ms
            );
        }
    }
    if want("fig13a") {
        banner("Fig. 13a — throughput vs nodes per group");
        println!(
            "{:>14} {:>14} {:>14}",
            "nodes/group", "MassBFT ktps", "Baseline ktps"
        );
        for (n, mass, base) in fig13a(scale) {
            println!("{n:>14} {mass:>14.2} {base:>14.2}");
        }
    }
    if want("fig13b") {
        banner("Fig. 13b — throughput vs number of groups");
        println!(
            "{:>10} {:>14} {:>14}",
            "groups", "MassBFT ktps", "Baseline ktps"
        );
        for (ng, mass, base) in fig13b(scale) {
            println!("{ng:>10} {mass:>14.2} {base:>14.2}");
        }
    }
    if want("fig14") {
        banner("Fig. 14 — slow (20 Mbps) nodes among 40 Mbps nodes");
        println!("{:>14} {:>12} {:>12}", "slow/group", "ktps", "latency ms");
        for (k, ktps, lat) in fig14(scale) {
            println!("{k:>14} {ktps:>12.2} {lat:>12.1}");
        }
    }
    if want("fig15") {
        banner("Fig. 15 — fault timeline (Byzantine nodes, then group crash)");
        let (points, byz_at, crash_at) = fig15(scale);
        println!("{:>6} {:>10} {:>12}  event", "sec", "ktps", "latency ms");
        for p in points {
            let event = if p.sec == byz_at {
                "<- Byzantine tampering starts"
            } else if p.sec == crash_at {
                "<- group crash"
            } else {
                ""
            };
            println!(
                "{:>6} {:>10.2} {:>12.1}  {event}",
                p.sec, p.ktps, p.latency_ms
            );
        }
    }
    if want("ablation-overlap") {
        banner("Ablation — overlapped (Fig. 7b) vs serial (Fig. 7a) VTS assignment");
        let (overlapped, serial) = ablation_overlap(scale);
        println!("overlapped: {overlapped:>8.1} ms");
        println!("serial:     {serial:>8.1} ms");
    }
    if want("ablation-parity") {
        banner("Ablation — worst-case parity overhead of Algorithm 1 (equal groups)");
        println!(
            "{:>6} {:>10} {:>8} {:>16}",
            "n", "parity", "data", "amplification"
        );
        for (n, parity, data, amp) in ablation_parity() {
            println!("{n:>6} {parity:>10} {data:>8} {amp:>16.2}");
        }
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn print_table(title: &str, rows: &[[&str; 6]]) {
    banner(title);
    for row in rows {
        println!(
            "{:<10} {:<13} {:<11} {:<11} {:<18} {:<13}",
            row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }
}

fn print_perf(rows: &[PerfRow]) {
    println!(
        "{:>10} {:>10} {:>10} {:>12}",
        "workload", "protocol", "ktps", "latency ms"
    );
    for r in rows {
        println!(
            "{:>10} {:>10} {:>10.2} {:>12.1}",
            r.workload.name(),
            r.protocol.name(),
            r.ktps,
            r.latency_ms
        );
    }
}

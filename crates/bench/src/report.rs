//! Shared plumbing for the bench binaries: a small JSON document
//! builder (the workspace has no serde), a pass/fail verdict collector,
//! and the CLI enum parsers every binary re-implemented.
//!
//! Every `BENCH_*.json` / trace binary used to hand-roll its JSON with
//! `format!` and track failures with ad-hoc booleans; this module is the
//! single copy. Rendering is deterministic: objects keep insertion
//! order, arrays of scalars render inline, arrays holding objects render
//! one element per line.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float, shortest round-trip formatting (non-finite renders as 0).
    F64(f64),
    /// Float with a fixed number of decimals, e.g. `{:.2}`.
    Fixed(f64, usize),
    /// String (escaped on render).
    Str(String),
    /// Pre-rendered JSON fragment, emitted verbatim.
    Raw(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Obj),
}

/// An insertion-ordered JSON object.
#[derive(Debug, Clone, Default)]
pub struct Obj(Vec<(String, Json)>);

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj(Vec::new())
    }

    /// Adds (or appends — duplicate keys are the caller's bug) a field.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.0.push((key.to_string(), value.into()));
        self
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Obj> for Json {
    fn from(v: Obj) -> Self {
        Json::Obj(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    // Rust renders whole floats as "4" — keep them valid but typed.
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

impl Json {
    /// Fixed-decimal float shorthand.
    pub fn fixed(v: f64, decimals: usize) -> Json {
        Json::Fixed(v, decimals)
    }

    fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => out.push_str(&fmt_f64(*v)),
            Json::Fixed(v, d) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.d$}", d = d);
                } else {
                    out.push('0');
                }
            }
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Raw(s) => out.push_str(s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                } else if items.iter().any(Json::is_obj) {
                    out.push_str("[\n");
                    let pad = "  ".repeat(indent + 1);
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&pad);
                        item.render_into(out, indent + 1);
                        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&"  ".repeat(indent));
                    out.push(']');
                } else {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.render_into(out, indent);
                    }
                    out.push(']');
                }
            }
            Json::Obj(Obj(fields)) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                let pad = "  ".repeat(indent + 1);
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}\"{}\": ", escape(k));
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Renders as a full document: the value plus a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }
}

/// Renders `json` to `path` and prints the conventional `wrote <path>`
/// line every bench binary emits.
pub fn write_json(path: &str, json: &Json) {
    std::fs::write(path, json.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// Accumulates named pass/fail checks; [`Verdict::finish`] exits
/// non-zero when any failed — the shared ending of every gate binary.
#[derive(Debug, Default)]
pub struct Verdict {
    checks: u64,
    failures: Vec<String>,
}

impl Verdict {
    /// An empty verdict.
    pub fn new() -> Self {
        Verdict::default()
    }

    /// Records one named check; returns `ok` for chaining.
    pub fn check(&mut self, name: &str, ok: bool) -> bool {
        self.checks += 1;
        if !ok {
            self.failures.push(name.to_string());
        }
        ok
    }

    /// True when no recorded check failed.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }

    /// Prints any failures under `context` and exits 1; prints nothing
    /// and returns when everything passed.
    pub fn finish(self, context: &str) {
        if self.pass() {
            return;
        }
        eprintln!("error: {context}: {} check(s) failed", self.failures.len());
        for f in &self.failures {
            eprintln!("  FAIL {f}");
        }
        std::process::exit(1);
    }
}

/// CLI enum parsers shared by the bench binaries (`trace`, `simulate`,
/// `scale`), so flag vocabularies can't drift between them.
pub mod cli {
    use massbft_core::cluster::Region;
    use massbft_core::protocol::Protocol;
    use massbft_workloads::WorkloadKind;

    /// Parses a `--protocol` value.
    pub fn protocol(s: &str) -> Option<Protocol> {
        Some(match s.to_lowercase().as_str() {
            "massbft" => Protocol::MassBft,
            "baseline" => Protocol::Baseline,
            "geobft" => Protocol::GeoBft,
            "steward" => Protocol::Steward,
            "iss" => Protocol::Iss,
            "br" => Protocol::BijectiveOnly,
            "ebr" => Protocol::EncodedBijective,
            _ => return None,
        })
    }

    /// Parses a `--workload` value.
    pub fn workload(s: &str) -> Option<WorkloadKind> {
        Some(match s.to_lowercase().as_str() {
            "ycsb-a" | "ycsba" => WorkloadKind::YcsbA,
            "ycsb-b" | "ycsbb" => WorkloadKind::YcsbB,
            "smallbank" => WorkloadKind::SmallBank,
            "tpcc" | "tpc-c" => WorkloadKind::TpcC,
            _ => return None,
        })
    }

    /// Parses a `--region` value.
    pub fn region(s: &str) -> Option<Region> {
        Some(match s.to_lowercase().as_str() {
            "nationwide" => Region::Nationwide,
            "worldwide" => Region::Worldwide,
            _ => return None,
        })
    }

    /// Parses a `--groups` list like `4,4,4`.
    pub fn groups(s: &str) -> Option<Vec<usize>> {
        let v: Option<Vec<usize>> = s.split(',').map(|p| p.trim().parse().ok()).collect();
        v.filter(|v| !v.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = Json::from(
            Obj::new()
                .set("bench", "demo")
                .set("n", 3u64)
                .set("ratio", Json::fixed(1.0 / 3.0, 2))
                .set("ok", true)
                .set("timeline", vec![Json::Arr(vec![1u64.into(), 2u64.into()])])
                .set(
                    "rows",
                    vec![Json::from(Obj::new().set("name", "a\"b").set("v", 1u64))],
                ),
        );
        let s = doc.render();
        assert!(s.contains("\"bench\": \"demo\""));
        assert!(s.contains("\"ratio\": 0.33"));
        assert!(s.contains("\"timeline\": [[1, 2]]"), "{s}");
        assert!(s.contains("\"name\": \"a\\\"b\""));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn floats_stay_valid_json() {
        assert_eq!(fmt_f64(4.0), "4.0");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(0.5), "0.5");
    }

    #[test]
    fn verdict_tracks_failures() {
        let mut v = Verdict::new();
        assert!(v.check("a", true));
        assert!(v.pass());
        assert!(!v.check("b", false));
        assert!(!v.pass());
    }

    #[test]
    fn cli_parsers_round_trip() {
        assert!(cli::protocol("MassBFT").is_some());
        assert!(cli::protocol("nope").is_none());
        assert!(cli::workload("ycsb-a").is_some());
        assert!(cli::region("worldwide").is_some());
        assert_eq!(cli::groups("4, 4,8"), Some(vec![4, 4, 8]));
        assert_eq!(cli::groups("4,x"), None);
    }
}

//! Systematic Reed-Solomon encoder/decoder over GF(2^8).
//!
//! The code is *systematic*: the first `n_data` output shards are the input
//! data verbatim, and the remaining `n_parity` shards are Cauchy-coded
//! redundancy. Any `n_data` of the `n_total` shards reconstruct the data
//! (paper §IV-B: "any n_data out of n_total chunks can be used to rebuild
//! the original message").
//!
//! Decoding caches nothing across erasure patterns; the matrices are at most
//! 256x256 and inversion is microseconds, far below the WAN latencies the
//! protocol hides.

use super::{matrix::Matrix, CodecError};

/// A systematic Reed-Solomon code with fixed shard counts.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    n_data: usize,
    n_total: usize,
    /// Rows `n_data..n_total` of the generator matrix (the parity rows).
    parity_rows: Matrix,
    /// Full generator matrix, kept for decode-time row selection.
    generator: Matrix,
}

impl ReedSolomon {
    /// Creates a code producing `n_total` shards of which `n_data` carry
    /// data.
    pub fn new(n_data: usize, n_total: usize) -> Result<Self, CodecError> {
        let generator = Matrix::systematic_cauchy(n_total, n_data)?;
        let parity_rows = generator.select_rows(&(n_data..n_total).collect::<Vec<_>>());
        Ok(ReedSolomon {
            n_data,
            n_total,
            parity_rows,
            generator,
        })
    }

    /// Number of data shards.
    pub fn n_data(&self) -> usize {
        self.n_data
    }

    /// Total number of shards.
    pub fn n_total(&self) -> usize {
        self.n_total
    }

    /// Number of parity shards.
    pub fn n_parity(&self) -> usize {
        self.n_total - self.n_data
    }

    /// Encodes `n_data` equal-length data shards into `n_total` shards.
    ///
    /// The returned vector starts with the data shards (clones of the
    /// input) followed by the computed parity shards.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodecError> {
        if data.len() != self.n_data {
            return Err(CodecError::InvalidShardCounts {
                n_data: data.len(),
                n_total: self.n_total,
            });
        }
        let shard_len = data[0].len();
        if data.iter().any(|d| d.len() != shard_len) {
            return Err(CodecError::InconsistentChunkSize);
        }
        let mut out = Vec::with_capacity(self.n_total);
        out.extend(data.iter().cloned());
        for p in 0..self.n_parity() {
            let mut shard = vec![0u8; shard_len];
            for (j, d) in data.iter().enumerate() {
                super::gf256::mul_acc_slice(&mut shard, d, self.parity_rows.get(p, j));
            }
            out.push(shard);
        }
        Ok(out)
    }

    /// Reconstructs the `n_data` data shards from any `n_data` surviving
    /// shards. `shards[i]` is `Some` if shard `i` was received.
    ///
    /// On success the returned vector holds the data shards in order.
    /// Missing *data* shards are recomputed; surviving ones are moved out of
    /// the input untouched.
    pub fn reconstruct_data(
        &self,
        shards: &mut [Option<Vec<u8>>],
    ) -> Result<Vec<Vec<u8>>, CodecError> {
        if shards.len() != self.n_total {
            return Err(CodecError::InvalidShardCounts {
                n_data: self.n_data,
                n_total: shards.len(),
            });
        }
        let have = shards.iter().filter(|s| s.is_some()).count();
        if have < self.n_data {
            return Err(CodecError::NotEnoughChunks {
                have,
                need: self.n_data,
            });
        }

        let shard_len =
            shards
                .iter()
                .flatten()
                .map(|s| s.len())
                .next()
                .ok_or(CodecError::NotEnoughChunks {
                    have: 0,
                    need: self.n_data,
                })?;
        if shards.iter().flatten().any(|s| s.len() != shard_len) {
            return Err(CodecError::InconsistentChunkSize);
        }

        // Fast path: all data shards survived.
        if shards[..self.n_data].iter().all(|s| s.is_some()) {
            return Ok(shards[..self.n_data]
                .iter_mut()
                .map(|s| s.take().expect("checked above"))
                .collect());
        }

        // Pick the first n_data available shard indices; invert the
        // corresponding generator rows; multiply to recover the data.
        let picked: Vec<usize> = (0..self.n_total)
            .filter(|&i| shards[i].is_some())
            .take(self.n_data)
            .collect();
        let decode = self.generator.select_rows(&picked).inverse()?;

        let mut data = Vec::with_capacity(self.n_data);
        for r in 0..self.n_data {
            let mut shard = vec![0u8; shard_len];
            for (k, &src) in picked.iter().enumerate() {
                let c = decode.get(r, k);
                let input = shards[src].as_ref().expect("picked only Some");
                super::gf256::mul_acc_slice(&mut shard, input, c);
            }
            data.push(shard);
        }
        Ok(data)
    }

    /// Verifies that a full shard set is consistent with this code: parity
    /// shards must equal the re-encoding of the data shards. Used by tests
    /// and by debug assertions in the replication engine.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, CodecError> {
        if shards.len() != self.n_total {
            return Err(CodecError::InvalidShardCounts {
                n_data: self.n_data,
                n_total: shards.len(),
            });
        }
        let reenc = self.encode(&shards[..self.n_data])?;
        Ok(reenc == shards)
    }
}

//! Merkle trees and inclusion proofs.
//!
//! Paper §IV-C: after encoding an entry into chunks, each sender builds a
//! Merkle tree over the chunks and ships each chunk with its proof.
//! Receivers bucket chunks by Merkle *root*; chunks in one bucket are
//! guaranteed to come from the same encoding, so a bucket that reaches
//! `n_data` chunks can attempt a rebuild, and a failed rebuild condemns the
//! whole bucket (all its chunk IDs get blacklisted).
//!
//! Leaves are domain-separated from internal nodes (prefix byte) to prevent
//! second-preimage tricks where an internal node is replayed as a leaf.
//! Odd nodes at any level are promoted unchanged (Bitcoin-style duplication
//! is avoided because it admits trivial collisions).

use super::{sha256::Sha256, Digest};

const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

fn hash_leaf(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(data);
    Digest(h.finalize())
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(&left.0);
    h.update(&right.0);
    Digest(h.finalize())
}

/// A Merkle tree over an ordered list of byte-string leaves.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = `[root]`.
    levels: Vec<Vec<Digest>>,
}

/// One sibling step of a Merkle proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling hash at this level.
    pub sibling: Digest,
    /// Whether the sibling sits to the left of the path node.
    pub sibling_on_left: bool,
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Total number of leaves in the tree (binds the proof to a geometry).
    pub leaf_count: usize,
    /// Sibling hashes bottom-up. Levels where the node had no sibling
    /// (odd promotion) contribute no step.
    pub path: Vec<ProofStep>,
}

impl MerkleTree {
    /// Builds a tree over `leaves`.
    ///
    /// # Panics
    /// Panics on an empty leaf set — the replication layer never encodes
    /// zero chunks.
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut levels = Vec::new();
        levels.push(
            leaves
                .iter()
                .map(|l| hash_leaf(l.as_ref()))
                .collect::<Vec<_>>(),
        );
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i < prev.len() {
                if i + 1 < prev.len() {
                    next.push(hash_node(&prev[i], &prev[i + 1]));
                    i += 2;
                } else {
                    next.push(prev[i]); // odd promotion
                    i += 1;
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root hash.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Generates the inclusion proof for leaf `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut path = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if i.is_multiple_of(2) { i + 1 } else { i - 1 };
            if sibling < level.len() {
                path.push(ProofStep {
                    sibling: level[sibling],
                    sibling_on_left: sibling < i,
                });
            }
            i /= 2;
        }
        MerkleProof {
            leaf_index: index,
            leaf_count: self.leaf_count(),
            path,
        }
    }
}

impl MerkleProof {
    /// Verifies that `leaf_data` is the leaf at `self.leaf_index` of the
    /// tree with root `root`.
    pub fn verify(&self, root: &Digest, leaf_data: &[u8]) -> bool {
        // Recompute the path; also check the path length is plausible for
        // the claimed geometry so proofs can't smuggle extra levels.
        if self.leaf_index >= self.leaf_count {
            return false;
        }
        let mut acc = hash_leaf(leaf_data);
        let mut i = self.leaf_index;
        let mut width = self.leaf_count;
        let mut step_iter = self.path.iter();
        while width > 1 {
            let has_sibling = if i.is_multiple_of(2) {
                i + 1 < width
            } else {
                true
            };
            if has_sibling {
                let Some(step) = step_iter.next() else {
                    return false;
                };
                let expected_side = i % 2 == 1;
                if step.sibling_on_left != expected_side {
                    return false;
                }
                acc = if step.sibling_on_left {
                    hash_node(&step.sibling, &acc)
                } else {
                    hash_node(&acc, &step.sibling)
                };
            }
            i /= 2;
            width = width.div_ceil(2);
        }
        step_iter.next().is_none() && acc == *root
    }
}

//! Length-framed entry chunking.
//!
//! A log entry is an arbitrary byte string, but Reed-Solomon wants
//! `n_data` shards of identical length. [`EntryCodec`] frames the entry
//! with its length, pads it to a multiple of `n_data`, splits it, encodes,
//! and performs the inverse on rebuild. The frame also acts as a cheap
//! sanity check: a rebuilt payload whose length prefix disagrees with the
//! shard geometry is reported as [`CodecError::CorruptFrame`] (the PBFT
//! certificate remains the authoritative integrity check, per paper §IV-C).

use super::{rs::ReedSolomon, CodecError};

/// Frame header: payload length as a little-endian u64.
const FRAME_HEADER: usize = 8;

/// Splits entries into Reed-Solomon chunks and rebuilds them.
#[derive(Debug, Clone)]
pub struct EntryCodec {
    rs: ReedSolomon,
}

impl EntryCodec {
    /// Creates a codec with `n_data` data chunks out of `n_total` total.
    pub fn new(n_data: usize, n_total: usize) -> Result<Self, CodecError> {
        Ok(EntryCodec {
            rs: ReedSolomon::new(n_data, n_total)?,
        })
    }

    /// Number of data chunks.
    pub fn n_data(&self) -> usize {
        self.rs.n_data()
    }

    /// Total number of chunks.
    pub fn n_total(&self) -> usize {
        self.rs.n_total()
    }

    /// The per-chunk size for an entry of `entry_len` bytes.
    pub fn chunk_size(&self, entry_len: usize) -> usize {
        let framed = entry_len + FRAME_HEADER;
        framed.div_ceil(self.rs.n_data())
    }

    /// The WAN amplification factor of this code: total bytes transmitted
    /// divided by entry bytes, i.e. `n_total / n_data` (paper: ≈2.15 for
    /// the 4→7 case study).
    pub fn amplification(&self) -> f64 {
        self.rs.n_total() as f64 / self.rs.n_data() as f64
    }

    /// Encodes `entry` into `n_total` equal-size chunks.
    pub fn encode(&self, entry: &[u8]) -> Result<Vec<Vec<u8>>, CodecError> {
        if entry.is_empty() {
            return Err(CodecError::EmptyEntry);
        }
        let n_data = self.rs.n_data();
        let chunk = self.chunk_size(entry.len());
        let mut framed = Vec::with_capacity(chunk * n_data);
        framed.extend_from_slice(&(entry.len() as u64).to_le_bytes());
        framed.extend_from_slice(entry);
        framed.resize(chunk * n_data, 0);

        let data: Vec<Vec<u8>> = framed.chunks(chunk).map(|c| c.to_vec()).collect();
        self.rs.encode(&data)
    }

    /// Rebuilds the entry from any `n_data` received chunks.
    ///
    /// `chunks[i] = Some(bytes)` if chunk `i` arrived. Consumes the data
    /// chunks it uses (they are moved out of the slice).
    pub fn decode(&self, chunks: &mut [Option<Vec<u8>>]) -> Result<Vec<u8>, CodecError> {
        let data = self.rs.reconstruct_data(chunks)?;
        let mut framed: Vec<u8> = Vec::with_capacity(data.len() * data[0].len());
        for shard in &data {
            framed.extend_from_slice(shard);
        }
        if framed.len() < FRAME_HEADER {
            return Err(CodecError::CorruptFrame);
        }
        let len = u64::from_le_bytes(framed[..FRAME_HEADER].try_into().expect("8 bytes")) as usize;
        if len == 0 || FRAME_HEADER + len > framed.len() {
            return Err(CodecError::CorruptFrame);
        }
        // Padding must be zero; tampered shards frequently violate this,
        // letting us reject cheaply before the certificate check.
        if framed[FRAME_HEADER + len..].iter().any(|&b| b != 0) {
            return Err(CodecError::CorruptFrame);
        }
        framed.truncate(FRAME_HEADER + len);
        framed.drain(..FRAME_HEADER);
        Ok(framed)
    }
}

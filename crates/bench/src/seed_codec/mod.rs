//! The seed revision's data plane, frozen as a benchmark baseline.
//!
//! These modules are the pre-optimization `massbft-codec` and
//! `massbft-crypto` sources (commit `e330738`, test modules stripped) kept
//! so `BENCH_replication.json` can compare the cached/table-driven/
//! accelerated fast path against the exact code it replaced: per-call
//! product-table regeneration in [`gf256::mul_acc_slice`], a fresh
//! decode-matrix inversion for every erasure pattern in
//! [`rs::ReedSolomon::reconstruct_data`], scalar-only SHA-256 with
//! sequential Merkle leaf hashing in [`sha256`]/[`merkle`], and owned
//! `Vec<u8>` shards throughout. Do not "improve" this code — its slowness
//! is the point.

pub use massbft_codec::CodecError;
pub use massbft_crypto::Digest;

pub mod chunker;
pub mod gf256;
pub mod matrix;
pub mod merkle;
pub mod rs;
pub mod sha256;

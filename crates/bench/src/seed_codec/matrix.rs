//! Dense matrices over GF(2^8).
//!
//! Reed-Solomon coding reduces to linear algebra over the field: encoding is
//! a matrix-vector product with the generator matrix, and erasure recovery
//! inverts the square submatrix formed by the surviving rows. This module
//! keeps the representation deliberately simple — a row-major `Vec<u8>` —
//! because the matrices involved are tiny (at most 256x256) and inversion
//! happens once per erasure pattern.

use super::{gf256, CodecError};

/// A row-major matrix over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: &[&[u8]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut m = Matrix::zero(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            m.row_mut(i).copy_from_slice(row);
        }
        m
    }

    /// Builds the extended-Cauchy generator matrix for a systematic
    /// Reed-Solomon code: the first `n_data` rows are the identity, and row
    /// `n_data + i` is the Cauchy row `1 / (x_i + y_j)` with
    /// `x_i = n_data + i`, `y_j = j`.
    ///
    /// Since `x_i` and `y_j` ranges are disjoint, `x_i ^ y_j != 0` and every
    /// square submatrix of a Cauchy matrix is invertible — the property that
    /// makes any `n_data` surviving chunks decodable.
    pub fn systematic_cauchy(n_total: usize, n_data: usize) -> Result<Self, CodecError> {
        if n_data == 0 || n_data > n_total {
            return Err(CodecError::InvalidShardCounts { n_data, n_total });
        }
        if n_total > 256 {
            return Err(CodecError::TooManyChunks(n_total));
        }
        let mut m = Matrix::zero(n_total, n_data);
        for i in 0..n_data {
            m.set(i, i, 1);
        }
        for i in n_data..n_total {
            for j in 0..n_data {
                let x = i as u8;
                let y = j as u8;
                m.set(i, j, gf256::inv(x ^ y));
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u8] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix containing the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut m = Matrix::zero(indices.len(), self.cols);
        for (out, &src) in indices.iter().enumerate() {
            m.row_mut(out).copy_from_slice(self.row(src));
        }
        m
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                let (orow, rrow) = (i, k);
                // out[i][..] ^= a * rhs[k][..]
                let rhs_row: Vec<u8> = rhs.row(rrow).to_vec();
                gf256::mul_acc_slice(out.row_mut(orow), &rhs_row, a);
            }
        }
        out
    }

    /// Inverts a square matrix with Gauss-Jordan elimination.
    ///
    /// Returns [`CodecError::SingularMatrix`] if no inverse exists.
    pub fn inverse(&self) -> Result<Matrix, CodecError> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut work = self.clone();
        let mut out = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot at or below the diagonal.
            let pivot = (col..n)
                .find(|&r| work.get(r, col) != 0)
                .ok_or(CodecError::SingularMatrix)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                out.swap_rows(pivot, col);
            }
            // Scale the pivot row to make the diagonal 1.
            let p = work.get(col, col);
            if p != 1 {
                let pinv = gf256::inv(p);
                scale_row(work.row_mut(col), pinv);
                scale_row(out.row_mut(col), pinv);
            }
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work.get(r, col);
                if factor == 0 {
                    continue;
                }
                let wsrc: Vec<u8> = work.row(col).to_vec();
                let osrc: Vec<u8> = out.row(col).to_vec();
                gf256::mul_acc_slice(work.row_mut(r), &wsrc, factor);
                gf256::mul_acc_slice(out.row_mut(r), &osrc, factor);
            }
        }
        Ok(out)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let cols = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * cols);
        head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
    }
}

fn scale_row(row: &mut [u8], c: u8) {
    for v in row.iter_mut() {
        *v = gf256::mul(*v, c);
    }
}

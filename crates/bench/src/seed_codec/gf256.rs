//! Arithmetic in the finite field GF(2^8).
//!
//! Elements are bytes; addition is XOR and multiplication is polynomial
//! multiplication modulo the AES-adjacent primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the same field used by most
//! Reed-Solomon deployments (including the Go library the paper's authors
//! used). Log/exp tables are built at compile time with `const fn`, so
//! multiplication and division are two table lookups and one add.

/// The primitive polynomial for the field, `x^8 + x^4 + x^3 + x^2 + 1`.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// Order of the multiplicative group (`2^8 - 1`).
pub const GROUP_ORDER: usize = 255;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Duplicate the cycle so `exp[log a + log b]` never needs a mod.
    let mut j = GROUP_ORDER;
    while j < 512 {
        exp[j] = exp[j - GROUP_ORDER];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();

/// `EXP[i] = g^i` where `g = 2` generates the multiplicative group.
/// Extended to 512 entries so index sums never wrap.
pub static EXP: [u8; 512] = TABLES.0;

/// `LOG[x] = log_g(x)` for `x != 0`; `LOG[0]` is unused and zero.
pub static LOG: [u8; 256] = TABLES.1;

/// Field addition (XOR). Identical to subtraction in GF(2^8).
#[inline(always)]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via log/exp tables.
#[inline(always)]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Field division `a / b`.
///
/// # Panics
/// Panics on division by zero, mirroring integer division.
#[inline(always)]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "GF(2^8) division by zero");
    if a == 0 {
        0
    } else {
        EXP[GROUP_ORDER + LOG[a as usize] as usize - LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics if `a == 0`.
#[inline(always)]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "GF(2^8) zero has no inverse");
    EXP[GROUP_ORDER - LOG[a as usize] as usize]
}

/// Exponentiation `a^n` by repeated log-scaling.
pub fn pow(a: u8, n: usize) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = (LOG[a as usize] as usize * n) % GROUP_ORDER;
    EXP[l]
}

/// Computes `dst[i] ^= c * src[i]` over whole slices — the inner loop of
/// Reed-Solomon encoding. Using a per-coefficient 256-entry product table
/// turns the hot loop into a single lookup per byte.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= *s;
        }
        return;
    }
    let table = product_table(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= table[*s as usize];
    }
}

/// Computes `dst[i] = c * src[i]` over whole slices.
pub fn mul_slice(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let table = product_table(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d = table[*s as usize];
    }
}

/// Builds the 256-entry multiplication table for a fixed coefficient.
#[inline]
fn product_table(c: u8) -> [u8; 256] {
    let mut t = [0u8; 256];
    let lc = LOG[c as usize] as usize;
    for (x, slot) in t.iter_mut().enumerate().skip(1) {
        *slot = EXP[lc + LOG[x] as usize];
    }
    t
}
